#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "chase/checkpoint.h"
#include "reformulation/candb.h"
#include "util/string_util.h"

namespace sqleq {
namespace service {
namespace {

std::string RenderExhaustion(const ExhaustionInfo& e) {
  return JsonObject()
      .Str("limit", e.limit)
      .Str("phase", e.phase)
      .Str("progress", e.progress)
      .Build();
}

std::string RenderStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonString(items[i]);
  }
  out += "]";
  return out;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  engine_ = std::make_shared<EquivalenceEngine>();
  engine_->set_memo_byte_limit(options_.memo_byte_limit);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (!options_.fleet.empty()) {
    if (options_.shard_name.empty()) {
      return Status::InvalidArgument("fleet mode requires a shard name");
    }
    ring_.emplace(options_.fleet);
    self_index_ = ring_->IndexOf(options_.shard_name);
    if (self_index_ < 0) {
      return Status::InvalidArgument("shard name \"" + options_.shard_name +
                                     "\" is not in the fleet topology");
    }
    if (options_.port == 0) {
      options_.port = options_.fleet[static_cast<size_t>(self_index_)].port;
    }
    peer_links_.clear();
    for (size_t i = 0; i < options_.fleet.size(); ++i) {
      peer_links_.push_back(std::make_unique<PeerLink>());
    }
    auto tier = std::make_shared<MemoPeerTier>();
    tier->fetch = [this](const std::string& key) { return PeerFetch(key); };
    tier->offer = [this](const std::string& key, const std::string& body) {
      PeerOffer(key, body);
    };
    peer_tier_ = std::move(tier);
    engine_->set_memo_peer_tier(peer_tier_);
  }
  if (!options_.memo_dir.empty()) {
    MemoStoreOptions store_options;
    store_options.dir = options_.memo_dir;
    store_options.max_disk_bytes = options_.memo_disk_bytes;
    store_options.fsync_each_put = options_.memo_fsync;
    store_options.faults = options_.faults;
    store_options.metrics = &metrics_;
    Result<std::unique_ptr<MemoStore>> store = MemoStore::Open(std::move(store_options));
    if (!store.ok()) return store.status();
    memo_store_ = std::shared_ptr<MemoStore>(std::move(*store));
    engine_->set_memo_store(memo_store_);
  }
  SQLEQ_RETURN_IF_ERROR(listener_.Listen(options_.port));
  pool_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads),
                                       &metrics_);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  metrics_.counter(metric::kServiceDrained).Add();
  drain_cancel_.Cancel();
  listener_.Shutdown();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (TcpConn* conn : open_conns_) conn->ShutdownRead();
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so conn_threads_ can only shrink under us.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void Server::Stop() {
  if (!listener_.listening() && !accept_thread_.joinable()) return;
  RequestDrain();
  Wait();
  pool_.reset();  // joins workers that may still be recording task latencies
  listener_.Close();
}

void Server::ResetMemo() {
  auto fresh = std::make_shared<EquivalenceEngine>();
  fresh->set_memo_byte_limit(options_.memo_byte_limit);
  // The disk tier outlives the engine on purpose: a reset cools the memory
  // tier but the fresh engine re-warms from disk (bench_memo_persistence).
  if (memo_store_ != nullptr) fresh->set_memo_store(memo_store_);
  // The peer tier survives a reset too: a cooled shard re-warms from its
  // peers just like from disk.
  if (peer_tier_ != nullptr) fresh->set_memo_peer_tier(peer_tier_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  engine_ = std::move(fresh);
}

std::shared_ptr<EquivalenceEngine> Server::engine() {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_;
}

void Server::AcceptLoop() {
  while (!draining()) {
    Result<TcpConn> conn = listener_.Accept();
    if (!conn.ok()) break;  // listener shut down (drain) or fatal
    metrics_.counter(metric::kServiceConnections).Add();
    if (!ProbeSite(options_.faults, nullptr, fault_sites::kServiceAccept).ok()) {
      continue;  // injected accept failure: the dropped TcpConn closes itself
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_threads_.emplace_back(&Server::ServeConnection, this, std::move(*conn));
  }
}

bool Server::IsExpensive(const std::string& cmd) {
  return cmd == "check" || cmd == "reformulate" || cmd == "lint";
}

void Server::ServeConnection(TcpConn conn) {
  active_sessions_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    open_conns_.push_back(&conn);
  }
  // A connection accepted concurrently with RequestDrain may register after
  // the drain's shutdown sweep; cover that window ourselves.
  if (draining()) conn.ShutdownRead();

  Session session;
  Counter& requests = metrics_.counter(metric::kServiceRequests);
  Counter& errors = metrics_.counter(metric::kServiceErrors);
  Histogram& request_us = metrics_.histogram(metric::kServiceRequestUs);

  while (true) {
    Result<std::optional<std::string>> line = conn.ReadLine();
    if (!line.ok() || !line->has_value()) break;
    if (Trim(**line).empty()) continue;
    if (!ProbeSite(options_.faults, nullptr, fault_sites::kServiceParse).ok()) {
      break;  // injected parse failure drops the connection
    }
    requests.Add();
    std::string response;
    {
      ScopedTimerUs timer(&request_us);
      Result<Request> request = ParseRequest(**line);
      if (!request.ok()) {
        response = ErrorResponse("", request.status());
      } else if (Status dispatch_probe = ProbeSite(options_.faults, nullptr,
                                                   fault_sites::kServiceDispatch);
                 !dispatch_probe.ok()) {
        response = ErrorResponse(request->id, dispatch_probe);
      } else if (!IsExpensive(request->cmd)) {
        response = Dispatch(session, *request);
      } else if (fleet_enabled() &&
                 ToInt(session.protocol()) >= ToInt(ProtocolVersion::kV2) &&
                 OwnerShardFor(*request) != static_cast<size_t>(self_index_)) {
        // v2 sessions get redirected to the shard owning this request's
        // canonical signature (v1 sessions are always served locally, as
        // before the fleet existed).
        metrics_.counter(metric::kServiceRedirects).Add();
        const ShardId& owner = options_.fleet[OwnerShardFor(*request)];
        RedirectInfo info;
        info.shard = owner.name;
        info.host = owner.host;
        info.port = owner.port;
        info.epoch = options_.shard_epoch;
        response = NotOwnerResponse(request->id, info);
      } else if (draining()) {
        metrics_.counter(metric::kServiceDrainingRejected).Add();
        response = DrainingResponse(request->id, options_.retry_after_ms);
      } else if (std::optional<std::string> replay = IdempotentReplay(request->id);
                 replay.has_value()) {
        // A retried id whose original response was already settled: replay
        // it instead of re-dispatching (the retry raced a lost response).
        response = *std::move(replay);
      } else {
        // Admission control once queued-or-running hits the cap: either
        // shed, or (degraded_admission) answer inline under the narrowed
        // budget — memo hits still resolve, fresh work returns an anytime
        // kUnknown with a checkpoint and a retry_after_ms hint.
        size_t prior = inflight_.fetch_add(1, std::memory_order_acq_rel);
        if (prior >= options_.max_inflight) {
          if (options_.degraded_admission) {
            // Stays on the connection thread (the pool is saturated by
            // definition here) and keeps inflight_ raised so concurrent
            // arrivals also see the overload.
            metrics_.counter(metric::kServiceDegraded).Add();
            response = Dispatch(session, *request, /*degraded=*/true);
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            RememberResponse(request->id, response);
          } else {
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            metrics_.counter(metric::kServiceOverloaded).Add();
            response = OverloadedResponse(request->id, options_.retry_after_ms);
          }
        } else {
          // Run on the worker pool; this connection thread blocks until its
          // request finishes, so Session stays single-owner.
          std::mutex mu;
          std::condition_variable cv;
          bool done = false;
          pool_->Submit([&] {
            std::string r = Dispatch(session, *request);
            std::lock_guard<std::mutex> task_lock(mu);
            response = std::move(r);
            done = true;
            cv.notify_one();
          });
          std::unique_lock<std::mutex> wait_lock(mu);
          cv.wait(wait_lock, [&] { return done; });
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
          RememberResponse(request->id, response);
        }
      }
    }
    if (response.find("\"ok\":false") != std::string::npos) errors.Add();
    response += "\n";
    if (!conn.WriteAll(response).ok()) break;
  }

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    open_conns_.erase(std::remove(open_conns_.begin(), open_conns_.end(), &conn),
                      open_conns_.end());
  }
  active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
}

std::string Server::Dispatch(Session& session, const Request& request,
                             bool degraded) {
  std::optional<ProtocolVersion> min = MinVersionForVerb(request.cmd);
  if (!min.has_value()) {
    return ErrorResponse(request.id,
                         Status::InvalidArgument("unknown command \"" + request.cmd + "\""));
  }
  if (ToInt(*min) > ToInt(session.protocol())) {
    return ErrorResponse(
        request.id,
        Status::FailedPrecondition(
            "command \"" + request.cmd + "\" requires protocol >= " +
            std::to_string(ToInt(*min)) +
            " (negotiate with hello max_protocol)"));
  }
  if (request.cmd == "hello") return HandleHello(session, request);
  if (request.cmd == "ddl") return HandleDdl(session, request);
  if (request.cmd == "relation") return HandleRelation(session, request);
  if (request.cmd == "dep") return HandleDep(session, request);
  if (request.cmd == "check") return HandleCheck(session, request, degraded);
  if (request.cmd == "reformulate") return HandleReformulate(session, request, degraded);
  if (request.cmd == "lint") return HandleLint(session, request, degraded);
  if (request.cmd == "stats") return HandleStats(request);
  if (request.cmd == "memo_fetch") return HandleMemoFetch(request);
  if (request.cmd == "memo_offer") return HandleMemoOffer(request);
  return ErrorResponse(request.id,
                       Status::InvalidArgument("unknown command \"" + request.cmd + "\""));
}

std::string Server::HandleHello(Session& session, const Request& request) {
  ProtocolVersion negotiated =
      NegotiateVersion(OptionalNumber(request.body, "max_protocol"));
  session.set_protocol(negotiated);
  JsonObject out;
  // The v1 line must stay byte-identical for clients that do not send
  // max_protocol — every extra field below is v2-gated.
  out.Str("id", request.id)
      .Bool("ok", true)
      .Str("server", "sqleqd")
      .Int("protocol", ToInt(negotiated));
  if (ToInt(negotiated) >= ToInt(ProtocolVersion::kV2) && fleet_enabled()) {
    out.Str("shard", options_.shard_name)
        .Int("epoch", options_.shard_epoch)
        .Int("shards", ring_->size());
  }
  return out.Build();
}

std::string Server::HandleDdl(Session& session, const Request& request) {
  Result<std::string> script = RequireString(request.body, "script");
  if (!script.ok()) return ErrorResponse(request.id, script.status());
  Status status = session.ApplyDdl(*script);
  if (!status.ok()) return ErrorResponse(request.id, status);
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Int("relations", session.catalog().schema.size())
      .Int("sigma", session.catalog().sigma.size())
      .Build();
}

std::string Server::HandleRelation(Session& session, const Request& request) {
  Result<std::string> name = RequireString(request.body, "name");
  if (!name.ok()) return ErrorResponse(request.id, name.status());
  std::optional<double> arity = OptionalNumber(request.body, "arity");
  if (!arity.has_value() || *arity < 1) {
    return ErrorResponse(request.id,
                         Status::InvalidArgument("relation requires a numeric arity >= 1"));
  }
  bool set_valued = OptionalBool(request.body, "set_valued", false);
  Status status =
      session.AddRelation(*name, static_cast<size_t>(*arity), set_valued);
  if (!status.ok()) return ErrorResponse(request.id, status);
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Int("relations", session.catalog().schema.size())
      .Build();
}

std::string Server::HandleDep(Session& session, const Request& request) {
  Result<std::string> text = RequireString(request.body, "text");
  if (!text.ok()) return ErrorResponse(request.id, text.status());
  std::string label = OptionalString(request.body, "label").value_or("");
  Result<size_t> added = session.AddDependency(*text, std::move(label));
  if (!added.ok()) return ErrorResponse(request.id, added.status());
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Int("added", *added)
      .Int("sigma", session.catalog().sigma.size())
      .Build();
}

std::string Server::HandleCheck(Session& session, const Request& request,
                                bool degraded) {
  Result<std::string> q1_text = RequireString(request.body, "q1");
  if (!q1_text.ok()) return ErrorResponse(request.id, q1_text.status());
  Result<std::string> q2_text = RequireString(request.body, "q2");
  if (!q2_text.ok()) return ErrorResponse(request.id, q2_text.status());

  Semantics semantics = Semantics::kSet;
  if (std::optional<std::string> s = OptionalString(request.body, "semantics")) {
    Result<Semantics> parsed = ParseSemanticsName(*s);
    if (!parsed.ok()) return ErrorResponse(request.id, parsed.status());
    semantics = *parsed;
  }
  Result<ConjunctiveQuery> q1 = session.ResolveQuery(*q1_text, "Q1");
  if (!q1.ok()) return ErrorResponse(request.id, q1.status());
  Result<ConjunctiveQuery> q2 = session.ResolveQuery(*q2_text, "Q2");
  if (!q2.ok()) return ErrorResponse(request.id, q2.status());

  MetricsRegistry local;
  EquivRequest equiv;
  equiv.semantics = semantics;
  equiv.sigma = session.catalog().sigma;
  equiv.schema = session.catalog().schema;
  equiv.context = ContextFor(request.body, &local, degraded);

  std::optional<ChaseCheckpoint> resume;
  if (std::optional<std::string> text = OptionalString(request.body, "resume")) {
    Result<ChaseCheckpoint> parsed = ChaseCheckpoint::Deserialize(*text);
    if (!parsed.ok()) return ErrorResponse(request.id, parsed.status());
    resume = *std::move(parsed);
    equiv.resume = &*resume;
  }

  Result<EquivVerdict> verdict = engine()->Equivalent(*q1, *q2, equiv);
  if (!verdict.ok()) return ErrorResponse(request.id, verdict.status());

  JsonObject out;
  out.Str("id", request.id)
      .Bool("ok", true)
      .Str("verdict", VerdictToString(verdict->verdict))
      .Bool("equivalent", verdict->verdict == Verdict::kEquivalent)
      .Str("semantics", SemanticsWireName(semantics));
  if (verdict->exhaustion.has_value()) {
    out.Raw("exhaustion", RenderExhaustion(*verdict->exhaustion));
  }
  if (verdict->checkpoint.has_value()) {
    out.Str("checkpoint", verdict->checkpoint->Serialize());
  }
  if (degraded) {
    out.Bool("degraded", true);
    if (verdict->verdict == Verdict::kUnknown) {
      out.Int("retry_after_ms", options_.retry_after_ms);
    }
  }
  if (draining()) out.Bool("drained", true);
  out.Raw("metrics", MergeAndRenderMetrics(local));
  return out.Build();
}

std::string Server::HandleReformulate(Session& session, const Request& request,
                                      bool degraded) {
  Result<std::string> query_text = RequireString(request.body, "query");
  if (!query_text.ok()) return ErrorResponse(request.id, query_text.status());

  Semantics semantics = Semantics::kSet;
  if (std::optional<std::string> s = OptionalString(request.body, "semantics")) {
    Result<Semantics> parsed = ParseSemanticsName(*s);
    if (!parsed.ok()) return ErrorResponse(request.id, parsed.status());
    semantics = *parsed;
  }
  Result<ConjunctiveQuery> q = session.ResolveQuery(*query_text, "Q");
  if (!q.ok()) return ErrorResponse(request.id, q.status());

  MetricsRegistry local;
  CandBOptions options;
  options.context = ContextFor(request.body, &local, degraded);

  std::optional<CandBCheckpoint> resume;
  if (std::optional<std::string> text = OptionalString(request.body, "resume")) {
    Result<CandBCheckpoint> parsed = CandBCheckpoint::Deserialize(*text);
    if (!parsed.ok()) return ErrorResponse(request.id, parsed.status());
    resume = *std::move(parsed);
    options.resume = &*resume;
  }

  Result<CandBResult> result = ChaseAndBackchase(
      *q, session.catalog().sigma, semantics, session.catalog().schema, options);
  if (!result.ok()) return ErrorResponse(request.id, result.status());

  std::vector<std::string> reformulations;
  reformulations.reserve(result->reformulations.size());
  for (const ConjunctiveQuery& r : result->reformulations) {
    reformulations.push_back(r.ToString());
  }

  JsonObject out;
  out.Str("id", request.id)
      .Bool("ok", true)
      .Bool("complete", result->complete)
      .Raw("reformulations", RenderStringArray(reformulations))
      .Str("universal_plan", result->universal_plan.ToString())
      .Int("candidates", result->candidates_examined)
      .Int("cache_hits", result->chase_cache_hits)
      .Int("cache_misses", result->chase_cache_misses);
  if (result->exhaustion.has_value()) {
    out.Raw("exhaustion", RenderExhaustion(*result->exhaustion));
  }
  if (result->checkpoint.has_value()) {
    out.Str("checkpoint", result->checkpoint->Serialize());
  }
  if (degraded) {
    out.Bool("degraded", true);
    if (!result->complete) out.Int("retry_after_ms", options_.retry_after_ms);
  }
  if (draining()) out.Bool("drained", true);
  out.Raw("metrics", MergeAndRenderMetrics(local));
  return out.Build();
}

std::string Server::HandleLint(Session& session, const Request& request,
                               bool degraded) {
  AnalyzeOptions opts = AnalyzeOptions::Full();
  opts.warnings_as_errors = OptionalBool(request.body, "strict", false);
  opts.budget = options_.default_budget;
  if (degraded) {
    opts.budget.max_chase_steps =
        std::min(opts.budget.max_chase_steps, options_.degraded_chase_steps);
    opts.budget.max_candidates =
        std::min(opts.budget.max_candidates, options_.degraded_candidates);
    opts.budget.threads = 1;
  }

  std::vector<ConjunctiveQuery> queries;
  if (const JsonValue* list = request.body.Find("queries");
      list != nullptr && list->is_array()) {
    for (size_t i = 0; i < list->array.size(); ++i) {
      const JsonValue& item = list->array[i];
      if (!item.is_string()) {
        return ErrorResponse(request.id,
                             Status::InvalidArgument("lint \"queries\" must hold strings"));
      }
      Result<ConjunctiveQuery> q =
          session.ResolveQuery(item.string, "L" + std::to_string(i + 1));
      if (!q.ok()) return ErrorResponse(request.id, q.status());
      queries.push_back(*std::move(q));
    }
  }

  AnalysisReport report = AnalyzeProgram(session.catalog().schema,
                                         session.catalog().sigma, queries, opts);
  std::string diagnostics = "[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) diagnostics += ",";
    diagnostics += JsonObject()
                       .Str("code", d.code)
                       .Str("severity", SeverityToString(d.severity))
                       .Str("subject", d.subject)
                       .Str("message", d.message)
                       .Build();
  }
  diagnostics += "]";
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Bool("errors", report.HasErrors())
      .Int("findings", report.diagnostics.size())
      .Raw("diagnostics", diagnostics)
      .Build();
}

std::string Server::HandleStats(const Request& request) {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  EquivalenceEngine::CacheStats cache = engine()->cache_stats();
  JsonObject memo;
  memo.Int("hits", cache.hits)
      .Int("misses", cache.misses)
      .Int("entries", cache.entries)
      .Int("contexts", cache.contexts)
      .Int("compiled_kernels", cache.compiled_kernels)
      .Int("pattern_atoms", cache.pattern_atoms);
  JsonObject out;
  out.Str("id", request.id)
      .Bool("ok", true)
      .Str("prometheus", snapshot.ToPrometheusText())
      .Int("inflight", inflight())
      .Int("sessions", active_sessions())
      .Bool("draining", draining())
      .Raw("memo", memo.Build());
  if (fleet_enabled()) {
    auto counter_of = [&snapshot](const char* name) -> uint64_t {
      auto it = snapshot.counters.find(name);
      return it == snapshot.counters.end() ? 0 : it->second;
    };
    JsonObject peer;
    peer.Int("hits", counter_of(metric::kMemoPeerHits))
        .Int("misses", counter_of(metric::kMemoPeerMisses))
        .Int("fetches", counter_of(metric::kMemoPeerFetches))
        .Int("served", counter_of(metric::kMemoPeerServed))
        .Int("offers", counter_of(metric::kMemoPeerOffers))
        .Int("accepted", counter_of(metric::kMemoPeerAccepted));
    out.Str("shard", options_.shard_name)
        .Int("epoch", options_.shard_epoch)
        .Int("shards", ring_->size())
        .Int("redirects", counter_of(metric::kServiceRedirects))
        .Raw("peer", peer.Build());
  }
  if (memo_store_ != nullptr) {
    MemoStore::Stats d = memo_store_->stats();
    JsonObject disk;
    disk.Int("entries", d.entries)
        .Int("segments", d.segments)
        .Int("bytes", d.disk_bytes)
        .Int("recovered", d.recovered)
        .Int("corrupt_records", d.corrupt_records)
        .Int("dropped", d.dropped)
        .Int("compactions", d.compactions)
        .Int("hits", d.hits)
        .Int("writes", d.writes);
    out.Raw("disk", disk.Build());
  }
  return out.Build();
}

std::string Server::HandleMemoFetch(const Request& request) {
  Result<std::string> key = RequireString(request.body, "key");
  if (!key.ok()) return ErrorResponse(request.id, key.status());
  // Read-only: this only consults the memory tier (and the shared disk
  // store), never chases, so serving it inline on the connection thread is
  // cheap and cannot recurse into peer traffic.
  std::optional<std::string> body = engine()->ExportMemoRecord(*key);
  JsonObject out;
  out.Str("id", request.id).Bool("ok", true).Bool("found", body.has_value());
  if (body.has_value()) {
    metrics_.counter(metric::kMemoPeerServed).Add();
    out.Str("body", *body);
  }
  return out.Build();
}

std::string Server::HandleMemoOffer(const Request& request) {
  Result<std::string> key = RequireString(request.body, "key");
  if (!key.ok()) return ErrorResponse(request.id, key.status());
  Result<std::string> body = RequireString(request.body, "body");
  if (!body.ok()) return ErrorResponse(request.id, body.status());
  // The record is parsed and validated before admission; a garbled offer is
  // acknowledged with accepted:false rather than an error (the offering
  // peer cannot do anything about it).
  bool accepted = engine()->ImportMemoRecord(*key, *body);
  if (accepted) metrics_.counter(metric::kMemoPeerAccepted).Add();
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Bool("accepted", accepted)
      .Build();
}

size_t Server::OwnerShardFor(const Request& request) const {
  return ring_->OwnerIndex(CanonicalRequestSignature(request.cmd, request.body));
}

std::optional<JsonValue> Server::CallPeer(size_t shard, const std::string& line) {
  PeerLink& link = *peer_links_[shard];
  std::lock_guard<std::mutex> lock(link.mu);
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (link.conn == nullptr) {
      // Short deadlines: peer traffic is opportunistic, and a slow peer
      // must not stall the chase that asked.
      RetryPolicy policy;
      policy.max_attempts = 1;
      policy.connect_timeout = std::chrono::milliseconds(1000);
      policy.request_timeout = std::chrono::milliseconds(2000);
      const ShardId& peer = options_.fleet[shard];
      Result<Connection> dialed = Connection::Connect(peer.host, peer.port, policy);
      if (!dialed.ok()) return std::nullopt;
      link.conn = std::make_unique<Connection>(std::move(*dialed));
      RequestSpec hello("hello");
      hello.Int("max_protocol", static_cast<uint64_t>(ToInt(kMaxProtocolVersion)));
      Result<std::string> hello_line = EncodeRequest(hello);
      Result<JsonValue> negotiated =
          hello_line.ok() ? link.conn->Call(*hello_line)
                          : Result<JsonValue>(hello_line.status());
      if (!negotiated.ok() ||
          static_cast<int>(OptionalNumber(*negotiated, "protocol").value_or(1)) <
              ToInt(ProtocolVersion::kV2)) {
        link.conn.reset();
        return std::nullopt;  // unreachable or a pre-fleet peer
      }
    }
    Result<JsonValue> response = link.conn->Call(line);
    if (response.ok()) {
      const JsonValue* ok = response->Find("ok");
      if (ok != nullptr && ok->kind == JsonValue::Kind::kBool && ok->boolean) {
        return *std::move(response);
      }
      return std::nullopt;  // the peer answered but refused; don't redial
    }
    link.conn.reset();  // dead link: one redial, then give up
  }
  return std::nullopt;
}

std::optional<std::string> Server::PeerFetch(const std::string& key) {
  size_t owner = ring_->OwnerIndex(key);
  if (owner == static_cast<size_t>(self_index_)) return std::nullopt;
  RequestSpec spec("memo_fetch");
  spec.Str("key", key);
  Result<std::string> line = EncodeRequest(spec);
  if (!line.ok()) return std::nullopt;
  metrics_.counter(metric::kMemoPeerFetches).Add();
  std::optional<JsonValue> response = CallPeer(owner, *line);
  if (!response.has_value()) return std::nullopt;
  if (!OptionalBool(*response, "found", false)) return std::nullopt;
  return OptionalString(*response, "body");
}

void Server::PeerOffer(const std::string& key, const std::string& body) {
  size_t owner = ring_->OwnerIndex(key);
  if (owner == static_cast<size_t>(self_index_)) return;
  RequestSpec spec("memo_offer");
  spec.Str("key", key).Str("body", body);
  Result<std::string> line = EncodeRequest(spec);
  if (!line.ok()) return;
  metrics_.counter(metric::kMemoPeerOffers).Add();
  CallPeer(owner, *line);
}

std::optional<std::string> Server::IdempotentReplay(const std::string& id) {
  if (id.empty() || options_.idempotency_cache == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(idem_mu_);
  auto it = idem_cache_.find(id);
  if (it == idem_cache_.end()) return std::nullopt;
  idem_lru_.splice(idem_lru_.begin(), idem_lru_, it->second.lru_pos);
  metrics_.counter(metric::kServiceIdempotentReplays).Add();
  return it->second.response;
}

void Server::RememberResponse(const std::string& id, const std::string& response) {
  if (id.empty() || options_.idempotency_cache == 0) return;
  // Only settled responses replay. A failure, an anytime kUnknown, or a
  // partial reformulation must re-dispatch on retry so the work can finish
  // (typically as a memo hit the second time around).
  if (response.find("\"ok\":false") != std::string::npos) return;
  if (response.find("\"verdict\":\"unknown\"") != std::string::npos) return;
  if (response.find("\"complete\":false") != std::string::npos) return;
  std::lock_guard<std::mutex> lock(idem_mu_);
  auto it = idem_cache_.find(id);
  if (it != idem_cache_.end()) {
    idem_lru_.splice(idem_lru_.begin(), idem_lru_, it->second.lru_pos);
    it->second.response = response;
    return;
  }
  idem_lru_.push_front(id);
  idem_cache_.emplace(id, IdemEntry{response, idem_lru_.begin()});
  while (idem_cache_.size() > options_.idempotency_cache) {
    idem_cache_.erase(idem_lru_.back());
    idem_lru_.pop_back();
  }
}

EngineContext Server::ContextFor(const JsonValue& body, MetricsRegistry* local,
                                 bool degraded) {
  EngineContext ctx;
  ctx.budget = options_.default_budget;
  if (degraded) {
    // The overload lane: a fraction of the full budget, single-threaded, so
    // a degraded request cannot pile more pressure on a saturated server.
    // Anytime C&B keeps the result prefix-consistent with a full-budget run.
    ctx.budget.max_chase_steps =
        std::min(ctx.budget.max_chase_steps, options_.degraded_chase_steps);
    ctx.budget.max_candidates =
        std::min(ctx.budget.max_candidates, options_.degraded_candidates);
    ctx.budget.threads = 1;
  }
  // Requests narrow the server's caps; they cannot raise them.
  if (std::optional<double> v = OptionalNumber(body, "max_chase_steps"); v && *v > 0) {
    ctx.budget.max_chase_steps =
        std::min(ctx.budget.max_chase_steps, static_cast<size_t>(*v));
  }
  if (std::optional<double> v = OptionalNumber(body, "max_candidates"); v && *v > 0) {
    ctx.budget.max_candidates =
        std::min(ctx.budget.max_candidates, static_cast<size_t>(*v));
  }
  if (std::optional<double> v = OptionalNumber(body, "threads"); v && *v > 0) {
    size_t cap = std::max<size_t>(1, ctx.budget.threads);
    ctx.budget.threads = std::min(cap, static_cast<size_t>(*v));
  }
  if (std::optional<double> v = OptionalNumber(body, "deadline_ms"); v && *v > 0) {
    ctx.budget.deadline_origin = std::chrono::steady_clock::now();
    ctx.budget.deadline =
        *ctx.budget.deadline_origin +
        std::chrono::milliseconds(static_cast<int64_t>(*v));
  }
  ctx.metrics = local;
  ctx.faults = options_.faults;
  ctx.cancel = &drain_cancel_;
  return ctx;
}

std::string Server::MergeAndRenderMetrics(const MetricsRegistry& local) {
  MetricsSnapshot snapshot = local.Snapshot();
  JsonObject counters;
  for (const auto& [name, value] : snapshot.counters) {
    // Fold the per-request counter deltas into the server-lifetime registry;
    // histogram deltas stay request-local (snapshots cannot be re-recorded).
    if (value != 0) metrics_.counter(name).Add(value);
    counters.Int(name, value);
  }
  return counters.Build();
}

}  // namespace service
}  // namespace sqleq
