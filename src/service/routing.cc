#include "service/routing.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "chase/chase_cache.h"
#include "ir/parser.h"
#include "service/protocol.h"
#include "util/string_util.h"

namespace sqleq {
namespace service {
namespace {

/// One query's contribution to a request signature. Datalog canonicalizes
/// (so renamed/reordered-but-isomorphic queries share an owner and its warm
/// memo); SQL needs the catalog to translate, which the client does not
/// have, so both sides hash the trimmed raw text instead.
std::string QuerySignature(std::string_view text) {
  std::string_view trimmed = Trim(text);
  Result<ConjunctiveQuery> parsed = ParseQuery(trimmed);
  if (parsed.ok()) return CanonicalQueryKey(*parsed);
  return std::string(trimmed);
}

}  // namespace

Result<std::vector<ShardId>> ParseFleetSpec(std::string_view spec) {
  std::vector<ShardId> shards;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string_view entry = spec.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    entry = Trim(entry);
    if (!entry.empty()) {
      ShardId shard;
      if (size_t eq = entry.find('='); eq != std::string_view::npos) {
        shard.name = std::string(Trim(entry.substr(0, eq)));
        entry = Trim(entry.substr(eq + 1));
      } else {
        shard.name = "shard" + std::to_string(shards.size());
      }
      size_t colon = entry.rfind(':');
      if (colon == std::string_view::npos || colon + 1 >= entry.size()) {
        return Status::InvalidArgument(
            "fleet spec entry \"" + std::string(entry) +
            "\" lacks a host:port (expected name=host:port or host:port)");
      }
      shard.host = std::string(entry.substr(0, colon));
      std::string port_text(entry.substr(colon + 1));
      char* end = nullptr;
      long port = std::strtol(port_text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
        return Status::InvalidArgument("fleet spec entry has a bad port \"" +
                                       port_text + "\"");
      }
      if (shard.name.empty() || shard.host.empty()) {
        return Status::InvalidArgument(
            "fleet spec entry \"" + std::string(entry) +
            "\" has an empty shard name or host");
      }
      shard.port = static_cast<int>(port);
      for (const ShardId& existing : shards) {
        if (existing.name == shard.name) {
          return Status::InvalidArgument("fleet spec repeats shard name \"" +
                                         shard.name + "\"");
        }
      }
      shards.push_back(std::move(shard));
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (shards.empty()) {
    return Status::InvalidArgument("fleet spec names no shards");
  }
  return shards;
}

std::string RenderFleetSpec(const std::vector<ShardId>& shards) {
  std::string out;
  for (const ShardId& shard : shards) {
    if (!out.empty()) out += ",";
    out += shard.name + "=" + shard.host + ":" + std::to_string(shard.port);
  }
  return out;
}

uint64_t FleetHash(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  // Raw FNV-1a barely avalanches the high bits for short, similar inputs
  // ("shard0#0".."shard0#63" differ only low in the state), and ring order
  // is dominated by the high bits — without a finalizer every vnode of a
  // shard collapses into one tight band and one shard owns nearly the whole
  // key space. Murmur3's fmix64 spreads the state before it is ordered.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

HashRing::HashRing(std::vector<ShardId> shards) : shards_(std::move(shards)) {
  ring_.reserve(shards_.size() * kVnodesPerShard);
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (size_t v = 0; v < kVnodesPerShard; ++v) {
      std::string point = shards_[i].name + "#" + std::to_string(v);
      ring_.emplace_back(FleetHash(point), static_cast<uint32_t>(i));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t HashRing::OwnerIndex(std::string_view key) const {
  uint64_t h = FleetHash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<uint64_t, uint32_t>& point, uint64_t hash) {
        return point.first < hash;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

int HashRing::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string CanonicalRequestSignature(const std::string& cmd,
                                      const JsonValue& body) {
  std::string sig = cmd;
  if (cmd == "check") {
    std::string q1 =
        QuerySignature(OptionalString(body, "q1").value_or(""));
    std::string q2 =
        QuerySignature(OptionalString(body, "q2").value_or(""));
    // q1 ≡ q2 and q2 ≡ q1 are the same decision; sort so both spellings
    // land on (and warm) the same shard.
    if (q2 < q1) std::swap(q1, q2);
    sig += "|S:" + OptionalString(body, "semantics").value_or("set");
    sig += "|Q:" + q1 + "|Q:" + q2;
    return sig;
  }
  if (cmd == "reformulate") {
    sig += "|S:" + OptionalString(body, "semantics").value_or("set");
    sig += "|Q:" + QuerySignature(OptionalString(body, "query").value_or(""));
    return sig;
  }
  if (cmd == "lint") {
    if (const JsonValue* list = body.Find("queries");
        list != nullptr && list->is_array()) {
      for (const JsonValue& item : list->array) {
        if (item.is_string()) sig += "|Q:" + QuerySignature(item.string);
      }
    }
    return sig;
  }
  if (cmd == "memo_fetch" || cmd == "memo_offer") {
    // Peer memo verbs are addressed by the record's disk key directly.
    sig += "|K:" + OptionalString(body, "key").value_or("");
    return sig;
  }
  return sig;
}

}  // namespace service
}  // namespace sqleq
