#include "service/fleet_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace sqleq {
namespace service {
namespace {

bool FieldIsTrue(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
}

/// Reads `field` from the object member `section` of a shard's stats
/// response, defaulting to 0 — older shards simply contribute nothing.
uint64_t StatsField(const JsonValue& body, const char* section,
                    const char* field) {
  const JsonValue* obj = body.Find(section);
  if (obj == nullptr || !obj->is_object()) return 0;
  std::optional<double> v = OptionalNumber(*obj, field);
  return v.has_value() && *v > 0 ? static_cast<uint64_t>(*v) : 0;
}

}  // namespace

Result<std::unique_ptr<FleetClient>> FleetClient::Create(
    FleetClientOptions options) {
  if (options.shards.empty()) {
    return Status::InvalidArgument("fleet client needs at least one shard");
  }
  return std::unique_ptr<FleetClient>(new FleetClient(std::move(options)));
}

FleetClient::FleetClient(FleetClientOptions options)
    : options_(std::move(options)), ring_(options_.shards) {
  idle_.resize(ring_.size());
}

void FleetClient::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shard_pool : idle_) shard_pool.clear();
}

FleetClient::Stats FleetClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<FleetClient::PooledConn> FleetClient::Checkout(size_t shard,
                                                      size_t replay_limit) {
  PooledConn pooled;
  bool have = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (replay_limit == kNoReplayLimit) replay_limit = catalog_log_.size();
    replay_limit = std::min(replay_limit, catalog_log_.size());
    if (!idle_[shard].empty()) {
      pooled = std::move(idle_[shard].back());
      idle_[shard].pop_back();
      ++stats_.pool_reuses;
      have = true;
    }
  }
  const ShardId& target = ring_.shards()[shard];
  if (!have) {
    Result<Connection> conn =
        Connection::Connect(target.host, target.port, options_.retry);
    if (!conn.ok()) return conn.status();
    pooled.conn = std::make_unique<Connection>(std::move(*conn));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.dials;
    }
    if (ToInt(options_.max_protocol) >= ToInt(ProtocolVersion::kV2)) {
      // Negotiate up-front so routed v2 traffic gets redirects and the
      // fleet verbs. A v1-only client (max_protocol = kV1) skips this and
      // the server session stays v1 — byte-identical legacy behavior.
      RequestSpec hello("hello");
      hello.Int("max_protocol",
                static_cast<uint64_t>(ToInt(options_.max_protocol)));
      Result<std::string> line = EncodeRequest(hello, options_.max_protocol);
      if (!line.ok()) return line.status();
      Result<JsonValue> response = pooled.conn->Call(*line);
      if (!response.ok()) return response.status();
      DecodedResponse decoded = DecodeResponseObject(std::move(*response));
      if (!decoded.ok) return decoded.ToStatus();
      int negotiated = static_cast<int>(
          OptionalNumber(decoded.body, "protocol").value_or(1));
      negotiated = std::min(negotiated, ToInt(options_.max_protocol));
      pooled.negotiated = negotiated >= ToInt(ProtocolVersion::kV2)
                              ? ProtocolVersion::kV2
                              : ProtocolVersion::kV1;
    }
  }
  if (pooled.catalog_seq < replay_limit) {
    std::vector<std::string> lines;
    {
      std::lock_guard<std::mutex> lock(mu_);
      lines.assign(catalog_log_.begin() +
                       static_cast<ptrdiff_t>(pooled.catalog_seq),
                   catalog_log_.begin() + static_cast<ptrdiff_t>(replay_limit));
      ++stats_.catalog_replays;
    }
    for (const std::string& logged : lines) {
      ++pooled.catalog_seq;
      if (logged.empty()) continue;  // tombstoned (failed) catalog line
      Result<JsonValue> response = pooled.conn->Call(logged);
      if (!response.ok()) return response.status();
      DecodedResponse decoded = DecodeResponseObject(std::move(*response));
      if (!decoded.ok) return decoded.ToStatus();
    }
  }
  return pooled;
}

void FleetClient::Checkin(size_t shard, PooledConn conn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_[shard].size() < options_.pool_size_per_shard) {
    idle_[shard].push_back(std::move(conn));
  }
  // Beyond the cap the connection just closes (PooledConn destructor).
}

Result<JsonValue> FleetClient::CallOnShard(size_t shard,
                                           const std::string& request_line,
                                           std::string* raw_response,
                                           size_t replay_limit,
                                           bool advance_catalog) {
  const size_t attempts = std::max<size_t>(1, options_.retry.max_attempts);
  Result<JsonValue> result = Status::Internal("retry loop did not run");
  std::optional<PooledConn> held;
  std::optional<uint64_t> hint;
  for (size_t attempt = 1; attempt <= attempts; ++attempt) {
    hint.reset();
    if (!held.has_value()) {
      // Fresh checkout: pooled reuse or dial + hello + catalog replay. A
      // failure here (shard down) burns an attempt and backs off, exactly
      // like a failed redial in Connection::CallWithRetry.
      Result<PooledConn> fresh = Checkout(shard, replay_limit);
      if (fresh.ok()) {
        held = std::move(*fresh);
      } else {
        result = fresh.status();
      }
    }
    if (held.has_value()) {
      result = held->conn->Call(request_line, raw_response);
      if (result.ok()) {
        if (!IsRetryableResponse(*result, &hint)) {
          if (advance_catalog && replay_limit != kNoReplayLimit) {
            // The line we just sent IS catalog entry `replay_limit`: mark it
            // applied so the next checkout of this connection skips it.
            held->catalog_seq = std::max(held->catalog_seq, replay_limit + 1);
          }
          Checkin(shard, std::move(*held));
          return result;
        }
        if (FieldIsTrue(*result, "draining")) {
          // This server instance is going away; evict so the retry dials
          // whatever rebinds the port. Overloaded keeps the healthy
          // connection and just backs off.
          held.reset();
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.pool_evictions;
        }
      } else {
        // Transport failure: the connection is dead. Evict it; the next
        // attempt redials through Checkout (catalog replay included) and
        // resends the same line — ids stay idempotent server-side.
        held.reset();
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.pool_evictions;
      }
    }
    if (attempt == attempts) break;
    uint64_t backoff = RetryBackoffMs(options_.retry, attempt, hint);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
  }
  if (held.has_value()) Checkin(shard, std::move(*held));
  return result;
}

Result<JsonValue> FleetClient::CallRouted(size_t shard,
                                          const std::string& request_line,
                                          std::string* raw_response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.routed;
  }
  Result<JsonValue> result = Status::Internal("routing loop did not run");
  size_t target = shard;
  for (size_t hop = 0; hop <= options_.max_redirects; ++hop) {
    result = CallOnShard(target, request_line, raw_response);
    if (!result.ok() || !FieldIsTrue(*result, "not_owner")) return result;
    DecodedResponse decoded = DecodeResponseObject(JsonValue(*result));
    if (!decoded.redirect.has_value()) return result;
    int next = ring_.IndexOf(decoded.redirect->shard);
    if (next < 0) {
      for (size_t i = 0; i < ring_.size(); ++i) {
        if (ring_.shards()[i].host == decoded.redirect->host &&
            ring_.shards()[i].port == decoded.redirect->port) {
          next = static_cast<int>(i);
          break;
        }
      }
    }
    if (next < 0 || static_cast<size_t>(next) == target) {
      return result;  // redirect points outside our topology; let the caller see it
    }
    target = static_cast<size_t>(next);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.redirects_followed;
  }
  return result;
}

Result<JsonValue> FleetClient::Call(const std::string& request_line,
                                    std::string* raw_response) {
  Result<Request> request = ParseRequest(request_line);
  if (!request.ok()) {
    // Unparsable lines pass through so the server's error contract (and
    // its exact bytes) is what the caller sees.
    return CallOnShard(0, request_line, raw_response);
  }
  if (IsCatalogVerb(request->cmd)) {
    // Catalog replication: log first (fresh checkouts replay it), then
    // send to one connection per shard with replay bounded to the log
    // before this line — and bump that connection's replay cursor past it,
    // so nothing applies twice.
    size_t limit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      limit = catalog_log_.size();
      catalog_log_.push_back(request_line);
      ++stats_.broadcasts;
    }
    Result<JsonValue> last = Status::Internal("no shards");
    for (size_t shard = 0; shard < ring_.size(); ++shard) {
      // Through the pool-level retry loop: a shard mid-(re)start gets the
      // full dial-backoff schedule, not a hard failure on the first refused
      // connect. advance_catalog bumps the winning connection's replay
      // cursor past this line so nothing applies twice.
      Result<JsonValue> response = CallOnShard(shard, request_line,
                                              raw_response, limit,
                                              /*advance_catalog=*/true);
      if (!response.ok()) return response.status();
      if (!FieldIsTrue(*response, "ok")) {
        // Deterministic rejection (bad DDL, unparsable dep): it failed the
        // same way on every shard it would reach, and it mutated nothing
        // server-side — tombstone the log entry so replays skip it.
        std::lock_guard<std::mutex> lock(mu_);
        catalog_log_[limit].clear();
        return response;
      }
      last = std::move(response);
    }
    return last;
  }
  if (request->cmd == "stats" && ring_.size() > 1) {
    return FleetStatsInternal(request->id, raw_response);
  }
  std::string signature = CanonicalRequestSignature(request->cmd, request->body);
  size_t owner = options_.route_to_first ? 0 : ring_.OwnerIndex(signature);
  return CallRouted(owner, request_line, raw_response);
}

Result<JsonValue> FleetClient::Call(const RequestSpec& spec,
                                    std::string* raw_response) {
  SQLEQ_ASSIGN_OR_RETURN(std::string line,
                         EncodeRequest(spec, options_.max_protocol));
  return Call(line, raw_response);
}

Result<std::vector<JsonValue>> FleetClient::Broadcast(
    const std::string& request_line) {
  std::vector<JsonValue> responses;
  responses.reserve(ring_.size());
  for (size_t shard = 0; shard < ring_.size(); ++shard) {
    SQLEQ_ASSIGN_OR_RETURN(JsonValue response,
                           CallOnShard(shard, request_line, nullptr));
    responses.push_back(std::move(response));
  }
  return responses;
}

Result<JsonValue> FleetClient::FleetStats(const std::string& id) {
  return FleetStatsInternal(id, nullptr);
}

Result<JsonValue> FleetClient::FleetStatsInternal(const std::string& id,
                                                  std::string* raw_response) {
  SQLEQ_ASSIGN_OR_RETURN(std::string line,
                         EncodeRequest(RequestSpec("stats", id), options_.max_protocol));
  uint64_t memo_hits = 0, memo_misses = 0, memo_entries = 0, memo_contexts = 0;
  uint64_t peer_hits = 0, peer_misses = 0, peer_fetches = 0, peer_served = 0;
  uint64_t peer_offers = 0, peer_accepted = 0;
  std::string per_shard = "[";
  for (size_t shard = 0; shard < ring_.size(); ++shard) {
    std::string shard_raw;
    SQLEQ_ASSIGN_OR_RETURN(JsonValue response,
                           CallOnShard(shard, line, &shard_raw));
    memo_hits += StatsField(response, "memo", "hits");
    memo_misses += StatsField(response, "memo", "misses");
    memo_entries += StatsField(response, "memo", "entries");
    memo_contexts += StatsField(response, "memo", "contexts");
    peer_hits += StatsField(response, "peer", "hits");
    peer_misses += StatsField(response, "peer", "misses");
    peer_fetches += StatsField(response, "peer", "fetches");
    peer_served += StatsField(response, "peer", "served");
    peer_offers += StatsField(response, "peer", "offers");
    peer_accepted += StatsField(response, "peer", "accepted");
    if (shard > 0) per_shard += ",";
    per_shard += shard_raw;
  }
  per_shard += "]";
  Stats client = stats();
  JsonObject memo;
  memo.Int("hits", memo_hits)
      .Int("misses", memo_misses)
      .Int("entries", memo_entries)
      .Int("contexts", memo_contexts);
  JsonObject peer;
  peer.Int("hits", peer_hits)
      .Int("misses", peer_misses)
      .Int("fetches", peer_fetches)
      .Int("served", peer_served)
      .Int("offers", peer_offers)
      .Int("accepted", peer_accepted);
  JsonObject client_obj;
  client_obj.Int("dials", client.dials)
      .Int("pool_reuses", client.pool_reuses)
      .Int("pool_evictions", client.pool_evictions)
      .Int("redirects_followed", client.redirects_followed)
      .Int("broadcasts", client.broadcasts)
      .Int("routed", client.routed)
      .Int("catalog_replays", client.catalog_replays);
  std::string rendered = JsonObject()
                             .Str("id", id)
                             .Bool("ok", true)
                             .Bool("fleet", true)
                             .Int("shards", ring_.size())
                             .Raw("memo", memo.Build())
                             .Raw("peer", peer.Build())
                             .Int("memo.peer.hits", peer_hits)
                             .Raw("client", client_obj.Build())
                             .Raw("per_shard", per_shard)
                             .Build();
  if (raw_response != nullptr) *raw_response = rendered;
  return ParseJson(rendered);
}

}  // namespace service
}  // namespace sqleq
