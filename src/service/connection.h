// Transport level of the sqleqd client stack: one TCP connection speaking
// the line protocol — dial, send one JSON request line, read and parse the
// one-line response — plus the retry/backoff building blocks
// (docs/robustness.md). Connection replaces the monolithic ServiceClient
// (service/client.h keeps a deprecated alias for one release); callers that
// want pooling, shard routing, and redirect following sit one level up, on
// FleetClient (service/fleet_client.h).
#ifndef SQLEQ_SERVICE_CONNECTION_H_
#define SQLEQ_SERVICE_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "util/json.h"
#include "util/socket.h"
#include "util/status.h"

namespace sqleq {
namespace service {

/// Client-side robustness knobs (docs/robustness.md). Attempts are total
/// tries including the first; backoff grows exponentially from
/// initial_backoff_ms, is capped at max_backoff_ms, raised to any
/// retry_after_ms hint the server sent, and jittered deterministically from
/// `seed` so test runs and reproductions sleep the same schedule.
struct RetryPolicy {
  size_t max_attempts = 4;
  uint64_t initial_backoff_ms = 50;
  double multiplier = 2.0;
  uint64_t max_backoff_ms = 2000;
  /// Jitter seed; same seed + same attempt number => same backoff.
  uint64_t seed = 0;
  /// Connect deadline for dialing and redialing. <=0 = blocking connect.
  std::chrono::milliseconds connect_timeout{0};
  /// Per-response read deadline (SO_RCVTIMEO). <=0 = wait forever.
  std::chrono::milliseconds request_timeout{0};
};

/// What CallWithRetry did, for logs and determinism tests.
struct RetryStats {
  size_t attempts = 0;
  size_t reconnects = 0;
  uint64_t total_backoff_ms = 0;
};

/// The backoff before retry `attempt` (1 = after the first failure): the
/// capped exponential step, raised to the server's retry_after_ms hint when
/// one arrived, then deterministically jittered into [base/2, base] from
/// (policy.seed, attempt). Pure — the schedule is reproducible.
uint64_t RetryBackoffMs(const RetryPolicy& policy, size_t attempt,
                        std::optional<uint64_t> server_hint_ms);

/// True when `response` is a structured backpressure response —
/// overloaded:true (admission shed) or draining:true (SIGTERM drain) — and
/// a retry may succeed. Extracts the server's retry_after_ms hint.
bool IsRetryableResponse(const JsonValue& response,
                         std::optional<uint64_t>* server_hint_ms);

/// One dialed connection to one sqleqd. Not thread-safe; confine to one
/// thread (FleetClient checks connections out of its pool exclusively).
class Connection {
 public:
  static Result<Connection> Connect(const std::string& host, int port);

  /// Connect honoring policy.connect_timeout and installing
  /// policy.request_timeout as the read deadline for every later Call.
  static Result<Connection> Connect(const std::string& host, int port,
                                    const RetryPolicy& policy);

  Connection(Connection&&) = default;
  Connection& operator=(Connection&&) = default;

  /// Sends one request line (newline appended) and blocks for the response
  /// line, parsed as JSON. A connection closed before the response is a
  /// FailedPrecondition (how callers observe server-side drops).
  Result<JsonValue> Call(const std::string& request_line);

  /// Call() that also hands back the raw response line (for byte-exact
  /// comparisons in tests).
  Result<JsonValue> Call(const std::string& request_line, std::string* raw_response);

  /// Call() wrapped in the retry loop: a transport failure (dropped
  /// connection, read deadline) redials and resends; an overloaded or
  /// draining response backs off per RetryBackoffMs and resends. The same
  /// line is resent verbatim, so a request carrying an id is idempotent on
  /// the server (memo + idempotency cache) even if the original response
  /// was lost. Returns the last response (or transport error) when the
  /// attempt budget runs out.
  Result<JsonValue> CallWithRetry(const std::string& request_line,
                                  const RetryPolicy& policy,
                                  std::string* raw_response = nullptr,
                                  RetryStats* stats = nullptr);

  /// Unpaired send/receive halves, for tests that interleave.
  Status Send(const std::string& request_line);
  Result<std::optional<std::string>> ReadLine();

  const std::string& host() const { return host_; }
  int port() const { return port_; }

  void Close() { conn_.Close(); }

 private:
  Connection(TcpConn conn, std::string host, int port)
      : conn_(std::move(conn)), host_(std::move(host)), port_(port) {}

  /// Replaces the connection by redialing host_:port_ (policy timeouts
  /// apply). The old connection is closed either way.
  Status Reconnect(const RetryPolicy& policy);

  TcpConn conn_;
  std::string host_;
  int port_ = 0;
};

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_CONNECTION_H_
