#include "service/session.h"

#include <utility>
#include <variant>
#include <vector>

#include "constraints/dependency.h"
#include "ir/parser.h"
#include "sql/sql_parser.h"
#include "util/string_util.h"

namespace sqleq {
namespace service {

Status Session::ApplyDdl(std::string_view script) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<sql::Statement> stmts, sql::ParseScript(script));
  // Stage into a copy: a failing statement must leave the session unchanged.
  sql::Catalog staged = catalog_;
  for (const sql::Statement& stmt : stmts) {
    const auto* create = std::get_if<sql::CreateTableStatement>(&stmt);
    if (create == nullptr) {
      return Status::InvalidArgument(
          "service ddl accepts only CREATE TABLE statements");
    }
    SQLEQ_RETURN_IF_ERROR(sql::ApplyCreateTable(*create, &staged));
  }
  catalog_ = std::move(staged);
  return Status::OK();
}

Status Session::AddRelation(const std::string& name, size_t arity, bool set_valued) {
  return catalog_.schema.AddRelation(name, arity, {}, set_valued);
}

Result<size_t> Session::AddDependency(std::string_view text, std::string label) {
  if (label.empty()) label = "sigma" + std::to_string(++dep_counter_);
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Dependency> deps,
                         ParseDependency(text, std::move(label)));
  for (Dependency& dep : deps) catalog_.sigma.push_back(std::move(dep));
  return deps.size();
}

Result<ConjunctiveQuery> Session::ResolveQuery(std::string_view text,
                                               const std::string& name) const {
  std::string_view trimmed = Trim(text);
  if (StartsWithIgnoreCase(trimmed, "SELECT")) {
    SQLEQ_ASSIGN_OR_RETURN(sql::TranslatedQuery translated,
                           sql::TranslateSql(trimmed, catalog_, name));
    if (translated.is_aggregate) {
      return Status::Unsupported(
          "aggregate queries are outside the service protocol (CQ-only)");
    }
    return *std::move(translated.cq);
  }
  SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseQuery(trimmed));
  return q.WithName(name);
}

}  // namespace service
}  // namespace sqleq
