#include "service/protocol.h"

#include <utility>

namespace sqleq {
namespace service {

Result<Request> ParseRequest(std::string_view line) {
  SQLEQ_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request line is not a JSON object");
  }
  Request request;
  const JsonValue* cmd = doc.Find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    return Status::InvalidArgument("request lacks a string \"cmd\" field");
  }
  request.cmd = cmd->string;
  if (const JsonValue* id = doc.Find("id"); id != nullptr) {
    if (!id->is_string()) {
      return Status::InvalidArgument("request \"id\" must be a string");
    }
    request.id = id->string;
  }
  request.body = std::move(doc);
  return request;
}

Result<Semantics> ParseSemanticsName(std::string_view name) {
  if (name == "set" || name == "S") return Semantics::kSet;
  if (name == "bag" || name == "B") return Semantics::kBag;
  if (name == "bag-set" || name == "BS") return Semantics::kBagSet;
  return Status::InvalidArgument("unknown semantics \"" + std::string(name) +
                                 "\" (expected set, bag, or bag-set)");
}

const char* SemanticsWireName(Semantics s) {
  switch (s) {
    case Semantics::kSet:
      return "set";
    case Semantics::kBag:
      return "bag";
    case Semantics::kBagSet:
      return "bag-set";
  }
  return "set";
}

std::string JsonString(std::string_view s) {
  return "\"" + EscapeJson(s) + "\"";
}

JsonObject& JsonObject::Str(std::string_view key, std::string_view value) {
  return Raw(key, JsonString(value));
}

JsonObject& JsonObject::Int(std::string_view key, uint64_t value) {
  return Raw(key, std::to_string(value));
}

JsonObject& JsonObject::Bool(std::string_view key, bool value) {
  return Raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::Raw(std::string_view key, std::string_view raw_json) {
  if (!fields_.empty()) fields_ += ",";
  fields_ += JsonString(key);
  fields_ += ":";
  fields_ += raw_json;
  return *this;
}

std::string JsonObject::Build() const { return "{" + fields_ + "}"; }

std::string ErrorResponse(const std::string& id, const Status& status) {
  JsonObject error;
  error.Str("code", StatusCodeToString(status.code()))
      .Str("message", status.message());
  return JsonObject()
      .Str("id", id)
      .Bool("ok", false)
      .Raw("error", error.Build())
      .Build();
}

std::string OverloadedResponse(const std::string& id, uint64_t retry_after_ms) {
  JsonObject error;
  error.Str("code", StatusCodeToString(StatusCode::kResourceExhausted))
      .Str("message", "server overloaded: in-flight request limit reached");
  return JsonObject()
      .Str("id", id)
      .Bool("ok", false)
      .Bool("overloaded", true)
      .Int("retry_after_ms", retry_after_ms)
      .Raw("error", error.Build())
      .Build();
}

std::string DrainingResponse(const std::string& id, uint64_t retry_after_ms) {
  JsonObject error;
  error.Str("code", StatusCodeToString(StatusCode::kFailedPrecondition))
      .Str("message", "server draining; retry against a replacement server");
  return JsonObject()
      .Str("id", id)
      .Bool("ok", false)
      .Bool("draining", true)
      .Int("retry_after_ms", retry_after_ms)
      .Raw("error", error.Build())
      .Build();
}

Result<std::string> RequireString(const JsonValue& body, const std::string& key) {
  const JsonValue* value = body.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument("request lacks a string \"" + key + "\" field");
  }
  return value->string;
}

std::optional<std::string> OptionalString(const JsonValue& body, const std::string& key) {
  const JsonValue* value = body.Find(key);
  if (value == nullptr || !value->is_string()) return std::nullopt;
  return value->string;
}

std::optional<double> OptionalNumber(const JsonValue& body, const std::string& key) {
  const JsonValue* value = body.Find(key);
  if (value == nullptr || !value->is_number()) return std::nullopt;
  return value->number;
}

bool OptionalBool(const JsonValue& body, const std::string& key, bool fallback) {
  const JsonValue* value = body.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kBool) return fallback;
  return value->boolean;
}

}  // namespace service
}  // namespace sqleq
