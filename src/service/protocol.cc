#include "service/protocol.h"

#include <utility>

namespace sqleq {
namespace service {
namespace {

bool FieldIsTrue(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
}

StatusCode ParseStatusCode(std::string_view name) {
  if (name == "OK") return StatusCode::kOk;
  if (name == "InvalidArgument") return StatusCode::kInvalidArgument;
  if (name == "NotFound") return StatusCode::kNotFound;
  if (name == "ResourceExhausted") return StatusCode::kResourceExhausted;
  if (name == "Cancelled") return StatusCode::kCancelled;
  if (name == "FailedPrecondition") return StatusCode::kFailedPrecondition;
  if (name == "Unsupported") return StatusCode::kUnsupported;
  return StatusCode::kInternal;
}

}  // namespace

std::optional<ProtocolVersion> MinVersionForVerb(std::string_view cmd) {
  if (cmd == "hello" || cmd == "ddl" || cmd == "relation" || cmd == "dep" ||
      cmd == "check" || cmd == "reformulate" || cmd == "lint" ||
      cmd == "stats") {
    return ProtocolVersion::kV1;
  }
  if (cmd == "memo_fetch" || cmd == "memo_offer") return ProtocolVersion::kV2;
  return std::nullopt;
}

ProtocolVersion NegotiateVersion(std::optional<double> requested_max) {
  if (!requested_max.has_value()) return ProtocolVersion::kV1;
  if (*requested_max < static_cast<double>(ToInt(ProtocolVersion::kV1))) {
    return ProtocolVersion::kV1;
  }
  if (*requested_max >= static_cast<double>(ToInt(kMaxProtocolVersion))) {
    return kMaxProtocolVersion;
  }
  return static_cast<ProtocolVersion>(static_cast<int>(*requested_max));
}

Result<Request> ParseRequest(std::string_view line) {
  SQLEQ_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request line is not a JSON object");
  }
  Request request;
  const JsonValue* cmd = doc.Find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    return Status::InvalidArgument("request lacks a string \"cmd\" field");
  }
  request.cmd = cmd->string;
  if (const JsonValue* id = doc.Find("id"); id != nullptr) {
    if (!id->is_string()) {
      return Status::InvalidArgument("request \"id\" must be a string");
    }
    request.id = id->string;
  }
  request.body = std::move(doc);
  return request;
}

Result<Semantics> ParseSemanticsName(std::string_view name) {
  if (name == "set" || name == "S") return Semantics::kSet;
  if (name == "bag" || name == "B") return Semantics::kBag;
  if (name == "bag-set" || name == "BS") return Semantics::kBagSet;
  return Status::InvalidArgument("unknown semantics \"" + std::string(name) +
                                 "\" (expected set, bag, or bag-set)");
}

const char* SemanticsWireName(Semantics s) {
  switch (s) {
    case Semantics::kSet:
      return "set";
    case Semantics::kBag:
      return "bag";
    case Semantics::kBagSet:
      return "bag-set";
  }
  return "set";
}

std::string JsonString(std::string_view s) {
  return "\"" + EscapeJson(s) + "\"";
}

JsonObject& JsonObject::Str(std::string_view key, std::string_view value) {
  return Raw(key, JsonString(value));
}

JsonObject& JsonObject::Int(std::string_view key, uint64_t value) {
  return Raw(key, std::to_string(value));
}

JsonObject& JsonObject::Bool(std::string_view key, bool value) {
  return Raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::Raw(std::string_view key, std::string_view raw_json) {
  if (!fields_.empty()) fields_ += ",";
  fields_ += JsonString(key);
  fields_ += ":";
  fields_ += raw_json;
  return *this;
}

std::string JsonObject::Build() const { return "{" + fields_ + "}"; }

Result<std::string> EncodeRequest(const RequestSpec& spec,
                                  ProtocolVersion version) {
  std::optional<ProtocolVersion> min = MinVersionForVerb(spec.cmd());
  if (!min.has_value()) {
    return Status::InvalidArgument("unknown request verb \"" + spec.cmd() + "\"");
  }
  if (ToInt(*min) > ToInt(version)) {
    return Status::InvalidArgument(
        "verb \"" + spec.cmd() + "\" requires protocol >= " +
        std::to_string(ToInt(*min)) + " (connection negotiated " +
        std::to_string(ToInt(version)) + ")");
  }
  JsonObject out;
  if (!spec.id().empty()) out.Str("id", spec.id());
  out.Str("cmd", spec.cmd());
  std::string fields = spec.fields().Build();  // "{...}"
  std::string line = out.Build();              // "{...}"
  if (fields.size() > 2) {
    line.pop_back();  // drop '}'
    if (line.size() > 1) line += ",";
    line.append(fields, 1, fields.size() - 1);  // splice "...}"
  }
  return line;
}

DecodedResponse DecodeResponseObject(JsonValue body) {
  DecodedResponse out;
  out.id = OptionalString(body, "id").value_or("");
  out.ok = FieldIsTrue(body, "ok");
  out.overloaded = FieldIsTrue(body, "overloaded");
  out.draining = FieldIsTrue(body, "draining");
  if (std::optional<double> hint = OptionalNumber(body, "retry_after_ms");
      hint.has_value() && *hint >= 0) {
    out.retry_after_ms = static_cast<uint64_t>(*hint);
  }
  if (const JsonValue* error = body.Find("error");
      error != nullptr && error->is_object()) {
    out.error_code =
        ParseStatusCode(OptionalString(*error, "code").value_or(""));
    out.error_message = OptionalString(*error, "message").value_or("");
  }
  if (FieldIsTrue(body, "not_owner")) {
    if (const JsonValue* owner = body.Find("owner");
        owner != nullptr && owner->is_object()) {
      RedirectInfo redirect;
      redirect.shard = OptionalString(*owner, "shard").value_or("");
      redirect.host = OptionalString(*owner, "host").value_or("");
      redirect.port = static_cast<int>(
          OptionalNumber(*owner, "port").value_or(0));
      redirect.epoch = static_cast<uint64_t>(
          OptionalNumber(body, "epoch").value_or(0));
      out.redirect = std::move(redirect);
    }
  }
  out.body = std::move(body);
  return out;
}

Result<DecodedResponse> DecodeResponse(std::string_view line) {
  SQLEQ_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("response line is not a JSON object");
  }
  return DecodeResponseObject(std::move(doc));
}

Status DecodedResponse::ToStatus() const {
  if (ok) return Status::OK();
  std::string message = error_message.empty()
                            ? std::string("remote request failed")
                            : error_message;
  switch (error_code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kUnsupported:
      return Status::Unsupported(std::move(message));
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(message));
}

std::string ErrorResponse(const std::string& id, const Status& status) {
  JsonObject error;
  error.Str("code", StatusCodeToString(status.code()))
      .Str("message", status.message());
  return JsonObject()
      .Str("id", id)
      .Bool("ok", false)
      .Raw("error", error.Build())
      .Build();
}

std::string OverloadedResponse(const std::string& id, uint64_t retry_after_ms) {
  JsonObject error;
  error.Str("code", StatusCodeToString(StatusCode::kResourceExhausted))
      .Str("message", "server overloaded: in-flight request limit reached");
  return JsonObject()
      .Str("id", id)
      .Bool("ok", false)
      .Bool("overloaded", true)
      .Int("retry_after_ms", retry_after_ms)
      .Raw("error", error.Build())
      .Build();
}

std::string DrainingResponse(const std::string& id, uint64_t retry_after_ms) {
  JsonObject error;
  error.Str("code", StatusCodeToString(StatusCode::kFailedPrecondition))
      .Str("message", "server draining; retry against a replacement server");
  return JsonObject()
      .Str("id", id)
      .Bool("ok", false)
      .Bool("draining", true)
      .Int("retry_after_ms", retry_after_ms)
      .Raw("error", error.Build())
      .Build();
}

std::string NotOwnerResponse(const std::string& id, const RedirectInfo& owner) {
  JsonObject owner_obj;
  owner_obj.Str("shard", owner.shard)
      .Str("host", owner.host)
      .Int("port", static_cast<uint64_t>(owner.port));
  JsonObject error;
  error.Str("code", StatusCodeToString(StatusCode::kFailedPrecondition))
      .Str("message", "request signature is owned by shard \"" + owner.shard +
                          "\"; follow the redirect");
  return JsonObject()
      .Str("id", id)
      .Bool("ok", false)
      .Bool("not_owner", true)
      .Raw("owner", owner_obj.Build())
      .Int("epoch", owner.epoch)
      .Raw("error", error.Build())
      .Build();
}

Result<std::string> RequireString(const JsonValue& body, const std::string& key) {
  const JsonValue* value = body.Find(key);
  if (value == nullptr || !value->is_string()) {
    return Status::InvalidArgument("request lacks a string \"" + key + "\" field");
  }
  return value->string;
}

std::optional<std::string> OptionalString(const JsonValue& body, const std::string& key) {
  const JsonValue* value = body.Find(key);
  if (value == nullptr || !value->is_string()) return std::nullopt;
  return value->string;
}

std::optional<double> OptionalNumber(const JsonValue& body, const std::string& key) {
  const JsonValue* value = body.Find(key);
  if (value == nullptr || !value->is_number()) return std::nullopt;
  return value->number;
}

bool OptionalBool(const JsonValue& body, const std::string& key, bool fallback) {
  const JsonValue* value = body.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kBool) return fallback;
  return value->boolean;
}

}  // namespace service
}  // namespace sqleq
