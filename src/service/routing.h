// Fleet routing (docs/fleet.md): which sqleqd shard owns a request, and
// which owns a memo record. Both sides of the wire — FleetClient picking a
// shard, and a v2 server deciding whether to serve or redirect — compute
// ownership through this one module, so they can never disagree.
//
// Ownership is consistent hashing over a virtual-node ring: each shard
// contributes kVnodesPerShard points hashed from "<name>#<i>", a key is
// owned by the first point clockwise of its hash. Adding or removing one
// shard moves only ~1/N of the key space.
//
// Requests are keyed by CanonicalRequestSignature, computed from the raw
// request fields only (never from session state): the client cannot
// translate SQL without the catalog, so both sides canonicalize Datalog
// query text through CanonicalQueryKey and fall back to trimmed raw text
// for anything else. Σ and the schema are deliberately excluded — the
// catalog is replicated to every shard, so it cannot differentiate owners.
#ifndef SQLEQ_SERVICE_ROUTING_H_
#define SQLEQ_SERVICE_ROUTING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace sqleq {
namespace service {

/// One shard's identity and dialing coordinates. `name` is the stable ring
/// identity (hash ownership survives host/port moves); host:port is where
/// to dial it.
struct ShardId {
  std::string name;
  std::string host;
  int port = 0;

  bool operator==(const ShardId& other) const {
    return name == other.name && host == other.host && port == other.port;
  }
};

/// Parses a fleet topology spec: comma-separated shards, each
/// "name=host:port" or bare "host:port" (named shard0, shard1, ... by
/// position). Duplicate names are an error — they would alias ring points.
Result<std::vector<ShardId>> ParseFleetSpec(std::string_view spec);

/// The inverse of ParseFleetSpec: "name=host:port,..." in shard order.
std::string RenderFleetSpec(const std::vector<ShardId>& shards);

/// FNV-1a 64-bit; the fleet's one hash function (ring points and keys).
uint64_t FleetHash(std::string_view s);

/// The consistent-hash ring. Deterministic for a given shard list: every
/// client and server built from the same topology agrees on every owner.
class HashRing {
 public:
  static constexpr size_t kVnodesPerShard = 64;

  HashRing() = default;
  explicit HashRing(std::vector<ShardId> shards);

  /// Index into shards() of the owner of `key`. Requires size() > 0.
  size_t OwnerIndex(std::string_view key) const;
  const ShardId& OwnerFor(std::string_view key) const {
    return shards_[OwnerIndex(key)];
  }

  /// Index of the shard named `name`, or -1.
  int IndexOf(std::string_view name) const;

  const std::vector<ShardId>& shards() const { return shards_; }
  size_t size() const { return shards_.size(); }
  bool empty() const { return shards_.empty(); }

 private:
  std::vector<ShardId> shards_;
  /// (point hash, shard index), sorted by hash. Ties broken by index so the
  /// ring is a pure function of the shard list.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

/// The routing key of a request, from raw request fields only. Query text
/// that parses as Datalog is canonicalized (renaming/atom-order-invariant,
/// chase/chase_cache.h); SQL and unparsable text contribute trimmed bytes.
/// check's two queries are sorted so q1/q2 order does not split ownership.
/// Catalog verbs and stats are broadcast, not routed, but still get a
/// stable signature (the verb name) so routing them is well-defined.
std::string CanonicalRequestSignature(const std::string& cmd,
                                      const JsonValue& body);

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_ROUTING_H_
