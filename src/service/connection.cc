#include "service/connection.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

namespace sqleq {
namespace service {
namespace {

/// splitmix64: full-period 64-bit mixer for the deterministic jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool FieldIsTrue(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
}

}  // namespace

uint64_t RetryBackoffMs(const RetryPolicy& policy, size_t attempt,
                        std::optional<uint64_t> server_hint_ms) {
  if (attempt == 0) attempt = 1;
  double step = static_cast<double>(policy.initial_backoff_ms) *
                std::pow(std::max(1.0, policy.multiplier),
                         static_cast<double>(attempt - 1));
  uint64_t base = static_cast<uint64_t>(
      std::min(step, static_cast<double>(policy.max_backoff_ms)));
  if (server_hint_ms.has_value()) base = std::max(base, *server_hint_ms);
  if (base == 0) return 0;
  // Deterministic jitter into [base/2, base]: spreads synchronized retries
  // without giving up reproducibility.
  uint64_t r = Mix64(policy.seed ^ Mix64(attempt));
  return base / 2 + r % (base - base / 2 + 1);
}

bool IsRetryableResponse(const JsonValue& response,
                         std::optional<uint64_t>* server_hint_ms) {
  if (!response.is_object()) return false;
  bool retryable = FieldIsTrue(response, "overloaded") ||
                   FieldIsTrue(response, "draining");
  if (!retryable) return false;
  if (server_hint_ms != nullptr) {
    if (const JsonValue* hint = response.Find("retry_after_ms");
        hint != nullptr && hint->is_number() && hint->number >= 0) {
      *server_hint_ms = static_cast<uint64_t>(hint->number);
    }
  }
  return true;
}

Result<Connection> Connection::Connect(const std::string& host, int port) {
  SQLEQ_ASSIGN_OR_RETURN(TcpConn conn, TcpConn::Connect(host, port));
  return Connection(std::move(conn), host, port);
}

Result<Connection> Connection::Connect(const std::string& host, int port,
                                             const RetryPolicy& policy) {
  Result<TcpConn> conn = policy.connect_timeout.count() > 0
                             ? TcpConn::Connect(host, port, policy.connect_timeout)
                             : TcpConn::Connect(host, port);
  if (!conn.ok()) return conn.status();
  Connection client(std::move(*conn), host, port);
  if (policy.request_timeout.count() > 0) {
    SQLEQ_RETURN_IF_ERROR(client.conn_.SetRecvTimeout(policy.request_timeout));
  }
  return client;
}

Status Connection::Reconnect(const RetryPolicy& policy) {
  Result<TcpConn> conn = policy.connect_timeout.count() > 0
                             ? TcpConn::Connect(host_, port_, policy.connect_timeout)
                             : TcpConn::Connect(host_, port_);
  if (!conn.ok()) return conn.status();
  conn_ = std::move(*conn);
  if (policy.request_timeout.count() > 0) {
    SQLEQ_RETURN_IF_ERROR(conn_.SetRecvTimeout(policy.request_timeout));
  }
  return Status::OK();
}

Result<JsonValue> Connection::Call(const std::string& request_line) {
  return Call(request_line, nullptr);
}

Result<JsonValue> Connection::Call(const std::string& request_line,
                                      std::string* raw_response) {
  SQLEQ_RETURN_IF_ERROR(Send(request_line));
  SQLEQ_ASSIGN_OR_RETURN(std::optional<std::string> line, conn_.ReadLine());
  if (!line.has_value()) {
    return Status::FailedPrecondition("connection closed before a response arrived");
  }
  if (raw_response != nullptr) *raw_response = *line;
  return ParseJson(*line);
}

Result<JsonValue> Connection::CallWithRetry(const std::string& request_line,
                                               const RetryPolicy& policy,
                                               std::string* raw_response,
                                               RetryStats* stats) {
  const size_t attempts = std::max<size_t>(1, policy.max_attempts);
  Result<JsonValue> result = Status::Internal("retry loop did not run");
  for (size_t attempt = 1; attempt <= attempts; ++attempt) {
    if (stats != nullptr) stats->attempts = attempt;
    result = Call(request_line, raw_response);
    std::optional<uint64_t> hint;
    bool reconnect;
    if (result.ok()) {
      if (!IsRetryableResponse(*result, &hint)) return result;
      // Draining means this server is going away: redial so the retry can
      // land on a replacement bound to the same port. Overloaded keeps the
      // healthy connection.
      reconnect = FieldIsTrue(*result, "draining");
    } else {
      reconnect = true;  // transport failure or read deadline
    }
    if (attempt == attempts) break;
    uint64_t backoff = RetryBackoffMs(policy, attempt, hint);
    if (stats != nullptr) stats->total_backoff_ms += backoff;
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    if (reconnect) {
      Status redial = Reconnect(policy);
      if (stats != nullptr && redial.ok()) ++stats->reconnects;
      // A failed redial leaves the dead connection in place; the next Call
      // fails fast and we burn an attempt, which is the intended bound.
    }
  }
  return result;
}

Status Connection::Send(const std::string& request_line) {
  return conn_.WriteAll(request_line + "\n");
}

Result<std::optional<std::string>> Connection::ReadLine() {
  return conn_.ReadLine();
}

}  // namespace service
}  // namespace sqleq
