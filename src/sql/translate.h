// SQL ↔ paper-formalism translation (§1, §2.2):
//   * CREATE TABLE → schema entry + Σ (key egds; PRIMARY KEY/UNIQUE make
//     the stored relation set valued, per the SQL-standard reading the
//     paper adopts; FOREIGN KEY → inclusion tgd);
//   * SELECT → ConjunctiveQuery or AggregateQuery plus the SQL-mandated
//     evaluation semantics: DISTINCT → set; no DISTINCT over all-set-valued
//     tables → bag-set; any bag-valued base table → bag.
#ifndef SQLEQ_SQL_TRANSLATE_H_
#define SQLEQ_SQL_TRANSLATE_H_

#include <optional>
#include <string>
#include <vector>

#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "sql/ast.h"
#include "util/status.h"

namespace sqleq {
namespace sql {

/// Accumulated DDL state: the schema plus the dependencies its constraints
/// induce.
struct Catalog {
  Schema schema;
  DependencySet sigma;
};

/// Applies one CREATE TABLE to the catalog.
Status ApplyCreateTable(const CreateTableStatement& stmt, Catalog* catalog);

/// Applies one INSERT to `db`. Fails on unknown table, arity mismatch, or a
/// duplicate row into a set-valued (keyed) table.
Status ApplyInsert(const InsertStatement& stmt, Database* db);

/// Runs a whole script (CREATE TABLE / INSERT) into a fresh catalog and
/// instance.
struct LoadedDatabase {
  Catalog catalog;
  Database database;
};
Result<LoadedDatabase> LoadScript(std::string_view script);

/// Builds a catalog from a ';'-separated DDL script.
Result<Catalog> CatalogFromScript(std::string_view ddl);

/// A translated SELECT.
struct TranslatedQuery {
  bool is_aggregate = false;
  std::optional<ConjunctiveQuery> cq;        // when !is_aggregate
  std::optional<AggregateQuery> aggregate;   // when is_aggregate
  Semantics semantics = Semantics::kBagSet;

  std::string ToString() const;
};

/// Translates a SELECT against `catalog.schema`. `name` names the resulting
/// query. GROUP BY queries must select exactly the grouping columns plus
/// one aggregate; non-grouped aggregates are 0-ary-grouping aggregates.
Result<TranslatedQuery> TranslateSelect(const SelectStatement& stmt,
                                        const Catalog& catalog,
                                        const std::string& name = "Q");

/// Convenience: parse + translate.
Result<TranslatedQuery> TranslateSql(std::string_view select_text, const Catalog& catalog,
                                     const std::string& name = "Q");

}  // namespace sql
}  // namespace sqleq

#endif  // SQLEQ_SQL_TRANSLATE_H_
