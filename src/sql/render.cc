#include "sql/render.h"

#include <map>

namespace sqleq {
namespace sql {
namespace {

struct BodyRendering {
  std::string from_clause;
  std::vector<std::string> where_conjuncts;
  /// First occurrence of each variable as "t<i>.<col>".
  std::map<std::string, std::string> var_site;  // keyed by variable name
};

Result<BodyRendering> RenderBody(const std::vector<Atom>& body, const Schema& schema) {
  BodyRendering out;
  for (size_t i = 0; i < body.size(); ++i) {
    const Atom& atom = body[i];
    SQLEQ_ASSIGN_OR_RETURN(RelationInfo info, schema.GetRelation(atom.predicate()));
    if (info.arity != atom.arity()) {
      return Status::InvalidArgument("atom " + atom.ToString() +
                                     " disagrees with schema arity");
    }
    std::string alias = "t" + std::to_string(i);
    if (i > 0) out.from_clause += ", ";
    out.from_clause += atom.predicate() + " " + alias;
    for (size_t j = 0; j < atom.arity(); ++j) {
      std::string site = alias + "." + info.attributes[j];
      Term arg = atom.args()[j];
      if (arg.IsConstant()) {
        out.where_conjuncts.push_back(site + " = " + ValueToString(arg.value()));
        continue;
      }
      std::string key(arg.name());
      auto it = out.var_site.find(key);
      if (it == out.var_site.end()) {
        out.var_site.emplace(std::move(key), std::move(site));
      } else {
        out.where_conjuncts.push_back(it->second + " = " + site);
      }
    }
  }
  return out;
}

Result<std::string> SiteOf(Term t, const BodyRendering& body) {
  if (t.IsConstant()) return ValueToString(t.value());
  auto it = body.var_site.find(std::string(t.name()));
  if (it == body.var_site.end()) {
    return Status::InvalidArgument("head variable " + t.ToString() +
                                   " does not occur in the body");
  }
  return it->second;
}

std::string WhereClause(const std::vector<std::string>& conjuncts) {
  if (conjuncts.empty()) return "";
  std::string out = " WHERE ";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjuncts[i];
  }
  return out;
}

}  // namespace

Result<std::string> RenderSql(const ConjunctiveQuery& q, const Schema& schema,
                              Semantics semantics) {
  SQLEQ_ASSIGN_OR_RETURN(BodyRendering body, RenderBody(q.body(), schema));
  std::string select = "SELECT ";
  if (semantics == Semantics::kSet) select += "DISTINCT ";
  if (q.head().empty()) {
    // CQ heads are never empty in this library's constructors, but render a
    // defensible projection anyway.
    select += "1";
  }
  for (size_t i = 0; i < q.head().size(); ++i) {
    if (i > 0) select += ", ";
    SQLEQ_ASSIGN_OR_RETURN(std::string site, SiteOf(q.head()[i], body));
    select += site;
  }
  return select + " FROM " + body.from_clause + WhereClause(body.where_conjuncts);
}

Result<std::string> RenderAggregateSql(const AggregateQuery& q, const Schema& schema) {
  SQLEQ_ASSIGN_OR_RETURN(BodyRendering body, RenderBody(q.body(), schema));
  std::string select = "SELECT ";
  std::vector<std::string> group_sites;
  for (size_t i = 0; i < q.grouping().size(); ++i) {
    SQLEQ_ASSIGN_OR_RETURN(std::string site, SiteOf(q.grouping()[i], body));
    if (i > 0) select += ", ";
    select += site;
    group_sites.push_back(std::move(site));
  }
  if (!q.grouping().empty()) select += ", ";
  switch (q.function()) {
    case AggregateFunction::kCountStar:
      select += "COUNT(*)";
      break;
    case AggregateFunction::kSum:
    case AggregateFunction::kCount:
    case AggregateFunction::kMax:
    case AggregateFunction::kMin: {
      const char* fn = q.function() == AggregateFunction::kSum     ? "SUM"
                       : q.function() == AggregateFunction::kCount ? "COUNT"
                       : q.function() == AggregateFunction::kMax   ? "MAX"
                                                                   : "MIN";
      SQLEQ_ASSIGN_OR_RETURN(std::string site, SiteOf(*q.agg_arg(), body));
      select += std::string(fn) + "(" + site + ")";
      break;
    }
  }
  std::string out =
      select + " FROM " + body.from_clause + WhereClause(body.where_conjuncts);
  if (!group_sites.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_sites.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_sites[i];
    }
  }
  return out;
}

}  // namespace sql
}  // namespace sqleq
