// Rendering CQ / aggregate queries back to SQL text, so reformulations
// produced by the C&B family can be returned to a SQL-speaking caller.
#ifndef SQLEQ_SQL_RENDER_H_
#define SQLEQ_SQL_RENDER_H_

#include <string>

#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {
namespace sql {

/// Renders `q` as a SELECT over `schema` (attribute names are taken from the
/// schema): one FROM alias per body atom, WHERE equalities reconstructed
/// from repeated variables and embedded constants. `semantics` == kSet emits
/// DISTINCT. Fails when a head term never occurs in the body (impossible
/// for safe queries) or the schema lacks a predicate.
Result<std::string> RenderSql(const ConjunctiveQuery& q, const Schema& schema,
                              Semantics semantics = Semantics::kBagSet);

/// Renders an aggregate query as SELECT ... GROUP BY.
Result<std::string> RenderAggregateSql(const AggregateQuery& q, const Schema& schema);

}  // namespace sql
}  // namespace sqleq

#endif  // SQLEQ_SQL_RENDER_H_
