// Recursive-descent parser for the SQL fragment (see ast.h).
#ifndef SQLEQ_SQL_SQL_PARSER_H_
#define SQLEQ_SQL_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace sqleq {
namespace sql {

/// Parses one statement (SELECT or CREATE TABLE), optional trailing ';'.
Result<Statement> ParseStatement(std::string_view text);

/// Parses a SELECT; anything else is an error.
Result<SelectStatement> ParseSelect(std::string_view text);

/// Parses a CREATE TABLE; anything else is an error.
Result<CreateTableStatement> ParseCreateTable(std::string_view text);

/// Parses an INSERT INTO ... VALUES ...; anything else is an error.
Result<InsertStatement> ParseInsert(std::string_view text);

/// Parses a ';'-separated script of statements.
Result<std::vector<Statement>> ParseScript(std::string_view text);

}  // namespace sql
}  // namespace sqleq

#endif  // SQLEQ_SQL_SQL_PARSER_H_
