// SQL tokenizer for the supported fragment.
#ifndef SQLEQ_SQL_LEXER_H_
#define SQLEQ_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sqleq {
namespace sql {

enum class TokenKind {
  kIdent,    // unquoted identifier or keyword (case preserved; match
             // case-insensitively)
  kNumber,   // integer literal, optional leading '-'
  kString,   // 'single quoted'
  kLParen,
  kRParen,
  kComma,
  kDot,
  kEquals,
  kStar,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t pos = 0;
};

/// Tokenizes `input`; always ends with a kEnd token on success.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace sql
}  // namespace sqleq

#endif  // SQLEQ_SQL_LEXER_H_
