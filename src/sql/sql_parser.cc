#include "sql/sql_parser.h"

#include "sql/lexer.h"
#include "util/string_util.h"

namespace sqleq {
namespace sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = i_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[i_ < tokens_.size() - 1 ? i_++ : i_]; }
  bool At(TokenKind k) const { return Peek().kind == k; }
  bool AtKeyword(std::string_view kw) const {
    return At(TokenKind::kIdent) && EqualsIgnoreCase(Peek().text, kw);
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (!AtKeyword(kw)) return false;
    Next();
    return true;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return Status::InvalidArgument("expected " + std::string(kw) + " near offset " +
                                     std::to_string(Peek().pos));
    }
    return Status::OK();
  }
  Status Expect(TokenKind k, std::string_view what) {
    if (!At(k)) {
      return Status::InvalidArgument("expected " + std::string(what) + " near offset " +
                                     std::to_string(Peek().pos));
    }
    Next();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(std::string_view what) {
    if (!At(TokenKind::kIdent)) {
      return Status::InvalidArgument("expected " + std::string(what) + " near offset " +
                                     std::to_string(Peek().pos));
    }
    return Next().text;
  }

  Result<ColumnRef> ParseColumnRef() {
    SQLEQ_ASSIGN_OR_RETURN(std::string first, ExpectIdent("a column reference"));
    ColumnRef ref;
    if (At(TokenKind::kDot)) {
      Next();
      SQLEQ_ASSIGN_OR_RETURN(std::string col, ExpectIdent("a column name"));
      ref.qualifier = first;
      ref.column = col;
    } else {
      ref.column = first;
    }
    return ref;
  }

  Result<Literal> ParseLiteral() {
    if (At(TokenKind::kNumber)) {
      return Literal{Value(static_cast<int64_t>(std::stoll(Next().text)))};
    }
    if (At(TokenKind::kString)) {
      return Literal{Value(Next().text)};
    }
    return Status::InvalidArgument("expected a literal near offset " +
                                   std::to_string(Peek().pos));
  }

  bool AtLiteral() const {
    return At(TokenKind::kNumber) || At(TokenKind::kString);
  }

  bool AtAggregateCall() const {
    if (!At(TokenKind::kIdent) || Peek(1).kind != TokenKind::kLParen) return false;
    const std::string& f = Peek().text;
    return EqualsIgnoreCase(f, "SUM") || EqualsIgnoreCase(f, "COUNT") ||
           EqualsIgnoreCase(f, "MAX") || EqualsIgnoreCase(f, "MIN");
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (AtAggregateCall()) {
      item.kind = SelectItem::Kind::kAggregate;
      item.aggregate_function = ToUpper(Next().text);
      SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (At(TokenKind::kStar)) {
        if (item.aggregate_function != "COUNT") {
          return Status::InvalidArgument("only COUNT may take '*'");
        }
        Next();
        item.kind = SelectItem::Kind::kCountStar;
      } else {
        SQLEQ_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
      }
      SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    } else if (AtLiteral()) {
      item.kind = SelectItem::Kind::kLiteral;
      SQLEQ_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      item.literal = lit;
    } else {
      item.kind = SelectItem::Kind::kColumn;
      SQLEQ_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
    }
    if (ConsumeKeyword("AS")) {
      SQLEQ_ASSIGN_OR_RETURN(item.output_alias, ExpectIdent("an output alias"));
    }
    return item;
  }

  /// table_ref := IDENT [AS alias | alias]
  Status ParseTableRef(SelectStatement* stmt) {
    TableRef ref;
    SQLEQ_ASSIGN_OR_RETURN(ref.table, ExpectIdent("a table name"));
    if (ConsumeKeyword("AS")) {
      SQLEQ_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("a table alias"));
    } else if (At(TokenKind::kIdent) && !AtKeyword("WHERE") && !AtKeyword("GROUP") &&
               !AtKeyword("JOIN") && !AtKeyword("INNER") && !AtKeyword("ON")) {
      ref.alias = Next().text;
    } else {
      ref.alias = ref.table;
    }
    stmt->from.push_back(std::move(ref));
    return Status::OK();
  }

  /// equality_chain := cond (AND cond)*; appended to stmt->where.
  Status ParseEqualityChain(SelectStatement* stmt) {
    while (true) {
      EqualityCondition cond;
      if (AtLiteral()) {
        SQLEQ_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        cond.lhs = lit;
      } else {
        SQLEQ_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        cond.lhs = ref;
      }
      SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'='"));
      if (AtLiteral()) {
        SQLEQ_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        cond.rhs = lit;
      } else {
        SQLEQ_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        cond.rhs = ref;
      }
      stmt->where.push_back(std::move(cond));
      if (ConsumeKeyword("AND")) continue;
      break;
    }
    return Status::OK();
  }

  Result<SelectStatement> ParseSelectBody() {
    SelectStatement stmt;
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (ConsumeKeyword("DISTINCT")) stmt.distinct = true;
    if (At(TokenKind::kStar)) {
      Next();
      stmt.select_star = true;
    } else {
      while (true) {
        SQLEQ_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        stmt.items.push_back(std::move(item));
        if (At(TokenKind::kComma)) {
          Next();
          continue;
        }
        break;
      }
    }
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      SQLEQ_RETURN_IF_ERROR(ParseTableRef(&stmt));
      // Explicit join syntax: [INNER] JOIN <table> ON <equality chain>.
      // The ON conditions land in the WHERE conjunction — identical
      // semantics for the inner-join fragment.
      while (AtKeyword("JOIN") || AtKeyword("INNER")) {
        if (ConsumeKeyword("INNER")) {
          SQLEQ_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        } else {
          SQLEQ_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        }
        SQLEQ_RETURN_IF_ERROR(ParseTableRef(&stmt));
        SQLEQ_RETURN_IF_ERROR(ExpectKeyword("ON"));
        SQLEQ_RETURN_IF_ERROR(ParseEqualityChain(&stmt));
      }
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    if (ConsumeKeyword("WHERE")) {
      SQLEQ_RETURN_IF_ERROR(ParseEqualityChain(&stmt));
    }
    if (ConsumeKeyword("GROUP")) {
      SQLEQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SQLEQ_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        stmt.group_by.push_back(std::move(ref));
        if (At(TokenKind::kComma)) {
          Next();
          continue;
        }
        break;
      }
    }
    return stmt;
  }

  Result<CreateTableStatement> ParseCreateTableBody() {
    CreateTableStatement stmt;
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    SQLEQ_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("a table name"));
    SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      if (AtKeyword("PRIMARY") || AtKeyword("UNIQUE") || AtKeyword("FOREIGN")) {
        SQLEQ_ASSIGN_OR_RETURN(TableConstraint c, ParseTableConstraint());
        stmt.constraints.push_back(std::move(c));
      } else {
        ColumnDef col;
        SQLEQ_ASSIGN_OR_RETURN(col.name, ExpectIdent("a column name"));
        SQLEQ_ASSIGN_OR_RETURN(col.type, ExpectIdent("a column type"));
        // Optional VARCHAR(n)-style type argument.
        if (At(TokenKind::kLParen)) {
          Next();
          SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kNumber, "a type length"));
          SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        }
        while (true) {
          if (ConsumeKeyword("PRIMARY")) {
            SQLEQ_RETURN_IF_ERROR(ExpectKeyword("KEY"));
            col.primary_key = true;
          } else if (ConsumeKeyword("UNIQUE")) {
            col.unique = true;
          } else if (ConsumeKeyword("NOT")) {
            SQLEQ_RETURN_IF_ERROR(ExpectKeyword("NULL"));  // accepted, no-op
          } else {
            break;
          }
        }
        stmt.columns.push_back(std::move(col));
      }
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return stmt;
  }

  Result<TableConstraint> ParseTableConstraint() {
    TableConstraint c;
    if (ConsumeKeyword("PRIMARY")) {
      SQLEQ_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      c.kind = TableConstraint::Kind::kPrimaryKey;
      SQLEQ_ASSIGN_OR_RETURN(c.columns, ParseColumnNameList());
      return c;
    }
    if (ConsumeKeyword("UNIQUE")) {
      c.kind = TableConstraint::Kind::kUnique;
      SQLEQ_ASSIGN_OR_RETURN(c.columns, ParseColumnNameList());
      return c;
    }
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("FOREIGN"));
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("KEY"));
    c.kind = TableConstraint::Kind::kForeignKey;
    SQLEQ_ASSIGN_OR_RETURN(c.columns, ParseColumnNameList());
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
    SQLEQ_ASSIGN_OR_RETURN(c.ref_table, ExpectIdent("a referenced table"));
    SQLEQ_ASSIGN_OR_RETURN(c.ref_columns, ParseColumnNameList());
    return c;
  }

  Result<std::vector<std::string>> ParseColumnNameList() {
    SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    std::vector<std::string> cols;
    while (true) {
      SQLEQ_ASSIGN_OR_RETURN(std::string col, ExpectIdent("a column name"));
      cols.push_back(std::move(col));
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return cols;
  }

  Result<InsertStatement> ParseInsertBody() {
    InsertStatement stmt;
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    SQLEQ_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("a table name"));
    SQLEQ_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      std::vector<Literal> row;
      while (true) {
        SQLEQ_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        row.push_back(std::move(lit));
        if (At(TokenKind::kComma)) {
          Next();
          continue;
        }
        break;
      }
      SQLEQ_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      stmt.rows.push_back(std::move(row));
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    return stmt;
  }

  Status FinishStatement() {
    if (At(TokenKind::kSemicolon)) Next();
    if (!At(TokenKind::kEnd)) {
      return Status::InvalidArgument("trailing input near offset " +
                                     std::to_string(Peek().pos));
    }
    return Status::OK();
  }

  size_t i_ = 0;
  std::vector<Token> tokens_;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  if (p.AtKeyword("CREATE")) {
    SQLEQ_ASSIGN_OR_RETURN(CreateTableStatement stmt, p.ParseCreateTableBody());
    SQLEQ_RETURN_IF_ERROR(p.FinishStatement());
    return Statement(std::move(stmt));
  }
  if (p.AtKeyword("INSERT")) {
    SQLEQ_ASSIGN_OR_RETURN(InsertStatement stmt, p.ParseInsertBody());
    SQLEQ_RETURN_IF_ERROR(p.FinishStatement());
    return Statement(std::move(stmt));
  }
  SQLEQ_ASSIGN_OR_RETURN(SelectStatement stmt, p.ParseSelectBody());
  SQLEQ_RETURN_IF_ERROR(p.FinishStatement());
  return Statement(std::move(stmt));
}

Result<SelectStatement> ParseSelect(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  SQLEQ_ASSIGN_OR_RETURN(SelectStatement stmt, p.ParseSelectBody());
  SQLEQ_RETURN_IF_ERROR(p.FinishStatement());
  return stmt;
}

Result<CreateTableStatement> ParseCreateTable(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  SQLEQ_ASSIGN_OR_RETURN(CreateTableStatement stmt, p.ParseCreateTableBody());
  SQLEQ_RETURN_IF_ERROR(p.FinishStatement());
  return stmt;
}

Result<InsertStatement> ParseInsert(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  SQLEQ_ASSIGN_OR_RETURN(InsertStatement stmt, p.ParseInsertBody());
  SQLEQ_RETURN_IF_ERROR(p.FinishStatement());
  return stmt;
}

Result<std::vector<Statement>> ParseScript(std::string_view text) {
  std::vector<Statement> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(';', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view piece = Trim(text.substr(start, end - start));
    if (!piece.empty()) {
      SQLEQ_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(piece));
      out.push_back(std::move(stmt));
    }
    start = end + 1;
  }
  return out;
}

}  // namespace sql
}  // namespace sqleq
