#include "sql/translate.h"

#include <map>
#include <unordered_map>

#include "constraints/builders.h"
#include "sql/sql_parser.h"
#include "util/string_util.h"

namespace sqleq {
namespace sql {
namespace {

/// Union-find over terms for WHERE-equality resolution; constants win as
/// representatives, and two distinct constants in one class are a
/// contradiction.
class TermUnionFind {
 public:
  Term Find(Term t) {
    auto it = parent_.find(t);
    if (it == parent_.end() || it->second == t) return t;
    Term root = Find(it->second);
    parent_[t] = root;
    return root;
  }

  Status Union(Term a, Term b) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return Status::OK();
    if (ra.IsConstant() && rb.IsConstant()) {
      return Status::Unsupported("contradictory WHERE clause: " + ra.ToString() +
                                 " = " + rb.ToString() +
                                 " (the always-empty query is outside the CQ class)");
    }
    if (ra.IsConstant()) std::swap(ra, rb);
    parent_[ra] = rb;  // ra is a variable; rb may be a constant
    return Status::OK();
  }

 private:
  TermMap parent_;
};

struct FromEntry {
  std::string table;
  RelationInfo info;
  std::vector<Term> vars;
};

}  // namespace

Status ApplyCreateTable(const CreateTableStatement& stmt, Catalog* catalog) {
  std::vector<std::string> attributes;
  std::unordered_map<std::string, size_t> position;
  for (const ColumnDef& col : stmt.columns) {
    if (position.count(col.name) > 0) {
      return Status::InvalidArgument("duplicate column '" + col.name + "' in table '" +
                                     stmt.table + "'");
    }
    position.emplace(col.name, attributes.size());
    attributes.push_back(col.name);
  }
  size_t arity = attributes.size();
  if (arity == 0) {
    return Status::InvalidArgument("table '" + stmt.table + "' has no columns");
  }

  // Gather key column sets (column-level and table-level).
  std::vector<std::vector<size_t>> keys;
  for (const ColumnDef& col : stmt.columns) {
    if (col.primary_key || col.unique) keys.push_back({position.at(col.name)});
  }
  auto resolve = [&position, &stmt](const std::vector<std::string>& names)
      -> Result<std::vector<size_t>> {
    std::vector<size_t> out;
    for (const std::string& n : names) {
      auto it = position.find(n);
      if (it == position.end()) {
        return Status::NotFound("unknown column '" + n + "' in table '" + stmt.table +
                                "'");
      }
      out.push_back(it->second);
    }
    return out;
  };
  std::vector<const TableConstraint*> foreign_keys;
  for (const TableConstraint& c : stmt.constraints) {
    if (c.kind == TableConstraint::Kind::kForeignKey) {
      foreign_keys.push_back(&c);
      continue;
    }
    SQLEQ_ASSIGN_OR_RETURN(std::vector<size_t> cols, resolve(c.columns));
    keys.push_back(std::move(cols));
  }

  // The SQL-standard reading the paper adopts (§1): a stored relation is a
  // set exactly when the CREATE TABLE carries a PRIMARY KEY or UNIQUE clause.
  bool set_valued = !keys.empty();
  SQLEQ_RETURN_IF_ERROR(
      catalog->schema.AddRelation(stmt.table, arity, attributes, set_valued));
  for (const std::vector<size_t>& key : keys) {
    SQLEQ_RETURN_IF_ERROR(catalog->schema.DeclareKey(stmt.table, key));
    if (key.size() < arity) {
      SQLEQ_ASSIGN_OR_RETURN(std::vector<Dependency> egds,
                             MakeKeyEgds(stmt.table, arity, key, "key_" + stmt.table));
      for (Dependency& d : egds) catalog->sigma.push_back(std::move(d));
    }
  }
  for (const TableConstraint* fk : foreign_keys) {
    SQLEQ_ASSIGN_OR_RETURN(std::vector<size_t> src_cols, resolve(fk->columns));
    Result<RelationInfo> target = catalog->schema.GetRelation(fk->ref_table);
    if (!target.ok()) {
      return Status::NotFound("FOREIGN KEY in '" + stmt.table +
                              "' references unknown table '" + fk->ref_table + "'");
    }
    std::vector<size_t> dst_cols;
    for (const std::string& n : fk->ref_columns) {
      bool found = false;
      for (size_t i = 0; i < target->attributes.size(); ++i) {
        if (target->attributes[i] == n) {
          dst_cols.push_back(i);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("FOREIGN KEY references unknown column '" + n +
                                "' of table '" + fk->ref_table + "'");
      }
    }
    SQLEQ_ASSIGN_OR_RETURN(
        Dependency fk_dep,
        MakeForeignKey(stmt.table, arity, src_cols, fk->ref_table, target->arity,
                       dst_cols, "fk_" + stmt.table + "_" + fk->ref_table));
    catalog->sigma.push_back(std::move(fk_dep));
  }
  return Status::OK();
}

Status ApplyInsert(const InsertStatement& stmt, Database* db) {
  size_t arity = db->schema().ArityOf(stmt.table);
  if (!db->schema().HasRelation(stmt.table)) {
    return Status::NotFound("INSERT into unknown table '" + stmt.table + "'");
  }
  for (const std::vector<Literal>& row : stmt.rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument("INSERT row with " + std::to_string(row.size()) +
                                     " values into '" + stmt.table + "' (arity " +
                                     std::to_string(arity) + ")");
    }
    Tuple t;
    t.reserve(row.size());
    for (const Literal& lit : row) t.push_back(Term::Const(lit.value));
    SQLEQ_RETURN_IF_ERROR(db->Insert(stmt.table, t));
  }
  return Status::OK();
}

Result<LoadedDatabase> LoadScript(std::string_view script) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(script));
  Catalog catalog;
  bool saw_insert = false;
  for (const Statement& stmt : stmts) {
    if (const auto* create = std::get_if<CreateTableStatement>(&stmt)) {
      if (saw_insert) {
        return Status::InvalidArgument("CREATE TABLE must precede all INSERTs");
      }
      SQLEQ_RETURN_IF_ERROR(ApplyCreateTable(*create, &catalog));
    } else if (std::holds_alternative<InsertStatement>(stmt)) {
      saw_insert = true;
    } else {
      return Status::InvalidArgument("load script may contain only CREATE TABLE and "
                                     "INSERT statements");
    }
  }
  LoadedDatabase out{catalog, Database(catalog.schema)};
  for (const Statement& stmt : stmts) {
    if (const auto* insert = std::get_if<InsertStatement>(&stmt)) {
      SQLEQ_RETURN_IF_ERROR(ApplyInsert(*insert, &out.database));
    }
  }
  return out;
}

Result<Catalog> CatalogFromScript(std::string_view ddl) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(ddl));
  Catalog catalog;
  for (const Statement& stmt : stmts) {
    const auto* create = std::get_if<CreateTableStatement>(&stmt);
    if (create == nullptr) {
      return Status::InvalidArgument("DDL script may contain only CREATE TABLE");
    }
    SQLEQ_RETURN_IF_ERROR(ApplyCreateTable(*create, &catalog));
  }
  return catalog;
}

std::string TranslatedQuery::ToString() const {
  std::string out = is_aggregate ? aggregate->ToString() : cq->ToString();
  out += "  [semantics: ";
  out += SemanticsToString(semantics);
  out += "]";
  return out;
}

Result<TranslatedQuery> TranslateSelect(const SelectStatement& stmt,
                                        const Catalog& catalog,
                                        const std::string& name) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT without FROM is outside the CQ class");
  }
  // FROM: one atom per table reference, fresh variable per column.
  std::map<std::string, FromEntry> aliases;
  std::vector<std::string> alias_order;
  for (const TableRef& ref : stmt.from) {
    SQLEQ_ASSIGN_OR_RETURN(RelationInfo info, catalog.schema.GetRelation(ref.table));
    if (aliases.count(ref.alias) > 0) {
      return Status::InvalidArgument("duplicate table alias '" + ref.alias + "'");
    }
    FromEntry entry{ref.table, info, {}};
    for (const std::string& col : info.attributes) {
      entry.vars.push_back(Term::FreshVar("V_" + ref.alias + "_" + col));
    }
    aliases.emplace(ref.alias, std::move(entry));
    alias_order.push_back(ref.alias);
  }

  auto resolve_column = [&aliases](const ColumnRef& ref) -> Result<Term> {
    if (!ref.qualifier.empty()) {
      auto it = aliases.find(ref.qualifier);
      if (it == aliases.end()) {
        return Status::NotFound("unknown table alias '" + ref.qualifier + "'");
      }
      for (size_t i = 0; i < it->second.info.attributes.size(); ++i) {
        if (it->second.info.attributes[i] == ref.column) return it->second.vars[i];
      }
      return Status::NotFound("table '" + it->second.table + "' has no column '" +
                              ref.column + "'");
    }
    std::optional<Term> found;
    for (const auto& [alias, entry] : aliases) {
      for (size_t i = 0; i < entry.info.attributes.size(); ++i) {
        if (entry.info.attributes[i] == ref.column) {
          if (found.has_value()) {
            return Status::InvalidArgument("ambiguous column '" + ref.column + "'");
          }
          found = entry.vars[i];
        }
      }
    }
    if (!found.has_value()) {
      return Status::NotFound("unknown column '" + ref.column + "'");
    }
    return *found;
  };

  // WHERE: union-find over terms.
  TermUnionFind uf;
  for (const EqualityCondition& cond : stmt.where) {
    auto side_term = [&](const std::variant<ColumnRef, Literal>& side) -> Result<Term> {
      if (const auto* col = std::get_if<ColumnRef>(&side)) return resolve_column(*col);
      return Term::Const(std::get<Literal>(side).value);
    };
    SQLEQ_ASSIGN_OR_RETURN(Term l, side_term(cond.lhs));
    SQLEQ_ASSIGN_OR_RETURN(Term r, side_term(cond.rhs));
    SQLEQ_RETURN_IF_ERROR(uf.Union(l, r));
  }

  // Body atoms with representatives substituted.
  std::vector<Atom> body;
  for (const std::string& alias : alias_order) {
    FromEntry& entry = aliases.at(alias);
    std::vector<Term> args;
    for (Term v : entry.vars) args.push_back(uf.Find(v));
    body.emplace_back(entry.table, std::move(args));
  }

  // SELECT list.
  std::vector<Term> plain_items;
  std::optional<AggregateFunction> agg_fn;
  std::optional<Term> agg_arg;
  if (stmt.select_star) {
    for (const std::string& alias : alias_order) {
      for (Term v : aliases.at(alias).vars) plain_items.push_back(uf.Find(v));
    }
  }
  for (const SelectItem& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kColumn: {
        SQLEQ_ASSIGN_OR_RETURN(Term t, resolve_column(item.column));
        plain_items.push_back(uf.Find(t));
        break;
      }
      case SelectItem::Kind::kLiteral:
        plain_items.push_back(Term::Const(item.literal->value));
        break;
      case SelectItem::Kind::kCountStar:
        if (agg_fn.has_value()) {
          return Status::Unsupported("multiple aggregates in one SELECT");
        }
        agg_fn = AggregateFunction::kCountStar;
        break;
      case SelectItem::Kind::kAggregate: {
        if (agg_fn.has_value()) {
          return Status::Unsupported("multiple aggregates in one SELECT");
        }
        if (item.aggregate_function == "SUM") {
          agg_fn = AggregateFunction::kSum;
        } else if (item.aggregate_function == "COUNT") {
          agg_fn = AggregateFunction::kCount;
        } else if (item.aggregate_function == "MAX") {
          agg_fn = AggregateFunction::kMax;
        } else if (item.aggregate_function == "MIN") {
          agg_fn = AggregateFunction::kMin;
        } else {
          return Status::Unsupported("aggregate function " + item.aggregate_function);
        }
        SQLEQ_ASSIGN_OR_RETURN(Term t, resolve_column(item.column));
        agg_arg = uf.Find(t);
        break;
      }
    }
  }

  TranslatedQuery out;
  // Semantics per the SQL standard (§1 of the paper): DISTINCT → set; bags
  // otherwise, with set-valued stored relations → bag-set.
  if (stmt.distinct) {
    out.semantics = Semantics::kSet;
  } else {
    bool all_set_valued = true;
    for (const TableRef& ref : stmt.from) {
      if (!catalog.schema.IsSetValued(ref.table)) {
        all_set_valued = false;
        break;
      }
    }
    out.semantics = all_set_valued ? Semantics::kBagSet : Semantics::kBag;
  }

  if (agg_fn.has_value()) {
    if (stmt.distinct) {
      return Status::Unsupported("SELECT DISTINCT with aggregates");
    }
    // Validate GROUP BY: grouping terms are the resolved GROUP BY columns,
    // and every plain select item must be one of them.
    std::vector<Term> grouping;
    for (const ColumnRef& ref : stmt.group_by) {
      SQLEQ_ASSIGN_OR_RETURN(Term t, resolve_column(ref));
      grouping.push_back(uf.Find(t));
    }
    for (Term t : plain_items) {
      bool in_grouping = false;
      for (Term g : grouping) {
        if (g == t) {
          in_grouping = true;
          break;
        }
      }
      if (!in_grouping) {
        return Status::InvalidArgument(
            "selected column is neither aggregated nor in GROUP BY");
      }
    }
    // Head grouping order follows the SELECT list (paper syntax Q(S̄, α(Y))).
    SQLEQ_ASSIGN_OR_RETURN(AggregateQuery agg,
                           AggregateQuery::Create(name, std::move(plain_items), *agg_fn,
                                                  agg_arg, std::move(body)));
    out.is_aggregate = true;
    out.aggregate = std::move(agg);
    return out;
  }

  if (!stmt.group_by.empty()) {
    return Status::InvalidArgument("GROUP BY without an aggregate");
  }
  SQLEQ_ASSIGN_OR_RETURN(
      ConjunctiveQuery cq,
      ConjunctiveQuery::Create(name, std::move(plain_items), std::move(body)));
  out.is_aggregate = false;
  out.cq = std::move(cq);
  return out;
}

Result<TranslatedQuery> TranslateSql(std::string_view select_text, const Catalog& catalog,
                                     const std::string& name) {
  SQLEQ_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(select_text));
  return TranslateSelect(stmt, catalog, name);
}

}  // namespace sql
}  // namespace sqleq
