#include "sql/lexer.h"

#include <cctype>

namespace sqleq {
namespace sql {

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  while (true) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t pos = i;
    if (i >= input.size()) {
      out.push_back({TokenKind::kEnd, "", pos});
      return out;
    }
    char c = input[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                                  input[i] == '_')) {
        ++i;
      }
      out.push_back({TokenKind::kIdent, std::string(input.substr(start, i - start)), pos});
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < input.size() &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < input.size() && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      out.push_back({TokenKind::kNumber, std::string(input.substr(start, i - start)), pos});
    } else if (c == '\'') {
      ++i;
      size_t start = i;
      while (i < input.size() && input[i] != '\'') ++i;
      if (i >= input.size()) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(pos));
      }
      out.push_back({TokenKind::kString, std::string(input.substr(start, i - start)), pos});
      ++i;
    } else {
      TokenKind kind;
      switch (c) {
        case '(':
          kind = TokenKind::kLParen;
          break;
        case ')':
          kind = TokenKind::kRParen;
          break;
        case ',':
          kind = TokenKind::kComma;
          break;
        case '.':
          kind = TokenKind::kDot;
          break;
        case '=':
          kind = TokenKind::kEquals;
          break;
        case '*':
          kind = TokenKind::kStar;
          break;
        case ';':
          kind = TokenKind::kSemicolon;
          break;
        default:
          return Status::InvalidArgument(std::string("unexpected character '") + c +
                                         "' at offset " + std::to_string(pos));
      }
      out.push_back({kind, std::string(1, c), pos});
      ++i;
    }
  }
}

}  // namespace sql
}  // namespace sqleq
