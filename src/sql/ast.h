// AST for the supported SQL-92 fragment: CREATE TABLE with key/foreign-key
// constraints, and SELECT [DISTINCT] ... FROM ... WHERE <equality
// conjunction> ... GROUP BY ... with a single optional aggregate — exactly
// the SQL image of the paper's CQ / aggregate-CQ classes.
#ifndef SQLEQ_SQL_AST_H_
#define SQLEQ_SQL_AST_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ir/term.h"

namespace sqleq {
namespace sql {

/// "alias.column" or bare "column" (resolved against FROM).
struct ColumnRef {
  std::string qualifier;  // empty when unqualified
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
};

/// A literal constant.
struct Literal {
  Value value;
};

/// One SELECT-list item.
struct SelectItem {
  enum class Kind { kColumn, kLiteral, kAggregate, kCountStar };
  Kind kind = Kind::kColumn;
  ColumnRef column;                 // kColumn, kAggregate (argument)
  std::optional<Literal> literal;   // kLiteral
  std::string aggregate_function;   // kAggregate: SUM/COUNT/MAX/MIN (upper)
  std::string output_alias;         // optional AS name
};

/// FROM entry: a base table with an optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name
};

/// WHERE conjunct: lhs = rhs, each side a column or a literal.
struct EqualityCondition {
  std::variant<ColumnRef, Literal> lhs;
  std::variant<ColumnRef, Literal> rhs;
};

struct SelectStatement {
  bool distinct = false;
  /// SELECT *: project every column of every FROM table, in order. When
  /// set, `items` is empty.
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<EqualityCondition> where;
  std::vector<ColumnRef> group_by;
};

/// Column definition inside CREATE TABLE.
struct ColumnDef {
  std::string name;
  std::string type;  // INT / TEXT / anything; informational only
  bool primary_key = false;
  bool unique = false;
};

/// Table-level constraint inside CREATE TABLE.
struct TableConstraint {
  enum class Kind { kPrimaryKey, kUnique, kForeignKey };
  Kind kind = Kind::kPrimaryKey;
  std::vector<std::string> columns;
  // Foreign-key target:
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

struct CreateTableStatement {
  std::string table;
  std::vector<ColumnDef> columns;
  std::vector<TableConstraint> constraints;
};

/// INSERT INTO t VALUES (...), (...); repeated VALUES rows insert multiple
/// tuples (duplicates raise multiplicity on bag-valued tables).
struct InsertStatement {
  std::string table;
  std::vector<std::vector<Literal>> rows;
};

using Statement = std::variant<SelectStatement, CreateTableStatement, InsertStatement>;

}  // namespace sql
}  // namespace sqleq

#endif  // SQLEQ_SQL_AST_H_
