// Set-semantics chase to termination (§2.4): repeatedly apply chase steps
// until the canonical database of the current query satisfies Σ (no step is
// applicable). Terminates for weakly acyclic Σ; a step budget guards
// non-terminating inputs.
#ifndef SQLEQ_CHASE_SET_CHASE_H_
#define SQLEQ_CHASE_SET_CHASE_H_

#include <optional>
#include <string>
#include <vector>

#include "constraints/dependency.h"
#include "ir/query.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace sqleq {

class FaultInjector;
class CancellationToken;
class MetricsRegistry;
class TraceSink;
struct ChaseCheckpoint;

/// Per-call runtime hooks for a chase run (docs/robustness.md,
/// docs/observability.md), deliberately separate from ChaseOptions: options
/// are part of memo context keys and must stay pure configuration, while
/// these are call-scoped pointers. All members are optional; a default
/// ChaseRuntime is inert.
struct ChaseRuntime {
  /// Fault-injection sites ("chase.step", "memo.insert") consult this.
  FaultInjector* faults = nullptr;
  /// Cooperative cancellation, checked once per chase step.
  CancellationToken* cancel = nullptr;
  /// Counter sink for chase.* and memo.* metrics; null disables them.
  MetricsRegistry* metrics = nullptr;
  /// Span sink ("chase.set", "chase.sound" spans); null disables tracing.
  TraceSink* trace = nullptr;
  /// Resume from this checkpoint (chase/checkpoint.h) instead of starting
  /// cold. Ignored when the checkpoint's phase does not match the loop (a
  /// set-chase loop only accepts kSetChasePhase, and so on).
  const ChaseCheckpoint* resume = nullptr;
  /// When non-null and the run stops on an anytime condition (budget,
  /// deadline, cancellation, injected exhaustion), receives the loop state
  /// for a later resume.
  std::optional<ChaseCheckpoint>* checkpoint_out = nullptr;
  /// Per-run budget override: when non-null the step cap and deadline checks
  /// consult this instead of the ChaseOptions budget the loop (or the
  /// ChasePlan/ChaseMemo it runs through) was constructed with. This is what
  /// lets one long-lived plan/memo serve calls with different budgets —
  /// cached outcomes are completed chases, hence budget-independent
  /// (equivalence/engine.cc shares memos across budgets on this basis).
  const ResourceBudget* budget = nullptr;
};

/// Knobs shared by set chase and sound chase.
struct ChaseOptions {
  /// Resource limits. The chase consults budget.max_chase_steps (hard cap on
  /// chase steps; exceeded → ResourceExhausted) and budget.deadline (checked
  /// once per step). See util/resource_budget.h.
  ResourceBudget budget;
  /// Apply egds before tgds at each step (the conventional strategy; chase
  /// results are equivalent either way, Thm 5.1 / [10]).
  bool egds_first = true;
  /// Sound chase only: decide assignment-fixing via the cheap key-based test
  /// (Def 5.1) first and run the full Def 4.3 associated-test-query chase
  /// only when that fails. Key-based ⇒ assignment-fixing (§5.1), so this is
  /// a pure fast path; disable to ablate (bench_candb measures the cost).
  bool key_based_fast_path = true;
  /// Run chase steps through per-Σ compiled kernels (chase/sigma_plan.h)
  /// over indexed flat storage instead of the generic backtracking path.
  /// The two paths are trace-identical by construction (the property suite
  /// asserts it); disable to run the executable-spec path, e.g. as a
  /// differential oracle.
  bool use_compiled_kernels = true;
  /// Chase only the sound Σ-slice for the query (analysis/sigma_graph.h):
  /// dependencies the static may-match analysis proves can never fire on
  /// the query's canonical database are dropped before the loop starts.
  /// Provably conservative — sliced and full runs are trace-identical (the
  /// property suite asserts it) — so this is a pure perf knob. Honored by
  /// ChasePlan::Run and the free SoundChase; the free SetChase always
  /// chases the full Σ (it is the executable specification).
  bool use_sigma_slicing = true;
};

/// One entry of a chase trace.
struct ChaseStepRecord {
  std::string dep_label;
  bool is_tgd = false;
  /// Query after the step.
  std::string result;
};

/// Outcome of a chase run.
struct ChaseOutcome {
  ConjunctiveQuery result;
  std::vector<ChaseStepRecord> trace;
  /// True when an egd equated two distinct constants: Q returns the empty
  /// answer on every database satisfying Σ, and `result` is the query at
  /// failure time.
  bool failed = false;
};

/// Computes (Q)Σ,S. Returns ResourceExhausted if `options.budget` is
/// exhausted (chase may not terminate for non-weakly-acyclic Σ); the loop
/// state at exhaustion is captured through `runtime.checkpoint_out`, and a
/// matching checkpoint in `runtime.resume` continues a prior run instead of
/// re-firing its steps.
Result<ChaseOutcome> SetChase(const ConjunctiveQuery& q, const DependencySet& sigma,
                              const ChaseOptions& options = {},
                              const ChaseRuntime& runtime = {});

/// True iff set chase of `q` under Σ terminates within the step budget.
/// (Undecidable in general; this is the practical proxy the library uses for
/// the paper's "whenever set-chase on the inputs terminates" side
/// conditions.)
Result<bool> SetChaseTerminates(const ConjunctiveQuery& q, const DependencySet& sigma,
                                const ChaseOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_CHASE_SET_CHASE_H_
