// Internal helper shared by the set- and sound-chase loops: resolves the
// chase.* counters from a ChaseRuntime's registry once per run so the step
// loop itself records wait-free (docs/observability.md). Not part of the
// public API.
#ifndef SQLEQ_CHASE_CHASE_TELEMETRY_H_
#define SQLEQ_CHASE_CHASE_TELEMETRY_H_

#include <string>

#include "util/telemetry.h"

namespace sqleq {

struct ChaseCounters {
  Counter* steps = nullptr;
  Counter* tgd_steps = nullptr;
  Counter* egd_steps = nullptr;
  Counter* satisfied = nullptr;
  MetricsRegistry* registry = nullptr;  // for per-label chase.fired.<label>

  /// Counts one chase run and resolves the step counters; a null registry
  /// leaves the struct inert.
  explicit ChaseCounters(MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    registry = metrics;
    metrics->counter(metric::kChaseRuns).Add();
    steps = &metrics->counter(metric::kChaseSteps);
    tgd_steps = &metrics->counter(metric::kChaseStepsTgd);
    egd_steps = &metrics->counter(metric::kChaseStepsEgd);
    satisfied = &metrics->counter(metric::kChaseChecksSatisfied);
  }

  /// One applied chase step of dependency `label`. The per-label lookup
  /// locks the registry, but applied steps are rare next to the
  /// homomorphism search that found them.
  void Fired(const std::string& label, bool is_tgd) const {
    if (registry == nullptr) return;
    steps->Add();
    (is_tgd ? tgd_steps : egd_steps)->Add();
    registry->counter("chase.fired." + label).Add();
  }

  /// One dependency check that found nothing applicable (already satisfied).
  void Satisfied() const {
    if (satisfied != nullptr) satisfied->Add();
  }
};

}  // namespace sqleq

#endif  // SQLEQ_CHASE_CHASE_TELEMETRY_H_
