#include "chase/chase_cache.h"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <utility>

#include "chase/checkpoint.h"
#include "chase/memo_store.h"
#include "util/fault.h"
#include "util/telemetry.h"

namespace sqleq {
namespace {

uint64_t Fnv64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string ContextPrefix(std::string_view context_fingerprint) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv64(context_fingerprint)));
  return std::string("ctx:") + hex + "|";
}

/// Writes evicted entries to the disk tier. Thanks to the write-through at
/// insert time this is normally a dedupe no-op inside MemoStore::Put; it
/// only really writes when the insert-time spill failed (e.g. under an
/// injected write fault). Failures are swallowed: losing a spill costs a
/// future re-chase, nothing else.
void SpillEvicted(
    const std::shared_ptr<MemoStore>& store,
    const std::vector<std::pair<std::string, std::shared_ptr<const ChaseOutcome>>>&
        spilled) {
  if (store == nullptr) return;
  for (const auto& [disk_key, outcome] : spilled) {
    (void)store->Put(disk_key, SerializeChaseOutcomeBody(*outcome));
  }
}

/// memo.hits / memo.misses, mirroring the live Stats counters (and sharing
/// their caveat: concurrent misses of one key are both counted).
void CountMemoLookup(MetricsRegistry* metrics, bool hit) {
  if (metrics == nullptr) return;
  metrics->counter(hit ? metric::kMemoHits : metric::kMemoMisses).Add();
}

/// memo.inserts / memo.bytes for a winning insert. Bytes are the retained
/// footprint estimate: canonical key plus rendered chase result.
void CountMemoInsert(MetricsRegistry* metrics, const std::string& key,
                     const ChaseOutcome& outcome) {
  if (metrics == nullptr) return;
  metrics->counter(metric::kMemoInserts).Add();
  metrics->counter(metric::kMemoBytes)
      .Add(key.size() + outcome.result.ToString().size());
}

/// Per-call runtime for the memo's inner SoundChase: a resume checkpoint is
/// honored only when stamped for this key, so a checkpoint captured for one
/// query can never be replayed into another's chase.
ChaseRuntime RuntimeForKey(const ChaseRuntime& runtime, const std::string& key) {
  ChaseRuntime inner = runtime;
  if (inner.resume != nullptr && inner.resume->subject != key) {
    inner.resume = nullptr;
  }
  return inner;
}

/// Stamps a captured checkpoint with the canonical key it belongs to.
void StampSubject(const ChaseRuntime& runtime, const std::string& key) {
  if (runtime.checkpoint_out != nullptr && runtime.checkpoint_out->has_value()) {
    (*runtime.checkpoint_out)->subject = key;
  }
}

/// Renders one atom under a partial variable renaming: constants as
/// "c<literal>", renamed variables by their canonical name, not-yet-renamed
/// variables as "u0", "u1", ... numbered by first occurrence *within this
/// atom*. Two atoms get equal signatures iff they are equal up to a
/// renaming of the not-yet-canonicalized variables.
std::string AtomSignature(const Atom& atom, const TermMap& to_canonical) {
  std::string sig = atom.predicate();
  sig += '(';
  TermMap local;
  size_t next_local = 0;
  for (size_t i = 0; i < atom.arity(); ++i) {
    Term t = atom.args()[i];
    if (i > 0) sig += ',';
    if (t.IsConstant()) {
      sig += 'c';
      sig += t.ToString();
      continue;
    }
    auto it = to_canonical.find(t);
    if (it != to_canonical.end()) {
      sig += it->second.ToString();
      continue;
    }
    auto lit = local.find(t);
    if (lit == local.end()) {
      lit = local.emplace(t, Term::Var("u" + std::to_string(next_local++))).first;
    }
    sig += lit->second.ToString();
  }
  sig += ')';
  return sig;
}

/// Renders a fully canonicalized atom (every variable already a ?k name):
/// the key segment must use the global canonical names, not AtomSignature's
/// per-atom u-locals, or distinct queries would collide.
std::string CommittedSignature(const Atom& atom) {
  std::string sig = atom.predicate();
  sig += '(';
  for (size_t i = 0; i < atom.arity(); ++i) {
    if (i > 0) sig += ',';
    Term t = atom.args()[i];
    if (t.IsConstant()) sig += 'c';
    sig += t.ToString();
  }
  sig += ')';
  return sig;
}

}  // namespace

std::string CanonicalQueryKey(const ConjunctiveQuery& q,
                              ConjunctiveQuery* out_canonical,
                              TermMap* out_from_canonical) {
  TermMap to_canonical;
  size_t next_id = 0;
  auto canonical_of = [&](Term v) -> Term {
    auto it = to_canonical.find(v);
    if (it != to_canonical.end()) return it->second;
    Term c = Term::Var("?" + std::to_string(next_id++));
    to_canonical.emplace(v, c);
    return c;
  };

  // Head first, position order: head positions anchor the labelling.
  std::string key = "H";
  std::vector<Term> head;
  head.reserve(q.head().size());
  for (Term t : q.head()) {
    Term mapped = t.IsVariable() ? canonical_of(t) : t;
    head.push_back(mapped);
    key += t.IsConstant() ? "c" + t.ToString() : mapped.ToString();
    key += ';';
  }

  // Body: repeatedly commit the atom with the least signature under the
  // current partial renaming. Invariant under input atom order; ties carry
  // equal signatures, so either choice extends the renaming identically —
  // we take the lowest index for determinism.
  std::vector<Atom> remaining = q.body();
  std::vector<Atom> body;
  body.reserve(remaining.size());
  while (!remaining.empty()) {
    size_t best = 0;
    std::string best_sig = AtomSignature(remaining[0], to_canonical);
    for (size_t i = 1; i < remaining.size(); ++i) {
      std::string sig = AtomSignature(remaining[i], to_canonical);
      if (sig < best_sig) {
        best = i;
        best_sig = std::move(sig);
      }
    }
    std::vector<Term> args;
    args.reserve(remaining[best].arity());
    for (Term t : remaining[best].args()) {
      args.push_back(t.IsVariable() ? canonical_of(t) : t);
    }
    Atom committed(remaining[best].predicate(), std::move(args));
    key += '|';
    key += CommittedSignature(committed);
    body.push_back(std::move(committed));
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
  }

  if (out_canonical != nullptr) {
    // Canonical heads/bodies come from a safe query, so Make cannot fail.
    *out_canonical = ConjunctiveQuery::Make("Qc", std::move(head), std::move(body));
  }
  if (out_from_canonical != nullptr) {
    out_from_canonical->clear();
    for (const auto& [orig, canon] : to_canonical) {
      out_from_canonical->emplace(canon, orig);
    }
  }
  return key;
}

void ChaseMemo::set_byte_limit(size_t byte_limit) {
  std::vector<SpilledEntry> spilled;
  std::shared_ptr<MemoStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    byte_limit_ = byte_limit;
    store = store_;
    EvictLocked(nullptr, &spilled);
  }
  SpillEvicted(store, spilled);
}

void ChaseMemo::AttachStore(std::shared_ptr<MemoStore> store,
                            std::string_view context_fingerprint) {
  if (store == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    store_.reset();
    disk_prefix_.clear();
    return;
  }
  std::string prefix = ContextPrefix(context_fingerprint);
  const std::string sentinel_key = prefix + "@context";
  Result<std::optional<std::string>> existing = store->Get(sentinel_key);
  if (existing.ok() && existing->has_value() &&
      **existing != context_fingerprint) {
    // Fingerprint hash collision with a different chase context already in
    // the store: leave the disk tier detached rather than risk serving
    // another context's outcomes.
    return;
  }
  if (!existing.ok() || !existing->has_value()) {
    // Claim the prefix. A failed claim (e.g. injected write fault) is fine:
    // the next attach retries, and unclaimed prefixes only forgo the
    // collision check above.
    (void)store->Put(sentinel_key, std::string(context_fingerprint));
  }
  std::lock_guard<std::mutex> lock(mu_);
  store_ = std::move(store);
  disk_prefix_ = std::move(prefix);
}

void ChaseMemo::AttachPeerTier(std::shared_ptr<const MemoPeerTier> peer,
                               std::string_view context_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (peer == nullptr) {
    peer_.reset();
    peer_prefix_.clear();
    return;
  }
  peer_ = std::move(peer);
  peer_prefix_ = ContextPrefix(context_fingerprint);
}

std::optional<std::string> ChaseMemo::ExportRecord(
    std::string_view disk_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& prefix = peer_prefix_.empty() ? disk_prefix_ : peer_prefix_;
  if (prefix.empty() || disk_key.size() <= prefix.size() ||
      disk_key.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  auto it = cache_.find(std::string(disk_key.substr(prefix.size())));
  if (it == cache_.end()) return std::nullopt;
  return SerializeChaseOutcomeBody(*it->second.outcome);
}

bool ChaseMemo::ImportRecord(std::string_view disk_key,
                             const std::string& body) {
  std::shared_ptr<MemoStore> store;
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::string& prefix =
        peer_prefix_.empty() ? disk_prefix_ : peer_prefix_;
    if (prefix.empty() || disk_key.size() <= prefix.size() ||
        disk_key.substr(0, prefix.size()) != prefix) {
      return false;
    }
    key = std::string(disk_key.substr(prefix.size()));
    store = store_;
  }
  Result<ChaseOutcome> parsed = ParseChaseOutcomeBody(body);
  if (!parsed.ok()) return false;
  auto outcome = std::make_shared<const ChaseOutcome>(std::move(parsed).value());
  std::vector<SpilledEntry> spilled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    InsertLocked(key, std::move(outcome), nullptr, &spilled);
  }
  if (store != nullptr) (void)store->Put(std::string(disk_key), body);
  SpillEvicted(store, spilled);
  return true;
}

void ChaseMemo::EvictLocked(MetricsRegistry* metrics,
                            std::vector<SpilledEntry>* spilled) {
  // Never evict the front (most recently touched) entry: a single outcome
  // larger than the limit must still cache, or hot loops would re-chase it
  // on every call.
  while (byte_limit_ > 0 && bytes_ > byte_limit_ && cache_.size() > 1) {
    const std::string& victim = lru_.back();
    auto it = cache_.find(victim);
    if (store_ != nullptr && spilled != nullptr) {
      spilled->emplace_back(disk_prefix_ + victim, it->second.outcome);
    }
    bytes_ -= it->second.bytes;
    ++evictions_;
    if (metrics != nullptr) metrics->counter(metric::kMemoEvictions).Add();
    cache_.erase(it);
    lru_.pop_back();
  }
}

std::pair<std::shared_ptr<const ChaseOutcome>, bool> ChaseMemo::InsertLocked(
    const std::string& key, std::shared_ptr<const ChaseOutcome> entry,
    MetricsRegistry* metrics, std::vector<SpilledEntry>* spilled) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Concurrent miss of the same key: the first insert won; adopt it.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return {it->second.outcome, false};
  }
  lru_.push_front(key);
  Entry stored{std::move(entry), 0, lru_.begin()};
  stored.bytes = key.size() + stored.outcome->result.ToString().size();
  bytes_ += stored.bytes;
  auto outcome = stored.outcome;
  cache_.emplace(key, std::move(stored));
  EvictLocked(metrics, spilled);
  return {std::move(outcome), true};
}

void ChaseMemo::PinEnvelope(const ConjunctiveQuery& envelope) {
  if (!plan_->options().use_sigma_slicing) return;
  pinned_slice_ = &plan_->SliceFor(envelope);
  pinned_suffix_ = "|slice:";
  pinned_suffix_ += pinned_slice_->Signature();
}

Result<std::shared_ptr<const ChaseOutcome>> ChaseMemo::LookupOrChase(
    const ConjunctiveQuery& q, std::string* out_key, TermMap* from_canonical,
    const ChaseRuntime& runtime) {
  ConjunctiveQuery canonical = q;  // overwritten by CanonicalQueryKey
  const std::string subject = CanonicalQueryKey(q, &canonical, from_canonical);
  std::string key = subject;
  const SigmaSlice* slice = nullptr;
  if (plan_->options().use_sigma_slicing) {
    // Two body shapes that slice Σ differently must never share an entry;
    // shapes that slice identically still can (the slice is a function of
    // the shape, so this is a refinement, not a correctness need — but it
    // keeps cache keys self-describing in stats). The
    // slice is handed back to Run() below so each candidate is sliced once.
    // A pinned envelope slice (PinEnvelope) short-circuits even that: one
    // slice, one kernel subset, for the whole backchase sweep.
    if (pinned_slice_ != nullptr) {
      slice = pinned_slice_;
      key += pinned_suffix_;
    } else {
      slice = &plan_->SliceFor(canonical);
      key += "|slice:";
      key += slice->Signature();
    }
  }
  if (out_key != nullptr) *out_key = key;
  std::shared_ptr<const ChaseOutcome> cached;
  std::shared_ptr<MemoStore> store;
  std::shared_ptr<const MemoPeerTier> peer;
  std::string disk_key;
  std::string peer_key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      cached = it->second.outcome;
    } else {
      ++misses_;
      store = store_;
      peer = peer_;
      if (store != nullptr) disk_key = disk_prefix_ + key;
      if (peer != nullptr) peer_key = peer_prefix_ + key;
    }
  }
  CountMemoLookup(runtime.metrics, /*hit=*/cached != nullptr);
  if (cached != nullptr) return cached;

  // Tier-2: consult the disk store before re-chasing. A hit is parsed back
  // from the checkpoint text dialect and re-promoted into the memory tier
  // under the same slice-suffixed key. The promotion charges the memory
  // tier's live bytes but deliberately not memo.inserts/memo.bytes (the
  // outcome was not freshly chased) and writes nothing back to disk — a
  // re-promotion never double-counts. Read failures, injected or real,
  // degrade to a cold chase.
  if (store != nullptr) {
    Result<std::optional<std::string>> body =
        store->Get(disk_key, runtime.metrics);
    if (body.ok() && body->has_value()) {
      Result<ChaseOutcome> parsed = ParseChaseOutcomeBody(**body);
      if (parsed.ok()) {
        auto promoted =
            std::make_shared<const ChaseOutcome>(std::move(parsed).value());
        std::vector<SpilledEntry> spilled;
        std::shared_ptr<const ChaseOutcome> winner;
        {
          std::lock_guard<std::mutex> lock(mu_);
          winner = InsertLocked(key, std::move(promoted), runtime.metrics,
                                &spilled)
                       .first;
        }
        SpillEvicted(store, spilled);
        return winner;
      }
    }
  }

  // Tier-3: the peer memo tier (fleet only). The shard owning this key may
  // have already settled it; fetching its serialized outcome is orders of
  // magnitude cheaper than chasing. A hit promotes into the memory tier
  // and writes through to the local disk tier, so the record stops
  // traveling after the first fetch. Misses, transport failures, and
  // malformed bodies all degrade to a cold chase.
  if (peer != nullptr && peer->fetch) {
    bool peer_hit = false;
    if (std::optional<std::string> body = peer->fetch(peer_key);
        body.has_value()) {
      Result<ChaseOutcome> parsed = ParseChaseOutcomeBody(*body);
      if (parsed.ok()) {
        peer_hit = true;
        auto fetched =
            std::make_shared<const ChaseOutcome>(std::move(parsed).value());
        std::vector<SpilledEntry> spilled;
        std::shared_ptr<const ChaseOutcome> winner;
        {
          std::lock_guard<std::mutex> lock(mu_);
          winner = InsertLocked(key, std::move(fetched), runtime.metrics,
                                &spilled)
                       .first;
        }
        if (runtime.metrics != nullptr) {
          runtime.metrics->counter(metric::kMemoPeerHits).Add();
        }
        if (store != nullptr) (void)store->Put(disk_key, *body, runtime.metrics);
        SpillEvicted(store, spilled);
        return winner;
      }
    }
    if (!peer_hit && runtime.metrics != nullptr) {
      runtime.metrics->counter(metric::kMemoPeerMisses).Add();
    }
  }

  // Chase outside the lock: other keys (and even this key, on a concurrent
  // miss) may be chased in parallel; the first insert wins.
  // Checkpoint subjects use the plain canonical key, not the slice-suffixed
  // memo key: the slice is a function of the canonical body (and slicing is
  // trace-invariant), so a checkpoint resumes correctly across slicing
  // configurations while still never replaying into a different query.
  ChaseRuntime inner = RuntimeForKey(runtime, subject);
  Result<ChaseOutcome> outcome = slice != nullptr
                                     ? plan_->Run(canonical, inner, *slice)
                                     : plan_->Run(canonical, inner);
  if (!outcome.ok()) {
    StampSubject(inner, subject);
    return outcome.status();
  }
  SQLEQ_RETURN_IF_ERROR(
      ProbeSite(runtime.faults, runtime.cancel, fault_sites::kMemoInsert));
  auto entry = std::make_shared<const ChaseOutcome>(std::move(outcome).value());
  bool inserted = false;
  std::vector<SpilledEntry> spilled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::tie(entry, inserted) =
        InsertLocked(key, std::move(entry), runtime.metrics, &spilled);
  }
  if (inserted) {
    CountMemoInsert(runtime.metrics, key, *entry);
    const bool offering = peer != nullptr && static_cast<bool>(peer->offer);
    if (store != nullptr || offering) {
      std::string body = SerializeChaseOutcomeBody(*entry);
      // Write-through: a freshly chased outcome spills immediately, so a
      // later eviction is a dedupe no-op and a crash right now loses
      // nothing already paid for. Failures cost a future re-chase only.
      if (store != nullptr) (void)store->Put(disk_key, body, runtime.metrics);
      // Offer the fresh outcome toward the key's owning shard, so the next
      // cross-shard miss on this key can peer-fetch instead of chasing.
      if (offering) peer->offer(peer_key, body);
    }
  }
  SpillEvicted(store, spilled);
  return entry;
}

Result<std::shared_ptr<const ChaseOutcome>> ChaseMemo::ChaseCanonical(
    const ConjunctiveQuery& q, std::string* out_key, const ChaseRuntime& runtime) {
  return LookupOrChase(q, out_key, /*from_canonical=*/nullptr, runtime);
}

Result<ChaseOutcome> ChaseMemo::Chase(const ConjunctiveQuery& q,
                                      const ChaseRuntime& runtime) {
  TermMap from_canonical;
  SQLEQ_ASSIGN_OR_RETURN(
      std::shared_ptr<const ChaseOutcome> entry,
      LookupOrChase(q, /*out_key=*/nullptr, &from_canonical, runtime));
  return ChaseOutcome{entry->result.Substitute(from_canonical).WithName(q.name()),
                      entry->trace, entry->failed};
}

ChaseMemo::Stats ChaseMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, cache_.size(), bytes_, evictions_, byte_limit_};
}

}  // namespace sqleq
