// Algorithms 1 and 2 (§5.3, Appendix I): Max-Bag-Σ-Subset and
// Max-Bag-Set-Σ-Subset compute the unique maximal Σ' ⊆ Σ satisfied by the
// canonical database of the sound-chase result (Theorems 5.3 and I.1).
#ifndef SQLEQ_CHASE_MAX_SUBSET_H_
#define SQLEQ_CHASE_MAX_SUBSET_H_

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// Output of the Max-Σ-Subset algorithms.
struct MaxSubsetResult {
  /// The sound-chase result Qn = (Q)Σ,X.
  ConjunctiveQuery chase_result;
  /// The maximal subset of Σ satisfied by D(Qn).
  DependencySet max_subset;
};

/// Algorithm 1 (bag) / Algorithm 2 (bag-set), unified: computes (Q)Σ,X by
/// sound chase, then removes every σ ∈ Σ that is (necessarily unsoundly)
/// still applicable to the result. Requires `semantics` ∈ {kBag, kBagSet};
/// under kSet the answer is Σ itself whenever set chase terminates.
Result<MaxSubsetResult> MaxSigmaSubset(const ConjunctiveQuery& q,
                                       const DependencySet& sigma, Semantics semantics,
                                       const Schema& schema,
                                       const ChaseOptions& options = {});

/// ΣmaxB(Q, Σ) per Theorem 5.3.
Result<MaxSubsetResult> MaxBagSigmaSubset(const ConjunctiveQuery& q,
                                          const DependencySet& sigma, const Schema& schema,
                                          const ChaseOptions& options = {});

/// ΣmaxBS(Q, Σ) per Theorem I.1.
Result<MaxSubsetResult> MaxBagSetSigmaSubset(const ConjunctiveQuery& q,
                                             const DependencySet& sigma,
                                             const Schema& schema,
                                             const ChaseOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_CHASE_MAX_SUBSET_H_
