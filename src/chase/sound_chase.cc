#include "chase/sound_chase.h"

#include <optional>
#include <unordered_set>

#include "analysis/sigma_graph.h"
#include "chase/assignment_fixing.h"
#include "chase/chase_internal.h"
#include "chase/chase_step.h"
#include "chase/chase_telemetry.h"
#include "chase/checkpoint.h"
#include "chase/flat_db.h"
#include "chase/sigma_plan.h"
#include "constraints/regularize.h"
#include "util/fault.h"

namespace sqleq {
namespace {

/// Drops duplicate atoms; `droppable` decides per-atom whether duplicates of
/// it may be removed.
template <typename Pred>
ConjunctiveQuery DropDuplicates(const ConjunctiveQuery& q, Pred droppable) {
  std::vector<Atom> body;
  std::unordered_set<Atom, AtomHash> seen;
  for (const Atom& a : q.body()) {
    if (droppable(a) && !seen.insert(a).second) continue;
    body.push_back(a);
  }
  return q.WithBody(std::move(body));
}

/// The atoms a tgd step with homomorphism `h` would genuinely add to `q`:
/// instantiated head atoms minus exact duplicates of existing body atoms
/// (re-adding an existing atom is a no-op under S/BS and is the Thm 4.1(2)
/// duplicate-drop under B when the relation is set valued). `flat`, when
/// non-null, indexes q's body and replaces the hash-set presence probe.
std::vector<Atom> GenuinelyAddedAtoms(const ConjunctiveQuery& q, const Tgd& tgd,
                                      const TermMap& h, Semantics semantics,
                                      const Schema& schema, bool* out_unsound_dup,
                                      const FlatConjunction* flat) {
  *out_unsound_dup = false;
  std::unordered_set<Atom, AtomHash> existing;
  if (flat == nullptr) {
    existing.insert(q.body().begin(), q.body().end());
  }
  std::vector<Atom> added;
  for (Atom& a : InstantiateTgdHead(tgd, h)) {
    bool present =
        flat != nullptr ? flat->ContainsAtom(a) : existing.count(a) > 0;
    if (present) {
      // Exact duplicate. Dropping it is sound under S/BS always and under B
      // only for set-valued relations.
      if (semantics == Semantics::kBag && !schema.IsSetValued(a.predicate())) {
        *out_unsound_dup = true;
      }
      continue;
    }
    added.push_back(std::move(a));
  }
  return added;
}

}  // namespace

ConjunctiveQuery NormalizeForBag(const ConjunctiveQuery& q, const Schema& schema) {
  return DropDuplicates(
      q, [&schema](const Atom& a) { return schema.IsSetValued(a.predicate()); });
}

namespace chase_internal {

Result<ChaseOutcome> SoundChaseRegular(const ConjunctiveQuery& q,
                                       const DependencySet& regular,
                                       const SigmaPlan* plan, Semantics semantics,
                                       const Schema& schema,
                                       const ChaseOptions& options,
                                       const ChaseRuntime& runtime) {
  if (semantics == Semantics::kSet) {
    return SetChaseWithPlan(q, regular, plan, options, runtime);
  }

  const ChaseCheckpoint* resume = runtime.resume;
  const bool resume_sound =
      resume != nullptr && resume->phase == ChaseCheckpoint::kSoundChasePhase;

  // Precondition of Thms 4.1/4.3 and Def 4.3: (Q)Σ,S exists. Fail fast. A
  // sound-chase checkpoint implies the probe already passed; a probe
  // checkpoint resumes inside it (rewritten to the set-chase phase the inner
  // loop understands, and back on capture).
  ChaseCounters counters(runtime.metrics);
  TraceSpan span(runtime.trace, "chase.sound");

  if (!resume_sound) {
    ChaseRuntime probe_runtime;
    probe_runtime.faults = runtime.faults;
    probe_runtime.cancel = runtime.cancel;
    probe_runtime.metrics = runtime.metrics;
    probe_runtime.trace = runtime.trace;
    probe_runtime.budget = runtime.budget;
    std::optional<ChaseCheckpoint> probe_resume;
    if (resume != nullptr &&
        resume->phase == ChaseCheckpoint::kSetChaseProbePhase) {
      probe_resume = *resume;
      probe_resume->phase = ChaseCheckpoint::kSetChasePhase;
      probe_runtime.resume = &*probe_resume;
    }
    std::optional<ChaseCheckpoint> probe_checkpoint;
    probe_runtime.checkpoint_out = &probe_checkpoint;
    Result<ChaseOutcome> probe = SetChaseWithPlan(q, regular, plan, options,
                                                  probe_runtime);
    if (!probe.ok()) {
      if (probe_checkpoint.has_value() && runtime.checkpoint_out != nullptr) {
        probe_checkpoint->phase = ChaseCheckpoint::kSetChaseProbePhase;
        *runtime.checkpoint_out = std::move(probe_checkpoint);
      }
      return probe.status();
    }
  }

  auto normalize = [&](const ConjunctiveQuery& query) {
    if (semantics == Semantics::kBag) return NormalizeForBag(query, schema);
    // Under BS duplicate atoms never affect semantics (Thm 2.1(2)).
    return query.CanonicalRepresentation();
  };

  ChaseOutcome out{normalize(q), {}, false};
  size_t start = 0;
  if (resume_sound) {
    out.result = resume->state;
    out.trace = resume->trace;
    start = resume->steps_done;
  }
  auto stop = [&](Status status, size_t steps_done) -> Status {
    if (runtime.checkpoint_out != nullptr && IsAnytimeStop(status)) {
      *runtime.checkpoint_out =
          ChaseCheckpoint{ChaseCheckpoint::kSoundChasePhase, /*subject=*/"",
                          out.result, out.trace, steps_done};
    }
    return status;
  };
  // The effective budget also governs the nested assignment-fixing test
  // chases, which take ChaseOptions (no runtime) — fold it in once.
  ChaseOptions effective = options;
  if (runtime.budget != nullptr) effective.budget = *runtime.budget;
  const ResourceBudget& budget = effective.budget;
  FlatConjunction flat;
  for (size_t step = start; step < budget.max_chase_steps; ++step) {
    Status guard = budget.CheckDeadline("sound chase");
    if (guard.ok()) {
      guard = ProbeSite(runtime.faults, runtime.cancel, fault_sites::kChaseStep);
    }
    if (!guard.ok()) return stop(std::move(guard), step);
    if (plan != nullptr) flat.Rebuild(out.result.body());
    bool applied = false;

    // Egd pass: egd steps are always sound (Thm 4.1(2) / 4.3(2)).
    for (size_t di = 0; di < regular.size(); ++di) {
      const Dependency& dep = regular[di];
      if (!dep.IsEgd()) continue;
      std::optional<EgdApplication> app =
          plan != nullptr ? plan->FindEgdApplication(di, flat)
                          : FindEgdApplication(out.result, dep.egd());
      if (!app.has_value()) {
        counters.Satisfied();
        continue;
      }
      if (app->failure) {
        out.failed = true;
        out.trace.push_back({dep.label(), false,
                             "FAIL: " + app->from.ToString() + " = " + app->to.ToString()});
        return out;
      }
      out.result = normalize(ApplyEgdStep(out.result, *app));
      out.trace.push_back({dep.label(), false, out.result.ToString()});
      counters.Fired(dep.label(), /*is_tgd=*/false);
      applied = true;
      break;
    }
    if (applied) continue;

    // Tgd pass: only sound steps (Thm 4.1(1) / 4.3(1)).
    for (size_t di = 0; di < regular.size(); ++di) {
      const Dependency& dep = regular[di];
      if (!dep.IsTgd()) continue;
      const Tgd& tgd = dep.tgd();
      std::vector<TermMap> hs =
          plan != nullptr ? plan->FindApplicableTgdHomomorphisms(di, flat)
                          : FindApplicableTgdHomomorphisms(out.result, tgd);
      for (const TermMap& h : hs) {
        bool unsound_dup = false;
        std::vector<Atom> added =
            GenuinelyAddedAtoms(out.result, tgd, h, semantics, schema, &unsound_dup,
                                plan != nullptr ? &flat : nullptr);
        if (unsound_dup) continue;
        if (added.empty()) continue;  // cannot happen for applicable h; guard anyway
        if (semantics == Semantics::kBag) {
          bool all_set_valued = true;
          for (const Atom& a : added) {
            if (!schema.IsSetValued(a.predicate())) {
              all_set_valued = false;
              break;
            }
          }
          if (!all_set_valued) continue;
        }
        // Key-based ⇒ assignment-fixing (§5.1): try the cheap test first.
        // The plan caches the per-tgd Def 5.1 classification.
        bool require_set_valued = semantics == Semantics::kBag;
        bool fixing = effective.key_based_fast_path &&
                      (plan != nullptr
                           ? plan->KeyBased(di, require_set_valued)
                           : IsKeyBased(tgd, regular, schema, require_set_valued));
        if (!fixing) {
          SQLEQ_ASSIGN_OR_RETURN(
              fixing,
              IsAssignmentFixing(out.result, tgd, h, regular, effective, plan));
        }
        if (!fixing) continue;
        std::vector<Atom> body = out.result.body();
        for (Atom& a : added) body.push_back(std::move(a));
        out.result = normalize(out.result.WithBody(std::move(body)));
        out.trace.push_back({dep.label(), true, out.result.ToString()});
        counters.Fired(dep.label(), /*is_tgd=*/true);
        applied = true;
        break;
      }
      if (applied) break;
      counters.Satisfied();
    }
    if (!applied) return out;  // no sound step applies — terminal.
  }
  return stop(Status::ResourceExhausted(
                  "sound chase exceeded " +
                  std::to_string(budget.max_chase_steps) +
                  " steps (ResourceBudget::max_chase_steps)"),
              budget.max_chase_steps);
}

}  // namespace chase_internal

Result<ChaseOutcome> SoundChase(const ConjunctiveQuery& q, const DependencySet& sigma,
                                Semantics semantics, const Schema& schema,
                                const ChaseOptions& options,
                                const ChaseRuntime& runtime) {
  DependencySet regular = RegularizeSigma(sigma);
  if (options.use_sigma_slicing) {
    // Per-call slicing mirrors ChasePlan::Run so the two surfaces stay
    // trace-identical under identical options. SigmaGraph::Build is cheap
    // (certificate derivation is the expensive part and is not needed here).
    SigmaGraph graph = SigmaGraph::Build(regular, schema);
    SigmaSlice slice = graph.SliceFor(q.body());
    if (runtime.metrics != nullptr) {
      runtime.metrics->counter(metric::kSliceKept).Add(slice.kept.size());
      runtime.metrics->counter(metric::kSlicePruned).Add(slice.pruned.size());
    }
    if (!slice.IsFull()) {
      DependencySet sliced;
      sliced.reserve(slice.kept.size());
      for (size_t i : slice.kept) sliced.push_back(regular[i]);
      if (options.use_compiled_kernels) {
        // Subset of the full compile, not a fresh compile of the subset:
        // keeps the cached key-based flags bit-identical to the full path.
        SigmaPlan plan = SigmaPlan::Compile(regular, schema).Subset(slice.kept);
        return chase_internal::SoundChaseRegular(q, sliced, &plan, semantics,
                                                 schema, options, runtime);
      }
      return chase_internal::SoundChaseRegular(q, sliced, nullptr, semantics,
                                               schema, options, runtime);
    }
  }
  if (options.use_compiled_kernels) {
    // Per-call adapter: compile a throwaway plan. Callers with a fixed Σ
    // should hold a ChasePlan instead and pay regularization + kernel
    // compilation once.
    SigmaPlan plan = SigmaPlan::Compile(regular, schema);
    return chase_internal::SoundChaseRegular(q, regular, &plan, semantics, schema,
                                             options, runtime);
  }
  return chase_internal::SoundChaseRegular(q, regular, nullptr, semantics, schema,
                                           options, runtime);
}

Result<StepAvailability> ClassifyStep(const ConjunctiveQuery& q, const Dependency& dep,
                                      const DependencySet& sigma, Semantics semantics,
                                      const Schema& schema, const ChaseOptions& options) {
  DependencySet regular = RegularizeSigma(sigma);
  if (dep.IsEgd()) {
    std::optional<EgdApplication> app = FindEgdApplication(q, dep.egd());
    if (!app.has_value()) return StepAvailability::kNotApplicable;
    return StepAvailability::kSoundApplicable;  // egd steps are always sound
  }
  // A non-regularized tgd is classified through its regularized set: it is
  // (un)soundly applicable when some piece is.
  std::vector<Tgd> pieces = RegularizeTgd(dep.tgd());
  bool any_applicable = false;
  for (const Tgd& tgd : pieces) {
    for (const TermMap& h : FindApplicableTgdHomomorphisms(q, tgd)) {
      any_applicable = true;
      if (semantics == Semantics::kSet) return StepAvailability::kSoundApplicable;
      bool unsound_dup = false;
      std::vector<Atom> added = GenuinelyAddedAtoms(q, tgd, h, semantics, schema,
                                                    &unsound_dup, /*flat=*/nullptr);
      if (unsound_dup || added.empty()) continue;
      if (semantics == Semantics::kBag) {
        bool all_set_valued = true;
        for (const Atom& a : added) {
          if (!schema.IsSetValued(a.predicate())) {
            all_set_valued = false;
            break;
          }
        }
        if (!all_set_valued) continue;
      }
      bool fixing = options.key_based_fast_path &&
                    IsKeyBased(tgd, regular, schema,
                               /*require_set_valued=*/semantics == Semantics::kBag);
      if (!fixing) {
        SQLEQ_ASSIGN_OR_RETURN(fixing, IsAssignmentFixing(q, tgd, h, regular, options));
      }
      if (fixing) return StepAvailability::kSoundApplicable;
    }
  }
  return any_applicable ? StepAvailability::kUnsoundOnly
                        : StepAvailability::kNotApplicable;
}

}  // namespace sqleq
