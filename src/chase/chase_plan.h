// ChasePlan: the compiled public entry surface of the chase (docs/
// compiled_chase.md).
//
// A ChasePlan fixes (Σ, semantics, schema, options) once — regularizing Σ
// and compiling its SigmaPlan step kernels at construction — and then runs
// the sound chase on any number of queries without per-call Σ work. This is
// the Thm 5.2 amortization made concrete: construction is the per-catalog
// cost, Run() the per-query cost. EquivalenceEngine, chase-and-backchase,
// view rewriting, and sqleqd all chase through a ChasePlan; the free
// functions SetChase/SoundChase remain as thin per-call adapters for one
// release (they compile a throwaway plan internally).
//
// A ChasePlan is immutable after construction and safe to share across
// threads. Run() honors the full ChaseRuntime contract — fault sites,
// cancellation, checkpoint capture/resume — and, because compiled kernels
// are trace-identical to the generic path, checkpoints taken under either
// path resume under the other.
#ifndef SQLEQ_CHASE_CHASE_PLAN_H_
#define SQLEQ_CHASE_CHASE_PLAN_H_

#include "chase/set_chase.h"
#include "chase/sigma_plan.h"
#include "chase/sound_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

class ChasePlan {
 public:
  /// Compiles a plan: regularizes `sigma` (Prop 4.1) and builds the
  /// SigmaPlan kernels for the regularized set against `schema`.
  ChasePlan(DependencySet sigma, Semantics semantics, Schema schema = {},
            ChaseOptions options = {});

  /// Computes (Q)Σ,X for the plan's semantics — same contract and identical
  /// outcome/trace as SoundChase(q, sigma(), semantics(), schema(),
  /// options(), runtime), minus the per-call regularization and kernel
  /// compilation. `options().use_compiled_kernels` selects the compiled or
  /// generic loop; both are trace-identical.
  Result<ChaseOutcome> Run(const ConjunctiveQuery& q,
                           const ChaseRuntime& runtime = {}) const;

  const DependencySet& sigma() const { return sigma_; }
  const DependencySet& regularized() const { return regular_; }
  Semantics semantics() const { return semantics_; }
  const Schema& schema() const { return schema_; }
  const ChaseOptions& options() const { return options_; }
  const SigmaPlan& kernels() const { return plan_; }

  struct Stats {
    SigmaPlan::Stats kernels;
    bool compiled_path = false;  ///< options().use_compiled_kernels
  };
  Stats stats() const;

 private:
  DependencySet sigma_;
  DependencySet regular_;
  Semantics semantics_;
  Schema schema_;
  ChaseOptions options_;
  SigmaPlan plan_;
};

}  // namespace sqleq

#endif  // SQLEQ_CHASE_CHASE_PLAN_H_
