// ChasePlan: the compiled public entry surface of the chase (docs/
// compiled_chase.md).
//
// A ChasePlan fixes (Σ, semantics, schema, options) once — regularizing Σ
// and compiling its SigmaPlan step kernels at construction — and then runs
// the sound chase on any number of queries without per-call Σ work. This is
// the Thm 5.2 amortization made concrete: construction is the per-catalog
// cost, Run() the per-query cost. EquivalenceEngine, chase-and-backchase,
// view rewriting, and sqleqd all chase through a ChasePlan; the free
// functions SetChase/SoundChase remain as thin per-call adapters for one
// release (they compile a throwaway plan internally).
//
// A ChasePlan is immutable after construction and safe to share across
// threads. Run() honors the full ChaseRuntime contract — fault sites,
// cancellation, checkpoint capture/resume — and, because compiled kernels
// are trace-identical to the generic path, checkpoints taken under either
// path resume under the other.
#ifndef SQLEQ_CHASE_CHASE_PLAN_H_
#define SQLEQ_CHASE_CHASE_PLAN_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analysis/sigma_graph.h"
#include "chase/set_chase.h"
#include "chase/sigma_plan.h"
#include "chase/sound_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

class ChasePlan {
 public:
  /// Compiles a plan: regularizes `sigma` (Prop 4.1) and builds the
  /// SigmaPlan kernels for the regularized set against `schema`.
  ChasePlan(DependencySet sigma, Semantics semantics, Schema schema = {},
            ChaseOptions options = {});

  /// Computes (Q)Σ,X for the plan's semantics — same contract and identical
  /// outcome/trace as SoundChase(q, sigma(), semantics(), schema(),
  /// options(), runtime), minus the per-call regularization and kernel
  /// compilation. `options().use_compiled_kernels` selects the compiled or
  /// generic loop; both are trace-identical.
  Result<ChaseOutcome> Run(const ConjunctiveQuery& q,
                           const ChaseRuntime& runtime = {}) const;

  /// Run() with the Σ-slice already in hand: `slice` must be this plan's
  /// SliceFor(q) (callers like ChaseMemo need the slice for their cache key
  /// anyway, and passing it back avoids a second shape-cache lookup per
  /// chased candidate). Identical outcome to Run(q, runtime).
  Result<ChaseOutcome> Run(const ConjunctiveQuery& q, const ChaseRuntime& runtime,
                           const SigmaSlice& slice) const;

  /// The sound Σ-slice for `q` over the plan's *regularized* Σ: the
  /// dependencies the static may-match analysis (analysis/sigma_graph.h)
  /// cannot rule out from firing while chasing q's canonical database.
  /// Run() chases exactly this subset when options().use_sigma_slicing is
  /// on; ChaseMemo folds Signature() into its keys. Cached per body shape
  /// (atoms up to variable renaming), so repeat calls are a lookup; the
  /// returned reference is stable for the plan's lifetime (entries are
  /// never evicted). Pruned diagnostics are not rendered here — use
  /// SigmaGraph::SliceFor directly for EXPLAIN SLICE-style output.
  const SigmaSlice& SliceFor(const ConjunctiveQuery& q) const;

  /// The termination certificate of the regularized Σ, derived on first
  /// use and cached. Advisory: Run() never changes budgets from it; EXPLAIN
  /// SLICE, the Σ-lint analyzer, and SET BUDGET AUTO surface it.
  const TerminationCertificate& certificate() const;

  const DependencySet& sigma() const { return sigma_; }
  const DependencySet& regularized() const { return regular_; }
  Semantics semantics() const { return semantics_; }
  const Schema& schema() const { return schema_; }
  const ChaseOptions& options() const { return options_; }
  const SigmaPlan& kernels() const { return plan_; }

  struct Stats {
    SigmaPlan::Stats kernels;
    bool compiled_path = false;  ///< options().use_compiled_kernels
    bool sliced_path = false;    ///< options().use_sigma_slicing
  };
  Stats stats() const;

 private:
  /// One materialized Σ-slice: the kept dependencies plus their compiled
  /// kernels (positional Subset of the full plan, so key-based flags are
  /// bit-identical to the full compile). Shared so a slice outlives the
  /// mutex scope while Run() chases through it.
  struct SlicedSigma {
    DependencySet deps;
    SigmaPlan kernels;
  };
  std::shared_ptr<const SlicedSigma> SlicedFor(const SigmaSlice& slice) const;

  /// The unsliced compiled chase — shared tail of both Run overloads.
  Result<ChaseOutcome> RunFull(const ConjunctiveQuery& q,
                               const ChaseRuntime& runtime) const;

  DependencySet sigma_;
  DependencySet regular_;
  Semantics semantics_;
  Schema schema_;
  ChaseOptions options_;
  SigmaPlan plan_;
  SigmaGraph graph_;  ///< over regular_; cheap to build, immutable

  // Lazy, per-plan caches. Keyed by body shape (slices) and slice
  // signature (materialized subsets); both key spaces are tiny in practice
  // — a handful of query shapes per catalog — and bounded by the memo's
  // own LRU upstream, so no eviction here.
  mutable std::mutex mu_;
  mutable std::unique_ptr<TerminationCertificate> certificate_;
  mutable std::unordered_map<std::string, SigmaSlice> slices_;
  mutable std::unordered_map<std::string, std::shared_ptr<const SlicedSigma>>
      subsets_;
};

}  // namespace sqleq

#endif  // SQLEQ_CHASE_CHASE_PLAN_H_
