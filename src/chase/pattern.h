// CompiledPattern + MatchPattern: the index-backed replacement for the
// backtracking homomorphism search.
//
// A CompiledPattern is the per-dependency, per-query-shape half of a
// homomorphism problem compiled once: predicates interned, variables mapped
// to dense slots, argument descriptors flattened. MatchPattern then
// enumerates homomorphisms from the pattern into a FlatConjunction by
// hash-join probes on the per-column indexes.
//
// Enumeration contract: MatchPattern emits exactly the homomorphisms the
// legacy backtracking search (ForEachHomomorphismGeneric) emits, in exactly
// the same order. That makes compiled chase runs trace-identical to generic
// ones — checkpoints interoperate and the property suite can assert
// step-for-step equality. The emulated order is: atoms matched
// most-constrained-first under the score `n_same_predicate_targets * 64 -
// bound_args` (lower wins, first-lowest ties), candidate targets visited in
// conjunction order, complete assignments de-duplicated on their restriction
// to pattern variables.
#ifndef SQLEQ_CHASE_PATTERN_H_
#define SQLEQ_CHASE_PATTERN_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "chase/flat_db.h"
#include "ir/atom.h"
#include "ir/predicate.h"
#include "ir/query.h"
#include "util/function_ref.h"

namespace sqleq {

class CompiledPattern {
 public:
  /// One pattern argument: a constant term, or a variable slot.
  struct Arg {
    Term term;     ///< the original term (constant when slot < 0)
    int32_t slot;  ///< dense variable slot, or -1 for a constant
  };

  struct PatternAtom {
    PredicateId pred = 0;
    uint32_t arity = 0;
    uint32_t first_arg = 0;  ///< offset into args()
  };

  CompiledPattern() = default;
  explicit CompiledPattern(std::span<const Atom> from);

  size_t n_atoms() const { return atoms_.size(); }
  size_t n_slots() const { return slot_vars_.size(); }
  const std::vector<PatternAtom>& atoms() const { return atoms_; }
  const std::vector<Arg>& args() const { return args_; }
  /// Slot → the pattern variable it stands for.
  const std::vector<Term>& slot_vars() const { return slot_vars_; }

 private:
  std::vector<PatternAtom> atoms_;
  std::vector<Arg> args_;
  std::vector<Term> slot_vars_;
};

/// Enumerates homomorphisms from `pattern` into `to`, seeding variable slots
/// from `fixed` (entries of `fixed` for variables outside the pattern are
/// carried through into every emitted map, matching the generic search).
/// `fn` returning false stops the enumeration. Returns true iff enumeration
/// ran to exhaustion.
bool MatchPattern(const CompiledPattern& pattern, const FlatConjunction& to,
                  const TermMap& fixed, FunctionRef<bool(const TermMap&)> fn);

/// Existence probe: true iff at least one homomorphism exists.
bool PatternMatchExists(const CompiledPattern& pattern, const FlatConjunction& to,
                        const TermMap& fixed);

}  // namespace sqleq

#endif  // SQLEQ_CHASE_PATTERN_H_
