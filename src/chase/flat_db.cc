#include "chase/flat_db.h"

namespace sqleq {

void FlatConjunction::Rebuild(std::span<const Atom> atoms) {
  Clear();
  // Upper-bound reserve hint: no block can exceed the conjunction size, and
  // pre-sizing the columns avoids the growth reallocations during the bulk
  // load. The over-reserve is transient scratch memory.
  reserve_hint_ = atoms.size();
  for (const Atom& a : atoms) Append(a);
  reserve_hint_ = 0;
}

void FlatConjunction::Append(const Atom& atom) {
  PredicateId pred = InternPredicate(atom.predicate());
  uint32_t arity = static_cast<uint32_t>(atom.arity());
  uint64_t key = BlockKey(pred, arity);
  // Consecutive atoms overwhelmingly share a block; a one-entry memo skips
  // the map lookup. Node pointers are stable across later insertions.
  Block* blk_ptr;
  if (key == last_key_ && last_block_ != nullptr) {
    blk_ptr = last_block_;
  } else {
    blk_ptr = &blocks_[key];
    last_key_ = key;
    last_block_ = blk_ptr;
  }
  Block& blk = *blk_ptr;
  if (blk.cols.empty() && arity > 0) {
    blk.arity = arity;
    blk.cols.resize(arity);
    blk.index_.resize(arity);
    if (reserve_hint_ > 0) {
      for (auto& col : blk.cols) col.reserve(reserve_hint_);
    }
  }
  ++blk.rows;
  for (uint32_t c = 0; c < arity; ++c) {
    blk.cols[c].push_back(atom.args()[c]);
  }
  if (static_cast<size_t>(pred) >= pred_counts_.size()) {
    pred_counts_.resize(static_cast<size_t>(pred) + 1, 0);
  }
  ++pred_counts_[static_cast<size_t>(pred)];
  ++n_atoms_;
}

std::span<const uint32_t> FlatConjunction::Block::Postings(uint32_t c,
                                                           Term t) const {
  ColumnIndex& idx = index_[c];
  if (idx.built_rows != rows) {
    // (Re)build the whole column in CSR form: count per term, prefix-sum
    // the group offsets, then fill in row order so every group ascends.
    const std::vector<Term>& column = cols[c];
    idx.spans.clear();
    idx.spans.reserve(rows);
    for (Term v : column) ++idx.spans[v].second;
    uint32_t offset = 0;
    for (auto& [v, span] : idx.spans) {
      span.first = offset;
      offset += span.second;
      span.second = span.first;  // becomes the write cursor, then the end
    }
    idx.rows.resize(rows);
    for (uint32_t r = 0; r < rows; ++r) {
      idx.rows[idx.spans[column[r]].second++] = r;
    }
    idx.built_rows = rows;
  }
  auto it = idx.spans.find(t);
  if (it == idx.spans.end()) return {};
  return std::span<const uint32_t>(idx.rows.data() + it->second.first,
                                   it->second.second - it->second.first);
}

void FlatConjunction::Clear() {
  blocks_.clear();
  pred_counts_.clear();
  n_atoms_ = 0;
  last_key_ = 0;
  last_block_ = nullptr;
}

const FlatConjunction::Block* FlatConjunction::FindBlock(PredicateId p,
                                                         uint32_t arity) const {
  auto it = blocks_.find(BlockKey(p, arity));
  return it == blocks_.end() ? nullptr : &it->second;
}

bool FlatConjunction::ContainsAtom(const Atom& atom) const {
  PredicateId pred = InternPredicate(atom.predicate());
  uint32_t arity = static_cast<uint32_t>(atom.arity());
  const Block* blk = FindBlock(pred, arity);
  if (blk == nullptr) return false;
  if (arity == 0) return blk->rows > 0;
  for (uint32_t row : blk->Postings(0, atom.args()[0])) {
    bool match = true;
    for (uint32_t c = 1; c < arity; ++c) {
      if (blk->cols[c][row] != atom.args()[c]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

}  // namespace sqleq
