// Internal chase loop entry points shared by the free-function adapters
// (SetChase/SoundChase) and the compiled ChasePlan API. Not part of the
// public surface — include chase/chase_plan.h instead.
#ifndef SQLEQ_CHASE_CHASE_INTERNAL_H_
#define SQLEQ_CHASE_CHASE_INTERNAL_H_

#include "chase/set_chase.h"
#include "chase/sigma_plan.h"
#include "chase/sound_chase.h"

namespace sqleq {
namespace chase_internal {

/// The set-chase loop. `plan`, when non-null, must be compiled from exactly
/// `sigma` (kernels are positional) and switches the loop onto the compiled
/// kernels; null runs the generic chase_step path. Both produce identical
/// outcomes and traces.
Result<ChaseOutcome> SetChaseWithPlan(const ConjunctiveQuery& q,
                                      const DependencySet& sigma,
                                      const SigmaPlan* plan,
                                      const ChaseOptions& options,
                                      const ChaseRuntime& runtime);

/// The sound-chase loop over an already-regularized Σ (kSet dispatches to
/// the set-chase loop). `plan`, when non-null, must be compiled from exactly
/// `regular`.
Result<ChaseOutcome> SoundChaseRegular(const ConjunctiveQuery& q,
                                       const DependencySet& regular,
                                       const SigmaPlan* plan, Semantics semantics,
                                       const Schema& schema,
                                       const ChaseOptions& options,
                                       const ChaseRuntime& runtime);

}  // namespace chase_internal
}  // namespace sqleq

#endif  // SQLEQ_CHASE_CHASE_INTERNAL_H_
