// Tier-2 on-disk chase memo: an append-only segment store that lets warm
// chase verdicts survive process death (docs/service.md, "Durability &
// Recovery"). The in-memory ChaseMemo spills freshly chased outcomes (and,
// as a backstop, LRU evictions) here and consults it on a memory miss,
// re-promoting disk hits into the memory tier.
//
// On-disk layout: `dir/memo-<seq>.seg` files, each a sequence of framed
// records
//
//   [u32 payload length (LE)] [u32 CRC-32 of payload (LE)] [payload]
//
// where the payload is the PR-3 checkpoint text dialect:
//
//   sqleq-memo-record v1
//   key <EscapeField(key)>
//   <body — opaque to the store; chase outcomes use the helpers below>
//
// The store is a durable last-writer-wins map from key to body. Startup
// recovery scans every segment in sequence order and stops a segment's scan
// at the first frame whose length or checksum does not hold — a torn tail
// from a crash mid-append — counting it in memo.disk.corrupt_records and
// keeping every record before it. Recovery always appends to a *new*
// segment, so a torn tail is never written after. `max_disk_bytes` is
// enforced by rotating segments at `segment_bytes` and compacting (rewrite
// live records newest-first, drop the oldest) when the total exceeds the
// budget.
#ifndef SQLEQ_CHASE_MEMO_STORE_H_
#define SQLEQ_CHASE_MEMO_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "chase/set_chase.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace sqleq {

struct MemoStoreOptions {
  /// Directory holding the segment files; created (one level) if missing.
  std::string dir;
  /// Total on-disk budget across segments, enforced by compaction after an
  /// append pushes past it. 0 = unbounded. The newest record is never
  /// dropped, so a single oversized record still persists.
  size_t max_disk_bytes = 256u << 20;
  /// Rotation threshold: the active segment is closed and a new one started
  /// once it reaches this size.
  size_t segment_bytes = 4u << 20;
  /// fsync(2) after every append. Off by default: the store targets
  /// process-crash durability (SIGKILL), which buffered writes already
  /// survive; turn on when machine-crash durability is worth the latency.
  bool fsync_each_put = false;
  /// Probed at fault_sites::kMemoDiskWrite / kMemoDiskRead / kMemoDiskFsync
  /// (including deterministic short-write injection). May be null.
  FaultInjector* faults = nullptr;
  /// Store-lifetime counter sink for memo.disk.{recovered,corrupt_records,
  /// bytes,compactions}. May be null. Per-call counters (hits, writes) go
  /// to the registry passed to Get/Put instead.
  MetricsRegistry* metrics = nullptr;
};

/// Thread-safe append-only record store. All methods may be called
/// concurrently; a single internal mutex serializes them (disk-tier traffic
/// is orders of magnitude rarer than memory-tier hits).
class MemoStore {
 public:
  /// Opens `options.dir`, creating it if absent, and recovers the key index
  /// from the existing segments (torn/corrupt tails are skipped, never an
  /// error). Fails only when the directory cannot be created or read.
  static Result<std::unique_ptr<MemoStore>> Open(MemoStoreOptions options);

  ~MemoStore();
  MemoStore(const MemoStore&) = delete;
  MemoStore& operator=(const MemoStore&) = delete;

  /// Looks up the newest record body for `key`. nullopt on miss; an error
  /// only for injected or real read failures (callers treat it as a miss).
  /// A record that fails its checksum re-check on read is dropped from the
  /// index and counted as corrupt. Hits are counted into `call_metrics`
  /// (memo.disk.hits), which may be null.
  Result<std::optional<std::string>> Get(std::string_view key,
                                         MetricsRegistry* call_metrics = nullptr);

  /// Appends a record for `key`, superseding any previous one. A Put whose
  /// payload is byte-identical to the indexed record for `key` is a no-op
  /// (this is what makes evicting an already-spilled entry free). Writes
  /// are counted into `call_metrics` (memo.disk.writes); appended bytes
  /// into the store-lifetime registry (memo.disk.bytes).
  Status Put(std::string_view key, std::string_view body,
             MetricsRegistry* call_metrics = nullptr);

  struct Stats {
    size_t entries = 0;
    size_t segments = 0;
    /// Total bytes of all segment files (frames + torn tails).
    size_t disk_bytes = 0;
    /// Live records recovered by Open().
    size_t recovered = 0;
    /// Torn/corrupt records skipped (recovery scan + read re-checks).
    size_t corrupt_records = 0;
    /// Records dropped by compaction to honor max_disk_bytes.
    size_t dropped = 0;
    size_t compactions = 0;
    uint64_t hits = 0;
    uint64_t writes = 0;
  };
  Stats stats() const;

  const MemoStoreOptions& options() const { return options_; }

 private:
  struct Location {
    uint64_t seq = 0;
    uint64_t offset = 0;  // of the payload, past the 8-byte frame header
    uint32_t length = 0;
    uint32_t crc = 0;
  };

  explicit MemoStore(MemoStoreOptions options)
      : options_(std::move(options)) {}

  std::string SegmentPath(uint64_t seq) const;
  /// Scans one segment into index_/file_bytes_. Caller holds mu_.
  void ScanSegmentLocked(uint64_t seq);
  /// Reads and checksum-verifies the payload at `loc`. Caller holds mu_.
  Result<std::string> ReadPayloadLocked(const Location& loc);
  /// Closes the active segment and arranges for the next Put to start a
  /// fresh one. Caller holds mu_.
  void RotateLocked();
  /// Rewrites live records newest-first into fresh segments, dropping the
  /// oldest until the budget holds, then deletes the old files. Caller
  /// holds mu_.
  void CompactLocked();

  const MemoStoreOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Location> index_;
  /// seq -> file size, every segment currently on disk.
  std::map<uint64_t, uint64_t> file_bytes_;
  uint64_t next_seq_ = 0;
  int active_fd_ = -1;
  uint64_t active_seq_ = 0;
  uint64_t active_bytes_ = 0;
  /// True after a failed/short append: the segment may end in a torn frame,
  /// so the next Put rotates instead of appending after it.
  bool active_poisoned_ = false;
  size_t total_bytes_ = 0;
  size_t recovered_ = 0;
  size_t corrupt_records_ = 0;
  size_t dropped_ = 0;
  size_t compactions_ = 0;
  uint64_t hits_ = 0;
  uint64_t writes_ = 0;
};

/// Chase-outcome record bodies (the store itself is body-agnostic). The
/// serialization reuses the checkpoint text helpers — SerializeQuery for the
/// chased result, SerializeStepRecord per trace entry — so a record is the
/// same dialect a parked checkpoint uses:
///
///   failed 0|1
///   result <SerializeQuery>
///   trace <SerializeStepRecord>     (zero or more)
///   end
std::string SerializeChaseOutcomeBody(const ChaseOutcome& outcome);
Result<ChaseOutcome> ParseChaseOutcomeBody(std::string_view body);

}  // namespace sqleq

#endif  // SQLEQ_CHASE_MEMO_STORE_H_
