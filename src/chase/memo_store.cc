#include "chase/memo_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "chase/checkpoint.h"
#include "util/crc32.h"

namespace sqleq {
namespace {

constexpr char kRecordHeader[] = "sqleq-memo-record v1";
constexpr size_t kFrameHeaderBytes = 8;
/// Sanity cap on a single payload; a larger length field is treated as a
/// torn frame.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void StoreU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::string BuildPayload(std::string_view key, std::string_view body) {
  std::string payload;
  payload.reserve(sizeof(kRecordHeader) + key.size() + body.size() + 8);
  payload += kRecordHeader;
  payload += "\nkey ";
  payload += EscapeField(key);
  payload += '\n';
  payload += body;
  return payload;
}

/// Splits a checksum-valid payload into key and body. False on an envelope
/// this version does not understand (version skew; treated as corrupt).
bool SplitPayload(std::string_view payload, std::string* key,
                  std::string_view* body) {
  size_t nl = payload.find('\n');
  if (nl == std::string_view::npos || payload.substr(0, nl) != kRecordHeader) {
    return false;
  }
  std::string_view rest = payload.substr(nl + 1);
  if (!rest.starts_with("key ")) return false;
  rest.remove_prefix(4);
  nl = rest.find('\n');
  if (nl == std::string_view::npos) return false;
  Result<std::string> unescaped = UnescapeField(rest.substr(0, nl));
  if (!unescaped.ok()) return false;
  *key = std::move(unescaped).value();
  *body = rest.substr(nl + 1);
  return true;
}

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteFull(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("MemoStore: write");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<MemoStore>> MemoStore::Open(MemoStoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("MemoStore: --memo-dir is empty");
  }
  struct stat st;
  if (::stat(options.dir.c_str(), &st) != 0) {
    if (errno != ENOENT) return ErrnoStatus("MemoStore: stat " + options.dir);
    if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("MemoStore: mkdir " + options.dir);
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("MemoStore: not a directory: " + options.dir);
  }
  std::unique_ptr<MemoStore> store(new MemoStore(std::move(options)));
  DIR* dir = ::opendir(store->options_.dir.c_str());
  if (dir == nullptr) {
    return ErrnoStatus("MemoStore: opendir " + store->options_.dir);
  }
  std::vector<uint64_t> seqs;
  while (struct dirent* ent = ::readdir(dir)) {
    unsigned long long seq = 0;
    int consumed = 0;
    if (std::sscanf(ent->d_name, "memo-%llu.seg%n", &seq, &consumed) == 1 &&
        consumed > 0 &&
        static_cast<size_t>(consumed) == std::strlen(ent->d_name)) {
      seqs.push_back(seq);
    }
  }
  ::closedir(dir);
  std::sort(seqs.begin(), seqs.end());
  {
    std::lock_guard<std::mutex> lock(store->mu_);
    for (uint64_t seq : seqs) store->ScanSegmentLocked(seq);
    store->recovered_ = store->index_.size();
    // Recovery never appends to an existing segment: a torn tail must stay
    // a tail, so the next Put starts a fresh segment past every old one.
    store->next_seq_ = seqs.empty() ? 1 : seqs.back() + 1;
    if (store->options_.metrics != nullptr) {
      if (store->recovered_ > 0) {
        store->options_.metrics->counter(metric::kMemoDiskRecovered)
            .Add(store->recovered_);
      }
      if (store->corrupt_records_ > 0) {
        store->options_.metrics->counter(metric::kMemoDiskCorrupt)
            .Add(store->corrupt_records_);
      }
    }
  }
  return store;
}

MemoStore::~MemoStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string MemoStore::SegmentPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "memo-%08llu.seg",
                static_cast<unsigned long long>(seq));
  return options_.dir + "/" + name;
}

void MemoStore::ScanSegmentLocked(uint64_t seq) {
  std::string path = SegmentPath(seq);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  std::string data;
  char buf[1u << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  file_bytes_[seq] = data.size();
  total_bytes_ += data.size();
  size_t off = 0;
  while (off < data.size()) {
    if (data.size() - off < kFrameHeaderBytes) {
      ++corrupt_records_;  // torn frame header
      break;
    }
    uint32_t len = LoadU32(data.data() + off);
    uint32_t crc = LoadU32(data.data() + off + 4);
    if (len > kMaxPayloadBytes ||
        len > data.size() - off - kFrameHeaderBytes) {
      ++corrupt_records_;  // torn length field or truncated payload
      break;
    }
    std::string_view payload(data.data() + off + kFrameHeaderBytes, len);
    if (Crc32(payload) != crc) {
      ++corrupt_records_;  // torn payload; everything after is suspect
      break;
    }
    std::string key;
    std::string_view body;
    if (SplitPayload(payload, &key, &body)) {
      // Later records supersede earlier ones (last-writer-wins).
      index_[std::move(key)] =
          Location{seq, off + kFrameHeaderBytes, len, crc};
    } else {
      ++corrupt_records_;  // framing intact, envelope unintelligible
    }
    off += kFrameHeaderBytes + len;
  }
}

Result<std::string> MemoStore::ReadPayloadLocked(const Location& loc) {
  std::string path = SegmentPath(loc.seq);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("MemoStore: open " + path);
  std::string payload(loc.length, '\0');
  size_t done = 0;
  while (done < payload.size()) {
    ssize_t n = ::pread(fd, payload.data() + done, payload.size() - done,
                        static_cast<off_t>(loc.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("MemoStore: pread " + path);
    }
    if (n == 0) {
      ::close(fd);
      return Status::Internal("MemoStore: short read from " + path);
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return payload;
}

Result<std::optional<std::string>> MemoStore::Get(
    std::string_view key, MetricsRegistry* call_metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return std::optional<std::string>{};
  if (options_.faults != nullptr) {
    SQLEQ_RETURN_IF_ERROR(options_.faults->Hit(fault_sites::kMemoDiskRead));
  }
  SQLEQ_ASSIGN_OR_RETURN(std::string payload, ReadPayloadLocked(it->second));
  std::string found_key;
  std::string_view body;
  if (Crc32(payload) != it->second.crc ||
      !SplitPayload(payload, &found_key, &body) || found_key != key) {
    ++corrupt_records_;
    if (options_.metrics != nullptr) {
      options_.metrics->counter(metric::kMemoDiskCorrupt).Add();
    }
    index_.erase(it);
    return std::optional<std::string>{};
  }
  ++hits_;
  if (call_metrics != nullptr) {
    call_metrics->counter(metric::kMemoDiskHits).Add();
  }
  return std::optional<std::string>(std::string(body));
}

Status MemoStore::Put(std::string_view key, std::string_view body,
                      MetricsRegistry* call_metrics) {
  std::string payload = BuildPayload(key, body);
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("MemoStore: record exceeds 64 MiB");
  }
  uint32_t crc = Crc32(payload);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  StoreU32(static_cast<uint32_t>(payload.size()), &frame);
  StoreU32(crc, &frame);
  frame += payload;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string(key));
  if (it != index_.end() && it->second.length == payload.size() &&
      it->second.crc == crc) {
    // Byte-identical record already on disk — e.g. the LRU eviction of an
    // entry that was written through at insert time.
    return Status::OK();
  }
  if (active_poisoned_) RotateLocked();
  if (active_fd_ < 0) {
    active_seq_ = next_seq_++;
    std::string path = SegmentPath(active_seq_);
    active_fd_ =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (active_fd_ < 0) return ErrnoStatus("MemoStore: open " + path);
    active_bytes_ = 0;
    file_bytes_[active_seq_] = 0;
  }
  if (options_.faults != nullptr) {
    FaultInjector::WriteFault fault =
        options_.faults->HitWrite(fault_sites::kMemoDiskWrite, frame.size());
    if (!fault.status.ok()) return fault.status;
    if (fault.short_bytes.has_value()) {
      // Persist the torn prefix exactly as a crash mid-append would, then
      // poison the segment so the next Put rotates past the tear.
      size_t n = *fault.short_bytes;
      Status written = WriteFull(active_fd_, frame.data(), n);
      active_bytes_ += n;
      file_bytes_[active_seq_] = active_bytes_;
      total_bytes_ += n;
      active_poisoned_ = true;
      if (!written.ok()) return written;
      return Status::Internal("injected short write at memo.disk.write (" +
                              std::to_string(n) + "/" +
                              std::to_string(frame.size()) + " bytes)");
    }
  }
  Status written = WriteFull(active_fd_, frame.data(), frame.size());
  if (!written.ok()) {
    // Unknown how much landed; resync sizes from the file and poison.
    struct stat st;
    if (::fstat(active_fd_, &st) == 0) {
      total_bytes_ += static_cast<size_t>(st.st_size) - active_bytes_;
      active_bytes_ = static_cast<size_t>(st.st_size);
      file_bytes_[active_seq_] = active_bytes_;
    }
    active_poisoned_ = true;
    return written;
  }
  active_bytes_ += frame.size();
  file_bytes_[active_seq_] = active_bytes_;
  total_bytes_ += frame.size();
  index_[std::string(key)] =
      Location{active_seq_, active_bytes_ - payload.size(),
               static_cast<uint32_t>(payload.size()), crc};
  ++writes_;
  if (call_metrics != nullptr) {
    call_metrics->counter(metric::kMemoDiskWrites).Add();
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter(metric::kMemoDiskBytes).Add(frame.size());
  }
  Status sync = Status::OK();
  if (options_.fsync_each_put) {
    if (options_.faults != nullptr) {
      sync = options_.faults->Hit(fault_sites::kMemoDiskFsync);
    }
    if (sync.ok() && ::fsync(active_fd_) != 0) {
      sync = ErrnoStatus("MemoStore: fsync");
    }
    // The record is appended and indexed either way; a failed barrier only
    // weakens durability, which the caller may surface or ignore.
  }
  if (active_bytes_ >= options_.segment_bytes) RotateLocked();
  if (options_.max_disk_bytes > 0 && total_bytes_ > options_.max_disk_bytes) {
    CompactLocked();
  }
  return sync;
}

void MemoStore::RotateLocked() {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  active_bytes_ = 0;
  active_poisoned_ = false;
}

void MemoStore::CompactLocked() {
  ++compactions_;
  if (options_.metrics != nullptr) {
    options_.metrics->counter(metric::kMemoDiskCompactions).Add();
  }
  RotateLocked();

  // Live records in age order (segment sequence, then file offset).
  std::vector<std::pair<std::string, Location>> live(index_.begin(),
                                                     index_.end());
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.second.seq != b.second.seq ? a.second.seq < b.second.seq
                                        : a.second.offset < b.second.offset;
  });

  // Keep newest-first while under budget; aim below the cap so the next
  // append does not immediately re-trigger compaction. The newest record
  // always survives.
  size_t keep_budget =
      options_.max_disk_bytes - options_.max_disk_bytes / 4;
  std::vector<std::pair<std::string, std::string>> kept;  // newest first
  size_t kept_bytes = 0;
  for (auto it = live.rbegin(); it != live.rend(); ++it) {
    Result<std::string> payload = ReadPayloadLocked(it->second);
    if (!payload.ok() || Crc32(*payload) != it->second.crc) {
      ++corrupt_records_;
      if (options_.metrics != nullptr) {
        options_.metrics->counter(metric::kMemoDiskCorrupt).Add();
      }
      continue;
    }
    size_t frame_bytes = payload->size() + kFrameHeaderBytes;
    if (!kept.empty() && kept_bytes + frame_bytes > keep_budget) {
      ++dropped_;
      continue;
    }
    kept_bytes += frame_bytes;
    kept.emplace_back(it->first, std::move(*payload));
  }

  std::map<uint64_t, uint64_t> old_files = std::move(file_bytes_);
  file_bytes_.clear();
  index_.clear();
  total_bytes_ = 0;

  // Rewrite survivors oldest-first so record order still reflects age.
  int fd = -1;
  uint64_t seq = 0;
  uint64_t bytes = 0;
  auto close_segment = [&] {
    if (fd < 0) return;
    if (options_.fsync_each_put) ::fsync(fd);
    ::close(fd);
    fd = -1;
  };
  for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
    const std::string& payload = it->second;
    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    StoreU32(static_cast<uint32_t>(payload.size()), &frame);
    StoreU32(Crc32(payload), &frame);
    frame += payload;
    if (fd < 0) {
      seq = next_seq_++;
      std::string path = SegmentPath(seq);
      fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
      if (fd < 0) break;  // disk trouble: survivors past here are dropped
      bytes = 0;
      file_bytes_[seq] = 0;
    }
    if (!WriteFull(fd, frame.data(), frame.size()).ok()) {
      close_segment();
      break;
    }
    bytes += frame.size();
    file_bytes_[seq] = bytes;
    total_bytes_ += frame.size();
    index_[it->first] =
        Location{seq, bytes - payload.size(),
                 static_cast<uint32_t>(payload.size()), Crc32(payload)};
    if (bytes >= options_.segment_bytes) close_segment();
  }
  close_segment();

  for (const auto& [old_seq, size] : old_files) {
    (void)size;
    ::unlink(SegmentPath(old_seq).c_str());
  }
}

MemoStore::Stats MemoStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.entries = index_.size();
  out.segments = file_bytes_.size();
  out.disk_bytes = total_bytes_;
  out.recovered = recovered_;
  out.corrupt_records = corrupt_records_;
  out.dropped = dropped_;
  out.compactions = compactions_;
  out.hits = hits_;
  out.writes = writes_;
  return out;
}

std::string SerializeChaseOutcomeBody(const ChaseOutcome& outcome) {
  std::string body;
  body += "failed ";
  body += outcome.failed ? '1' : '0';
  body += "\nresult ";
  body += SerializeQuery(outcome.result);
  body += '\n';
  for (const ChaseStepRecord& record : outcome.trace) {
    body += "trace ";
    body += SerializeStepRecord(record);
    body += '\n';
  }
  body += "end\n";
  return body;
}

Result<ChaseOutcome> ParseChaseOutcomeBody(std::string_view body) {
  std::optional<bool> failed;
  std::optional<ConjunctiveQuery> result;
  std::vector<ChaseStepRecord> trace;
  bool saw_end = false;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? body.substr(pos)
                                : body.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? body.size() : nl + 1;
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    if (line.starts_with("failed ")) {
      failed = line.substr(7) == "1";
    } else if (line.starts_with("result ")) {
      SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery q,
                             DeserializeQuery(line.substr(7)));
      result = std::move(q);
    } else if (line.starts_with("trace ")) {
      SQLEQ_ASSIGN_OR_RETURN(ChaseStepRecord record,
                             DeserializeStepRecord(line.substr(6)));
      trace.push_back(std::move(record));
    } else {
      return Status::InvalidArgument(
          "memo record: unrecognized line: " +
          std::string(line.substr(0, std::min<size_t>(line.size(), 32))));
    }
  }
  if (!saw_end || !failed.has_value() || !result.has_value()) {
    return Status::InvalidArgument("memo record: truncated chase outcome body");
  }
  return ChaseOutcome{std::move(*result), std::move(trace), *failed};
}

}  // namespace sqleq
