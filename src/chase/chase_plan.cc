#include "chase/chase_plan.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "chase/chase_internal.h"
#include "constraints/regularize.h"
#include "util/telemetry.h"

namespace sqleq {
namespace {

/// Cache key for SliceFor: the query's body atoms up to variable renaming
/// and atom order — exactly the inputs the may-match analysis consults
/// (variables are wildcards, constants are literal). When no dependency
/// body reads a constant, query constants cannot affect coverage either, so
/// they are wildcarded too (`constants_matter = false`) and
/// parameter-varying query templates share one cached slice.
std::string BodyShapeKey(const ConjunctiveQuery& q, bool constants_matter) {
  std::vector<std::string> atoms;
  atoms.reserve(q.body().size());
  for (const Atom& a : q.body()) {
    std::string s = a.predicate();
    s += '(';
    for (size_t i = 0; i < a.arity(); ++i) {
      if (i > 0) s += ',';
      const Term& t = a.args()[i];
      if (t.IsVariable() || !constants_matter) {
        s += '_';
      } else {
        s += t.ToString();
      }
    }
    s += ')';
    atoms.push_back(std::move(s));
  }
  std::sort(atoms.begin(), atoms.end());
  std::string key;
  for (const std::string& s : atoms) {
    key += s;
    key += ';';
  }
  return key;
}

}  // namespace

ChasePlan::ChasePlan(DependencySet sigma, Semantics semantics, Schema schema,
                     ChaseOptions options)
    : sigma_(std::move(sigma)),
      regular_(RegularizeSigma(sigma_)),
      semantics_(semantics),
      schema_(std::move(schema)),
      options_(options),
      plan_(SigmaPlan::Compile(regular_, schema_)),
      graph_(SigmaGraph::Build(regular_, schema_)) {}

const SigmaSlice& ChasePlan::SliceFor(const ConjunctiveQuery& q) const {
  std::string key = BodyShapeKey(q, graph_.body_reads_constants());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slices_.find(key);
    if (it != slices_.end()) return it->second;
  }
  // Hot path — the memo slices every backchase candidate for its cache key
  // — so skip the diagnostics-only pruned-atom rendering.
  SigmaSlice slice = graph_.SliceFor(q.body(), /*render_pruned=*/false);
  std::lock_guard<std::mutex> lock(mu_);
  // References into the node-based map stay valid across later inserts, and
  // entries are never evicted, so handing them out is safe.
  return slices_.emplace(std::move(key), std::move(slice)).first->second;
}

const TerminationCertificate& ChasePlan::certificate() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (certificate_ == nullptr) {
    certificate_ =
        std::make_unique<TerminationCertificate>(graph_.DeriveCertificate());
  }
  return *certificate_;
}

std::shared_ptr<const ChasePlan::SlicedSigma> ChasePlan::SlicedFor(
    const SigmaSlice& slice) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subsets_.find(slice.Signature());
    if (it != subsets_.end()) return it->second;
  }
  auto sub = std::make_shared<SlicedSigma>();
  sub->deps.reserve(slice.kept.size());
  for (size_t i : slice.kept) sub->deps.push_back(regular_[i]);
  sub->kernels = plan_.Subset(slice.kept);
  std::lock_guard<std::mutex> lock(mu_);
  return subsets_.emplace(slice.Signature(), std::move(sub)).first->second;
}

Result<ChaseOutcome> ChasePlan::Run(const ConjunctiveQuery& q,
                                    const ChaseRuntime& runtime) const {
  if (options_.use_sigma_slicing) return Run(q, runtime, SliceFor(q));
  return RunFull(q, runtime);
}

Result<ChaseOutcome> ChasePlan::Run(const ConjunctiveQuery& q,
                                    const ChaseRuntime& runtime,
                                    const SigmaSlice& slice) const {
  if (options_.use_sigma_slicing) {
    if (runtime.metrics != nullptr) {
      runtime.metrics->counter(metric::kSliceKept).Add(slice.kept.size());
      runtime.metrics->counter(metric::kSlicePruned).Add(slice.pruned.size());
    }
    if (!slice.IsFull()) {
      std::shared_ptr<const SlicedSigma> sub = SlicedFor(slice);
      const SigmaPlan* plan =
          options_.use_compiled_kernels ? &sub->kernels : nullptr;
      return chase_internal::SoundChaseRegular(q, sub->deps, plan, semantics_,
                                               schema_, options_, runtime);
    }
  }
  return RunFull(q, runtime);
}

Result<ChaseOutcome> ChasePlan::RunFull(const ConjunctiveQuery& q,
                                        const ChaseRuntime& runtime) const {
  const SigmaPlan* plan = options_.use_compiled_kernels ? &plan_ : nullptr;
  return chase_internal::SoundChaseRegular(q, regular_, plan, semantics_, schema_,
                                           options_, runtime);
}

ChasePlan::Stats ChasePlan::stats() const {
  Stats s;
  s.kernels = plan_.stats();
  s.compiled_path = options_.use_compiled_kernels;
  s.sliced_path = options_.use_sigma_slicing;
  return s;
}

}  // namespace sqleq
