#include "chase/chase_plan.h"

#include <utility>

#include "chase/chase_internal.h"
#include "constraints/regularize.h"

namespace sqleq {

ChasePlan::ChasePlan(DependencySet sigma, Semantics semantics, Schema schema,
                     ChaseOptions options)
    : sigma_(std::move(sigma)),
      regular_(RegularizeSigma(sigma_)),
      semantics_(semantics),
      schema_(std::move(schema)),
      options_(options),
      plan_(SigmaPlan::Compile(regular_, schema_)) {}

Result<ChaseOutcome> ChasePlan::Run(const ConjunctiveQuery& q,
                                    const ChaseRuntime& runtime) const {
  const SigmaPlan* plan = options_.use_compiled_kernels ? &plan_ : nullptr;
  return chase_internal::SoundChaseRegular(q, regular_, plan, semantics_, schema_,
                                           options_, runtime);
}

ChasePlan::Stats ChasePlan::stats() const {
  Stats s;
  s.kernels = plan_.stats();
  s.compiled_path = options_.use_compiled_kernels;
  return s;
}

}  // namespace sqleq
