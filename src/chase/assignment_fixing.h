// Assignment-fixing tgds (Definitions 4.2, 4.3) and key-based tgds
// (Definition 5.1, Deutsch's UWDs). Assignment-fixing is the exact gate for
// sound tgd chase steps under bag and bag-set semantics (Thms 4.1, 4.3);
// key-basedness is the strictly weaker, query-independent sufficient
// condition (Ex. 4.8 and 5.1 witness the gap).
#ifndef SQLEQ_CHASE_ASSIGNMENT_FIXING_H_
#define SQLEQ_CHASE_ASSIGNMENT_FIXING_H_

#include <vector>

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

class SigmaPlan;

/// The associated test query Q^{σ,h,θ} (Def 4.2) plus the bookkeeping needed
/// to decide assignment-fixing: the two parallel instantiations of the
/// existential variables.
struct AssociatedTestQuery {
  ConjunctiveQuery query;
  /// Pairs (Zi-instance, θ(Zi)-instance), one per existential variable of σ.
  std::vector<std::pair<Term, Term>> existential_pairs;
};

/// Builds Q^{σ,h,θ}: body(Q) ∧ ψ(h(X̄), Z̄) ∧ ψ(h(X̄), θ(Z̄)), with Z̄ and
/// θ(Z̄) both freshly named (unique up to isomorphism w.r.t. θ). For a full
/// tgd the two copies coincide and `existential_pairs` is empty.
AssociatedTestQuery BuildAssociatedTestQuery(const ConjunctiveQuery& q, const Tgd& tgd,
                                             const TermMap& h);

/// Decides whether σ is assignment-fixing w.r.t. Q and h (Def 4.3): chase
/// Q^{σ,h,θ} under Σ with set semantics; σ is assignment-fixing iff the
/// terminal result retains at most one variable of each existential pair.
/// Full tgds are assignment-fixing by Prop 4.3. Requires (set-)chase
/// termination; ResourceExhausted otherwise. `plan`, when non-null, must be
/// a SigmaPlan compiled from exactly `sigma` and lets the inner test-query
/// chase reuse its kernels instead of recompiling per call.
Result<bool> IsAssignmentFixing(const ConjunctiveQuery& q, const Tgd& tgd,
                                const TermMap& h, const DependencySet& sigma,
                                const ChaseOptions& options = {},
                                const SigmaPlan* plan = nullptr);

/// σ is assignment-fixing w.r.t. Q if it is assignment-fixing w.r.t. Q and
/// *some* homomorphism under which the chase is applicable (Def 4.3).
/// Returns false when the chase with σ is not applicable to Q at all.
Result<bool> IsAssignmentFixingForQuery(const ConjunctiveQuery& q, const Tgd& tgd,
                                        const DependencySet& sigma,
                                        const ChaseOptions& options = {});

/// Key-based tgd test (Def 5.1): every head atom's universally quantified
/// positions form a superkey of its relation (under the fds recognized in
/// Σ), and the relation is set valued on all instances (schema flag).
/// `require_set_valued` = false drops the flag check — the right reading
/// under bag-set semantics, where every relation behaves as a set.
bool IsKeyBased(const Tgd& tgd, const DependencySet& sigma, const Schema& schema,
                bool require_set_valued = true);

}  // namespace sqleq

#endif  // SQLEQ_CHASE_ASSIGNMENT_FIXING_H_
