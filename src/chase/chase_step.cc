#include "chase/chase_step.h"

#include "chase/homomorphism.h"

namespace sqleq {

std::vector<TermMap> FindApplicableTgdHomomorphisms(const ConjunctiveQuery& q,
                                                    const Tgd& tgd) {
  std::vector<TermMap> out;
  ForEachHomomorphismGeneric(tgd.body(), q.body(), TermMap(), [&](const TermMap& h) {
    // Applicable iff h does not extend to the head (restricted chase).
    if (!HomomorphismExistsGeneric(tgd.head(), q.body(), h)) out.push_back(h);
    return true;
  });
  return out;
}

std::optional<TermMap> FindApplicableTgdHomomorphism(const ConjunctiveQuery& q,
                                                     const Tgd& tgd) {
  std::optional<TermMap> found;
  ForEachHomomorphismGeneric(tgd.body(), q.body(), TermMap(), [&](const TermMap& h) {
    if (!HomomorphismExistsGeneric(tgd.head(), q.body(), h)) {
      found = h;
      return false;
    }
    return true;
  });
  return found;
}

std::vector<Atom> InstantiateTgdHead(const Tgd& tgd, const TermMap& h,
                                     TermMap* out_fresh) {
  TermMap full = h;
  for (Term z : tgd.ExistentialVariables()) {
    full.emplace(z, Term::FreshVar(std::string(z.name())));
  }
  if (out_fresh != nullptr) {
    out_fresh->clear();
    for (Term z : tgd.ExistentialVariables()) out_fresh->emplace(z, full.at(z));
  }
  return ApplyTermMap(full, tgd.head());
}

ConjunctiveQuery ApplyTgdStep(const ConjunctiveQuery& q, const Tgd& tgd,
                              const TermMap& h) {
  std::vector<Atom> body = q.body();
  for (Atom& a : InstantiateTgdHead(tgd, h)) body.push_back(std::move(a));
  return q.WithBody(std::move(body));
}

std::optional<EgdApplication> FindEgdApplication(const ConjunctiveQuery& q,
                                                 const Egd& egd) {
  std::optional<EgdApplication> failing;
  std::optional<EgdApplication> found;
  ForEachHomomorphismGeneric(egd.body(), q.body(), TermMap(), [&](const TermMap& h) {
    Term l = ApplyTermMap(h, egd.left());
    Term r = ApplyTermMap(h, egd.right());
    if (l == r) return true;
    EgdApplication app;
    app.h = h;
    if (l.IsVariable()) {
      app.from = l;
      app.to = r;
    } else if (r.IsVariable()) {
      app.from = r;
      app.to = l;
    } else {
      app.failure = true;
      app.from = l;
      app.to = r;
      if (!failing.has_value()) failing = app;
      return true;  // keep searching for a non-failing application
    }
    found = app;
    return false;
  });
  if (found.has_value()) return found;
  return failing;
}

ConjunctiveQuery ApplyEgdStep(const ConjunctiveQuery& q, const EgdApplication& app) {
  TermMap replace{{app.from, app.to}};
  return q.Substitute(replace);
}

bool IsApplicable(const ConjunctiveQuery& q, const Dependency& dep) {
  if (dep.IsTgd()) {
    return FindApplicableTgdHomomorphism(q, dep.tgd()).has_value();
  }
  return FindEgdApplication(q, dep.egd()).has_value();
}

}  // namespace sqleq
