// SigmaPlan: per-Σ compiled chase step kernels.
//
// The paper's Thm 5.2 complexity profile — polynomial in |Q| for a *fixed*
// Σ — invites compiling everything that depends only on Σ once and reusing
// it across every query: trigger join patterns for tgd bodies, firing-check
// probes for tgd heads, egd merge schedules (body pattern + equation sides),
// and the key-based classification of each tgd (Def 5.1), which the sound
// chase otherwise re-derives per step. A SigmaPlan is immutable after
// Compile() and safe to share across threads; sqleqd caches one per catalog
// next to the shared ChaseMemo.
//
// Kernels are positional: kernel i corresponds to sigma[i] of the
// DependencySet handed to Compile(), and every invocation is the exact-order
// equivalent of the matching chase_step.h generic (same homomorphisms, same
// order — see the enumeration contract in chase/pattern.h), so compiled and
// generic chase runs are trace-identical.
#ifndef SQLEQ_CHASE_SIGMA_PLAN_H_
#define SQLEQ_CHASE_SIGMA_PLAN_H_

#include <optional>
#include <vector>

#include "chase/chase_step.h"
#include "chase/flat_db.h"
#include "chase/pattern.h"
#include "constraints/dependency.h"
#include "ir/schema.h"

namespace sqleq {

class SigmaPlan {
 public:
  /// One compiled dependency. For a tgd: `body` is the trigger join pattern,
  /// `head` the firing-check probe, and the key-based flags cache Def 5.1
  /// under both readings of `require_set_valued`. For an egd: `body` plus
  /// the equation sides.
  struct DepKernel {
    bool is_tgd = false;
    CompiledPattern body;
    CompiledPattern head;   // tgd only
    Term left;              // egd only
    Term right;             // egd only
    bool key_based_any = false;         // require_set_valued = false
    bool key_based_set_valued = false;  // require_set_valued = true
  };

  struct Stats {
    size_t dependencies = 0;
    size_t tgd_kernels = 0;
    size_t egd_kernels = 0;
    size_t pattern_atoms = 0;  // total atoms across all compiled patterns
  };

  SigmaPlan() = default;

  /// Compiles kernels for `sigma` as given (no regularization — callers
  /// chase arbitrary dependency sets). `schema` feeds the key-based flags;
  /// an empty schema yields key_based_set_valued = false, which only costs
  /// the fast path, never correctness.
  static SigmaPlan Compile(const DependencySet& sigma, const Schema& schema = {});

  size_t size() const { return kernels_.size(); }
  const DepKernel& kernel(size_t dep_index) const { return kernels_[dep_index]; }
  Stats stats() const;

  /// Exact-order equivalents of the chase_step.h generics, against an
  /// indexed conjunction. `dep_index` is the dependency's position in the
  /// compiled Σ.
  std::optional<TermMap> FindApplicableTgdHomomorphism(
      size_t dep_index, const FlatConjunction& to) const;
  std::vector<TermMap> FindApplicableTgdHomomorphisms(
      size_t dep_index, const FlatConjunction& to) const;
  std::optional<EgdApplication> FindEgdApplication(size_t dep_index,
                                                   const FlatConjunction& to) const;

  /// The kernels at positions `kept` (ascending indices into this plan), as
  /// a plan for the corresponding dependency subset: kernel i of the result
  /// serves dependency kept[i]. Used by Σ-slicing (analysis/sigma_graph.h);
  /// copying compiled kernels keeps the key-based flags bit-identical to
  /// the full compile instead of re-deriving them against the subset.
  SigmaPlan Subset(const std::vector<size_t>& kept) const;

  /// Cached IsKeyBased(tgd, Σ, schema, require_set_valued).
  bool KeyBased(size_t dep_index, bool require_set_valued) const {
    const DepKernel& k = kernels_[dep_index];
    return require_set_valued ? k.key_based_set_valued : k.key_based_any;
  }

 private:
  std::vector<DepKernel> kernels_;
};

}  // namespace sqleq

#endif  // SQLEQ_CHASE_SIGMA_PLAN_H_
