#include "chase/homomorphism.h"

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "chase/flat_db.h"
#include "chase/pattern.h"

namespace sqleq {
namespace {

/// Backtracking search for homomorphisms. Source atoms are matched
/// most-constrained-first (fewest same-predicate targets, then most bound
/// arguments), which keeps the NP-complete search fast on chase-generated
/// conjunctions. This is the executable spec the compiled matcher
/// (chase/pattern.h) emulates order-for-order.
class HomomorphismSearch {
 public:
  HomomorphismSearch(std::span<const Atom> from, std::span<const Atom> to,
                     const TermMap& fixed)
      : from_(from), to_(to), assignment_(fixed) {
    for (const Atom& a : to_) targets_per_pred_[a.predicate()].push_back(&a);
  }

  /// Returns true if enumeration ran to exhaustion (fn never returned false).
  bool Run(FunctionRef<bool(const TermMap&)> fn) {
    used_.assign(from_.size(), false);
    fn_ = &fn;
    return Recurse(0);
  }

 private:
  size_t PickNextAtom() const {
    size_t best = from_.size();
    // Lexicographic score: (candidate targets, -bound args). Lower is better.
    long best_score = -1;
    for (size_t i = 0; i < from_.size(); ++i) {
      if (used_[i]) continue;
      auto it = targets_per_pred_.find(from_[i].predicate());
      long n_targets = it == targets_per_pred_.end() ? 0 : static_cast<long>(it->second.size());
      long bound = 0;
      for (Term t : from_[i].args()) {
        if (t.IsConstant() || assignment_.count(t) > 0) ++bound;
      }
      long score = n_targets * 64 - bound;
      if (best == from_.size() || score < best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }

  bool Recurse(size_t depth) {
    if (depth == from_.size()) {
      // De-duplicate complete maps (different atom targets can induce the
      // same term map).
      std::string key = MapKey();
      if (!emitted_.insert(std::move(key)).second) return true;
      return (*fn_)(assignment_);
    }
    size_t idx = PickNextAtom();
    used_[idx] = true;
    const Atom& atom = from_[idx];
    bool keep_going = true;
    auto it = targets_per_pred_.find(atom.predicate());
    if (it != targets_per_pred_.end()) {
      for (const Atom* target : it->second) {
        if (target->arity() != atom.arity()) continue;
        std::vector<Term> newly_bound;
        bool match = true;
        for (size_t i = 0; i < atom.arity(); ++i) {
          Term arg = atom.args()[i];
          Term val = target->args()[i];
          if (arg.IsConstant()) {
            if (arg != val) {
              match = false;
              break;
            }
            continue;
          }
          auto bound = assignment_.find(arg);
          if (bound != assignment_.end()) {
            if (bound->second != val) {
              match = false;
              break;
            }
          } else {
            assignment_.emplace(arg, val);
            newly_bound.push_back(arg);
          }
        }
        if (match) keep_going = Recurse(depth + 1);
        for (Term v : newly_bound) assignment_.erase(v);
        if (!keep_going) break;
      }
    }
    used_[idx] = false;
    return keep_going;
  }

  std::string MapKey() const {
    // Canonical rendering of the current assignment restricted to the
    // variables of `from_`.
    std::set<std::string> entries;
    for (const Atom& a : from_) {
      for (Term t : a.args()) {
        if (!t.IsVariable()) continue;
        auto it = assignment_.find(t);
        if (it != assignment_.end()) {
          entries.insert(t.ToString() + ">" + it->second.ToString());
        }
      }
    }
    std::string out;
    for (const std::string& e : entries) {
      out += e;
      out += '|';
    }
    return out;
  }

  std::span<const Atom> from_;
  std::span<const Atom> to_;
  TermMap assignment_;
  std::vector<bool> used_;
  std::unordered_map<std::string, std::vector<const Atom*>> targets_per_pred_;
  std::set<std::string> emitted_;
  const FunctionRef<bool(const TermMap&)>* fn_ = nullptr;
};

}  // namespace

void ForEachHomomorphism(std::span<const Atom> from, std::span<const Atom> to,
                         const TermMap& fixed, FunctionRef<bool(const TermMap&)> fn) {
  CompiledPattern pattern(from);
  FlatConjunction flat(to);
  MatchPattern(pattern, flat, fixed, fn);
}

std::optional<TermMap> FindHomomorphism(std::span<const Atom> from,
                                        std::span<const Atom> to,
                                        const TermMap& fixed) {
  std::optional<TermMap> found;
  ForEachHomomorphism(from, to, fixed, [&found](const TermMap& h) {
    found = h;
    return false;
  });
  return found;
}

bool HomomorphismExists(std::span<const Atom> from, std::span<const Atom> to,
                        const TermMap& fixed) {
  return FindHomomorphism(from, to, fixed).has_value();
}

std::optional<TermMap> FindContainmentMapping(const ConjunctiveQuery& from,
                                              const ConjunctiveQuery& to) {
  if (from.head().size() != to.head().size()) return std::nullopt;
  TermMap fixed;
  for (size_t i = 0; i < from.head().size(); ++i) {
    Term src = from.head()[i];
    Term dst = to.head()[i];
    if (src.IsConstant()) {
      if (src != dst) return std::nullopt;
      continue;
    }
    auto it = fixed.find(src);
    if (it != fixed.end()) {
      if (it->second != dst) return std::nullopt;
    } else {
      fixed.emplace(src, dst);
    }
  }
  return FindHomomorphism(from.body(), to.body(), fixed);
}

bool ContainmentMappingExists(const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  return FindContainmentMapping(from, to).has_value();
}

void ForEachHomomorphismGeneric(std::span<const Atom> from, std::span<const Atom> to,
                                const TermMap& fixed,
                                FunctionRef<bool(const TermMap&)> fn) {
  HomomorphismSearch search(from, to, fixed);
  search.Run(fn);
}

std::optional<TermMap> FindHomomorphismGeneric(std::span<const Atom> from,
                                               std::span<const Atom> to,
                                               const TermMap& fixed) {
  std::optional<TermMap> found;
  ForEachHomomorphismGeneric(from, to, fixed, [&found](const TermMap& h) {
    found = h;
    return false;
  });
  return found;
}

bool HomomorphismExistsGeneric(std::span<const Atom> from, std::span<const Atom> to,
                               const TermMap& fixed) {
  return FindHomomorphismGeneric(from, to, fixed).has_value();
}

}  // namespace sqleq
