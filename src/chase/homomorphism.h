// Homomorphisms between conjunctions of atoms and containment mappings
// between CQ queries (§2.1) — the engine under chase steps, applicability
// tests, and the Chandra–Merlin containment test.
#ifndef SQLEQ_CHASE_HOMOMORPHISM_H_
#define SQLEQ_CHASE_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <vector>

#include "ir/query.h"

namespace sqleq {

/// Enumerates homomorphisms h from the conjunction `from` to the conjunction
/// `to`: h maps each variable of `from` to a term of `to` (or to a term
/// pre-bound in `fixed`), fixes constants, and sends every atom of `from` to
/// some atom of `to`. `fn` is invoked once per homomorphism (duplicates may
/// arise only from distinct atom targets yielding equal maps — they are
/// de-duplicated); return false from `fn` to stop.
void ForEachHomomorphism(const std::vector<Atom>& from, const std::vector<Atom>& to,
                         const TermMap& fixed,
                         const std::function<bool(const TermMap&)>& fn);

/// First homomorphism found, or nullopt. Deterministic for fixed inputs.
std::optional<TermMap> FindHomomorphism(const std::vector<Atom>& from,
                                        const std::vector<Atom>& to,
                                        const TermMap& fixed = {});

bool HomomorphismExists(const std::vector<Atom>& from, const std::vector<Atom>& to,
                        const TermMap& fixed = {});

/// A containment mapping from Q1 to Q2 (§2.1): a homomorphism from Q1's body
/// to Q2's body with h(head of Q1) = head of Q2, position-wise.
std::optional<TermMap> FindContainmentMapping(const ConjunctiveQuery& from,
                                              const ConjunctiveQuery& to);

bool ContainmentMappingExists(const ConjunctiveQuery& from, const ConjunctiveQuery& to);

}  // namespace sqleq

#endif  // SQLEQ_CHASE_HOMOMORPHISM_H_
