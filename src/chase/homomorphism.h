// Homomorphisms between conjunctions of atoms and containment mappings
// between CQ queries (§2.1) — the engine under chase steps, applicability
// tests, and the Chandra–Merlin containment test.
//
// Two implementations share one enumeration order:
//   * the default entry points compile the `from` conjunction to a
//     CompiledPattern, index `to` as a FlatConjunction, and hash-join
//     (chase/pattern.h) — the fast path;
//   * the *Generic entry points run the original backtracking search — kept
//     as the executable specification the compiled matcher is property-tested
//     against, and as the `ChaseOptions::use_compiled_kernels = false` path.
// Both emit the same homomorphisms in the same order.
#ifndef SQLEQ_CHASE_HOMOMORPHISM_H_
#define SQLEQ_CHASE_HOMOMORPHISM_H_

#include <optional>
#include <span>

#include "ir/query.h"
#include "util/function_ref.h"

namespace sqleq {

/// Enumerates homomorphisms h from the conjunction `from` to the conjunction
/// `to`: h maps each variable of `from` to a term of `to` (or to a term
/// pre-bound in `fixed`), fixes constants, and sends every atom of `from` to
/// some atom of `to`. `fn` is invoked once per homomorphism (duplicates may
/// arise only from distinct atom targets yielding equal maps — they are
/// de-duplicated); return false from `fn` to stop.
void ForEachHomomorphism(std::span<const Atom> from, std::span<const Atom> to,
                         const TermMap& fixed, FunctionRef<bool(const TermMap&)> fn);

/// First homomorphism found, or nullopt. Deterministic for fixed inputs.
std::optional<TermMap> FindHomomorphism(std::span<const Atom> from,
                                        std::span<const Atom> to,
                                        const TermMap& fixed = {});

bool HomomorphismExists(std::span<const Atom> from, std::span<const Atom> to,
                        const TermMap& fixed = {});

/// A containment mapping from Q1 to Q2 (§2.1): a homomorphism from Q1's body
/// to Q2's body with h(head of Q1) = head of Q2, position-wise.
std::optional<TermMap> FindContainmentMapping(const ConjunctiveQuery& from,
                                              const ConjunctiveQuery& to);

bool ContainmentMappingExists(const ConjunctiveQuery& from, const ConjunctiveQuery& to);

/// The original backtracking enumerator — same homomorphisms, same order as
/// ForEachHomomorphism, without pattern compilation or indexing.
void ForEachHomomorphismGeneric(std::span<const Atom> from, std::span<const Atom> to,
                                const TermMap& fixed,
                                FunctionRef<bool(const TermMap&)> fn);

std::optional<TermMap> FindHomomorphismGeneric(std::span<const Atom> from,
                                               std::span<const Atom> to,
                                               const TermMap& fixed = {});

bool HomomorphismExistsGeneric(std::span<const Atom> from, std::span<const Atom> to,
                               const TermMap& fixed = {});

}  // namespace sqleq

#endif  // SQLEQ_CHASE_HOMOMORPHISM_H_
