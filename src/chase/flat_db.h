// FlatConjunction: a data-oriented view of a conjunction of atoms — the
// canonical database the chase manipulates — replacing `std::vector<Atom>`
// scans in the chase inner loop.
//
// Atoms are grouped into per-(predicate, arity) blocks keyed by interned
// predicate ids (ir/predicate.h). Each block stores its terms column-major
// (struct-of-arrays) and keeps one hash index per column mapping a term to
// the ascending list of block rows carrying it, so a matcher with a bound
// argument probes a posting list instead of scanning every atom. Row order
// within a block is insertion order, which is what lets the compiled matcher
// (chase/pattern.h) reproduce the legacy backtracking enumeration order
// exactly.
//
// A FlatConjunction is a sidecar of the authoritative ConjunctiveQuery body:
// Rebuild() after destructive steps (egd merges, normalization), Append()
// after additive ones (tgd steps).
#ifndef SQLEQ_CHASE_FLAT_DB_H_
#define SQLEQ_CHASE_FLAT_DB_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ir/atom.h"
#include "ir/predicate.h"
#include "ir/term.h"

namespace sqleq {

class FlatConjunction {
 public:
  /// One per-(predicate, arity) group of atoms in column-major layout.
  struct Block {
    uint32_t arity = 0;
    uint32_t rows = 0;
    /// `arity` columns, each of length `rows`: cols[c][r] is argument c of
    /// the block's r-th atom (insertion order).
    std::vector<std::vector<Term>> cols;

    /// Ascending rows r with cols[c][r] == t; empty when no row carries t.
    /// Posting lists are built lazily on the first probe of a column (and
    /// rebuilt on the first probe after an Append), so a column no matcher
    /// ever probes is never indexed. Lazy build makes concurrent probes of
    /// one FlatConjunction racy — instances are chase-run-local, never
    /// shared across threads.
    std::span<const uint32_t> Postings(uint32_t c, Term t) const;

   private:
    friend class FlatConjunction;
    /// CSR posting lists for one column: rows holds every row number grouped
    /// by term (ascending within each group), spans[t] is the [begin, end)
    /// window of t's group. One flat array instead of a vector per term.
    struct ColumnIndex {
      std::unordered_map<Term, std::pair<uint32_t, uint32_t>, TermHash> spans;
      std::vector<uint32_t> rows;
      uint32_t built_rows = 0;
    };
    mutable std::vector<ColumnIndex> index_;
  };

  FlatConjunction() = default;
  explicit FlatConjunction(std::span<const Atom> atoms) { Rebuild(atoms); }

  // Non-copyable: instances are chase-run-local scratch, and the Append
  // memo holds a pointer into blocks_.
  FlatConjunction(const FlatConjunction&) = delete;
  FlatConjunction& operator=(const FlatConjunction&) = delete;

  /// Re-indexes from scratch. Use after an egd step or normalization
  /// rewrote the conjunction.
  void Rebuild(std::span<const Atom> atoms);

  /// Indexes one more atom (a tgd step appending head instances).
  void Append(const Atom& atom);

  void Clear();

  /// Total atoms indexed.
  size_t size() const { return n_atoms_; }

  /// Atoms whose predicate is `p`, across all arities — the matcher's
  /// candidate-count scoring input.
  size_t CountForPredicate(PredicateId p) const {
    return static_cast<size_t>(p) < pred_counts_.size()
               ? pred_counts_[static_cast<size_t>(p)]
               : 0;
  }

  /// The (p, arity) block, or nullptr when no such atom was indexed.
  const Block* FindBlock(PredicateId p, uint32_t arity) const;

  /// True iff an atom equal to `atom` (same predicate and argument terms)
  /// was indexed — the index-backed equivalent of a linear body scan.
  bool ContainsAtom(const Atom& atom) const;

 private:
  static uint64_t BlockKey(PredicateId p, uint32_t arity) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(p)) << 32) | arity;
  }

  std::unordered_map<uint64_t, Block> blocks_;
  std::vector<size_t> pred_counts_;  // by PredicateId
  size_t n_atoms_ = 0;
  size_t reserve_hint_ = 0;    // set during Rebuild's bulk load
  uint64_t last_key_ = 0;      // one-entry Append memo; see Append
  Block* last_block_ = nullptr;
};

}  // namespace sqleq

#endif  // SQLEQ_CHASE_FLAT_DB_H_
