#include "chase/max_subset.h"

#include "chase/sound_chase.h"

namespace sqleq {

Result<MaxSubsetResult> MaxSigmaSubset(const ConjunctiveQuery& q,
                                       const DependencySet& sigma, Semantics semantics,
                                       const Schema& schema, const ChaseOptions& options) {
  if (semantics == Semantics::kSet) {
    return Status::InvalidArgument(
        "MaxSigmaSubset targets bag/bag-set semantics; under set semantics the "
        "terminal chase result satisfies all of Σ");
  }
  // Line 1: Qn := soundChase(X, Q, Σ).
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome chased,
                         SoundChase(q, sigma, semantics, schema, options));
  if (chased.failed) {
    return Status::FailedPrecondition(
        "sound chase failed (egd equated distinct constants); Q is unsatisfiable "
        "under Σ");
  }
  MaxSubsetResult out{chased.result, {}};
  // Lines 2–5: drop every σ still applicable to Qn. Sound chase ran to
  // termination, so an applicable σ admits no sound step — it is unsoundly
  // applicable, and D(Qn) |=/ σ (Appendix I state analysis).
  for (const Dependency& dep : sigma) {
    SQLEQ_ASSIGN_OR_RETURN(
        StepAvailability availability,
        ClassifyStep(chased.result, dep, sigma, semantics, schema, options));
    if (availability == StepAvailability::kNotApplicable) {
      out.max_subset.push_back(dep);
    }
  }
  return out;
}

Result<MaxSubsetResult> MaxBagSigmaSubset(const ConjunctiveQuery& q,
                                          const DependencySet& sigma,
                                          const Schema& schema,
                                          const ChaseOptions& options) {
  return MaxSigmaSubset(q, sigma, Semantics::kBag, schema, options);
}

Result<MaxSubsetResult> MaxBagSetSigmaSubset(const ConjunctiveQuery& q,
                                             const DependencySet& sigma,
                                             const Schema& schema,
                                             const ChaseOptions& options) {
  return MaxSigmaSubset(q, sigma, Semantics::kBagSet, schema, options);
}

}  // namespace sqleq
