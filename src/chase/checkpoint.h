// Chase checkpoints (docs/robustness.md): when a budgeted chase trips a
// limit, its loop state — the chased-atom set, the fired-dependency frontier
// (the trace), and the step count — is captured instead of discarded, so a
// retry with an escalated budget resumes where the previous attempt stopped
// rather than re-firing every step. SetChase/SoundChase accept a checkpoint
// through ChaseRuntime::resume and capture one through
// ChaseRuntime::checkpoint_out; ChaseMemo stamps the canonical query key
// into `subject` so a checkpoint is only ever replayed against the query it
// belongs to.
//
// Checkpoints serialize to a line-based text format (term kinds are tagged
// explicitly — chase-introduced fresh variables like "v#7" do not survive a
// round trip through the Datalog parser), so a deadline-bound service can
// park an interrupted chase and resume it in a later process.
#ifndef SQLEQ_CHASE_CHECKPOINT_H_
#define SQLEQ_CHASE_CHECKPOINT_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "chase/set_chase.h"
#include "ir/query.h"
#include "util/status.h"

namespace sqleq {

/// The resumable state of an interrupted SetChase/SoundChase run.
struct ChaseCheckpoint {
  /// Which loop was interrupted; resume dispatches on it (a probe checkpoint
  /// restarts inside the sound chase's set-chase precondition probe, a
  /// sound-chase checkpoint skips the already-passed probe).
  static constexpr const char* kSetChasePhase = "set-chase";
  static constexpr const char* kSetChaseProbePhase = "set-chase-probe";
  static constexpr const char* kSoundChasePhase = "sound-chase";

  std::string phase;
  /// CanonicalQueryKey of the query the checkpoint belongs to, stamped by
  /// ChaseMemo; empty for direct SetChase/SoundChase captures (then matching
  /// checkpoint to query is the caller's responsibility).
  std::string subject;
  /// The query at interruption time: head + chased-atom set.
  ConjunctiveQuery state;
  /// Fired-dependency frontier: the trace up to the interruption.
  std::vector<ChaseStepRecord> trace;
  /// Steps already fired; the resumed loop starts here against the
  /// remaining step budget.
  size_t steps_done = 0;

  std::string Serialize() const;
  static Result<ChaseCheckpoint> Deserialize(std::string_view text);
};

// ---- Serialization helpers shared with the backchase/C&B checkpoints
// (reformulation/backchase.h, reformulation/candb.h). ----

/// Escapes '\\', '\n', and '\t' so a field embeds into the line/tab-based
/// checkpoint format.
std::string EscapeField(std::string_view s);
Result<std::string> UnescapeField(std::string_view s);

/// One-line, kind-tagged query serialization ("V:" variables, "I:"/"S:"
/// constants), exact for chase-introduced fresh variables.
std::string SerializeQuery(const ConjunctiveQuery& q);
Result<ConjunctiveQuery> DeserializeQuery(std::string_view line);

std::string SerializeStepRecord(const ChaseStepRecord& record);
Result<ChaseStepRecord> DeserializeStepRecord(std::string_view line);

}  // namespace sqleq

#endif  // SQLEQ_CHASE_CHECKPOINT_H_
