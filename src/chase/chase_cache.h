// Chase memoization. Sound chase results are pure functions of
// (query, Σ, semantics, schema, chase knobs) — Thm 5.1 / G.1 make them
// unique up to the semantics' equivalence — so a memo cache over a
// renaming- and atom-order-invariant canonical form of the query is sound:
// isomorphic queries share one chase. The backchase sweeps the 2^n subquery
// lattice, where isomorphic candidates abound; the cache is what keeps the
// parallel backchase from re-chasing them.
#ifndef SQLEQ_CHASE_CHASE_CACHE_H_
#define SQLEQ_CHASE_CHASE_CACHE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "chase/sound_chase.h"

namespace sqleq {

/// A canonical form of `q`: variables renamed to ?0, ?1, ... and body atoms
/// reordered by a greedy least-signature labelling, so any two queries that
/// differ only by variable naming and atom order (and usually any two
/// isomorphic queries) canonicalize identically. The key does NOT include
/// the query name. `out_canonical` (optional) receives the canonicalized
/// query; `out_from_canonical` (optional) the canonical→original variable
/// map.
std::string CanonicalQueryKey(const ConjunctiveQuery& q,
                              ConjunctiveQuery* out_canonical = nullptr,
                              TermMap* out_from_canonical = nullptr);

/// Thread-safe memo of sound-chase outcomes for one fixed chase context
/// (Σ, semantics, schema, options). Outcomes are cached in canonical
/// variable space; Chase() maps them back onto the caller's variables.
///
/// The stored ChaseOptions' deadline applies to cache-miss chases; callers
/// that need per-call deadlines should check them around the call (cache
/// hits cost microseconds).
class ChaseMemo {
 public:
  ChaseMemo(DependencySet sigma, Semantics semantics, Schema schema,
            ChaseOptions options)
      : sigma_(std::move(sigma)),
        semantics_(semantics),
        schema_(std::move(schema)),
        options_(std::move(options)) {}

  /// Memoized SoundChase of `q`, returned in canonical variable space (NOT
  /// remapped to q's variables) — sufficient for every isomorphism-invariant
  /// use (the equivalence tests of Thms 2.2/6.1/6.2). Shared pointer: the
  /// outcome may be handed to many threads. `out_key` (optional) receives
  /// the canonical key, letting callers do their own deterministic hit
  /// accounting. Statuses (step budget, deadline) are never cached.
  ///
  /// `runtime` (chase/set_chase.h) threads the anytime hooks through the
  /// cache-miss chase: captured checkpoints are stamped with the canonical
  /// key as `subject` and live in canonical variable space, and a
  /// runtime.resume checkpoint is applied only when its subject matches the
  /// query being chased (mismatches start cold — never corrupt). The
  /// "memo.insert" fault site fires before a freshly chased outcome is
  /// inserted.
  Result<std::shared_ptr<const ChaseOutcome>> ChaseCanonical(
      const ConjunctiveQuery& q, std::string* out_key = nullptr,
      const ChaseRuntime& runtime = {});

  /// Memoized SoundChase of `q` with the result mapped back onto q's
  /// variables and name. Chase-introduced fresh variables and the trace
  /// (rendered in canonical space) pass through unchanged. Checkpoints
  /// behave as in ChaseCanonical (canonical space, subject-stamped).
  Result<ChaseOutcome> Chase(const ConjunctiveQuery& q,
                             const ChaseRuntime& runtime = {});

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
  };
  /// Live counters. Under concurrent misses of one key both misses are
  /// counted (the first insert wins); use CanonicalQueryKey-based accounting
  /// for deterministic numbers.
  Stats stats() const;

  const DependencySet& sigma() const { return sigma_; }
  Semantics semantics() const { return semantics_; }
  const Schema& schema() const { return schema_; }
  const ChaseOptions& options() const { return options_; }

 private:
  const DependencySet sigma_;
  const Semantics semantics_;
  const Schema schema_;
  const ChaseOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const ChaseOutcome>> cache_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace sqleq

#endif  // SQLEQ_CHASE_CHASE_CACHE_H_
