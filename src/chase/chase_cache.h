// Chase memoization. Sound chase results are pure functions of
// (query, Σ, semantics, schema, chase knobs) — Thm 5.1 / G.1 make them
// unique up to the semantics' equivalence — so a memo cache over a
// renaming- and atom-order-invariant canonical form of the query is sound:
// isomorphic queries share one chase. The backchase sweeps the 2^n subquery
// lattice, where isomorphic candidates abound; the cache is what keeps the
// parallel backchase from re-chasing them.
#ifndef SQLEQ_CHASE_CHASE_CACHE_H_
#define SQLEQ_CHASE_CHASE_CACHE_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chase/chase_plan.h"
#include "chase/sound_chase.h"

namespace sqleq {

class MemoStore;

/// Callbacks into a fleet's peer memo tier (docs/fleet.md). `fetch` asks
/// the shard that owns `disk_key` for its settled outcome body (serialized
/// via SerializeChaseOutcomeBody) and returns nullopt on miss or transport
/// failure; `offer` pushes a freshly chased body toward the key's owner
/// (fire-and-forget). Either hook may be empty. Both run outside the memo
/// lock, on the chasing thread, and must never re-enter the memo — in
/// particular, a fetch handler on the serving side answers from its own
/// tiers only (ChaseMemo::ExportRecord), it never chases.
struct MemoPeerTier {
  std::function<std::optional<std::string>(const std::string& disk_key)> fetch;
  std::function<void(const std::string& disk_key, const std::string& body)>
      offer;
};

/// A canonical form of `q`: variables renamed to ?0, ?1, ... and body atoms
/// reordered by a greedy least-signature labelling, so any two queries that
/// differ only by variable naming and atom order (and usually any two
/// isomorphic queries) canonicalize identically. The key does NOT include
/// the query name. `out_canonical` (optional) receives the canonicalized
/// query; `out_from_canonical` (optional) the canonical→original variable
/// map.
std::string CanonicalQueryKey(const ConjunctiveQuery& q,
                              ConjunctiveQuery* out_canonical = nullptr,
                              TermMap* out_from_canonical = nullptr);

/// Thread-safe memo of sound-chase outcomes for one fixed chase context
/// (Σ, semantics, schema, options). Outcomes are cached in canonical
/// variable space; Chase() maps them back onto the caller's variables.
///
/// The stored ChaseOptions' deadline applies to cache-miss chases; callers
/// that need per-call deadlines should check them around the call (cache
/// hits cost microseconds).
///
/// Retained footprint is bounded when a byte limit is set (`byte_limit`
/// constructor argument or set_byte_limit): each entry is charged its
/// canonical key plus the rendered chase result — the same estimate the
/// memo.bytes metric uses — and least-recently-used entries are evicted
/// until the total fits. The most recently touched entry is never evicted,
/// so a single oversized outcome still caches. Limit 0 means unbounded
/// (the pre-existing behavior; fine for one-shot CLI calls, required to be
/// finite for process-lifetime memos like the sqleqd server's).
class ChaseMemo {
 public:
  /// Compiles a ChasePlan for the context and memoizes its runs.
  ChaseMemo(DependencySet sigma, Semantics semantics, Schema schema,
            ChaseOptions options, size_t byte_limit = 0)
      : ChaseMemo(std::make_shared<const ChasePlan>(std::move(sigma), semantics,
                                                    std::move(schema), options),
                  byte_limit) {}

  /// Shares an already-compiled plan (e.g. with a C&B run that chases the
  /// universal plan through the same kernels).
  explicit ChaseMemo(std::shared_ptr<const ChasePlan> plan, size_t byte_limit = 0)
      : plan_(std::move(plan)), byte_limit_(byte_limit) {}

  /// Re-bounds the memo; shrinking evicts LRU entries immediately (counted
  /// in stats().evictions, but not in the memo.evictions metric — there is
  /// no runtime in scope). 0 removes the bound.
  void set_byte_limit(size_t byte_limit);

  /// Attaches a tier-2 on-disk store (chase/memo_store.h): memory misses
  /// consult it (disk hits are parsed back and re-promoted into the memory
  /// tier, slice-suffixed key and all), fresh outcomes are written through,
  /// and LRU evictions spill as a backstop (normally a no-op thanks to the
  /// write-through). Disk failures of any kind degrade to a cold chase,
  /// never an error. `context_fingerprint` names the chase context (Σ,
  /// semantics, schema, options); records live under a fingerprint-derived
  /// key prefix, and a sentinel record pins the prefix to the full
  /// fingerprint so a hash collision between contexts detaches the tier
  /// instead of mixing outcomes. nullptr detaches.
  void AttachStore(std::shared_ptr<MemoStore> store,
                   std::string_view context_fingerprint);

  /// Attaches the fleet's peer memo tier: after a memory- and disk-tier
  /// miss (and before a fresh chase), `peer->fetch` is consulted with the
  /// same context-prefixed key the disk tier uses; a hit is parsed,
  /// promoted into the memory tier, and written through to the local disk
  /// tier. Freshly chased outcomes are handed to `peer->offer` after the
  /// local write-through. Counted as memo.peer.hits / memo.peer.misses in
  /// the per-call runtime metrics. `context_fingerprint` must be the same
  /// string AttachStore gets, so peer keys and disk keys agree fleet-wide.
  /// nullptr detaches.
  void AttachPeerTier(std::shared_ptr<const MemoPeerTier> peer,
                      std::string_view context_fingerprint);

  /// The serving half of the peer tier (the memo_fetch verb): the
  /// serialized outcome body cached in the memory tier under `disk_key`
  /// (context prefix + canonical key), or nullopt when the key is not this
  /// memo's context or not cached. Read-only — never chases, never touches
  /// the disk tier (the caller consults MemoStore itself).
  std::optional<std::string> ExportRecord(std::string_view disk_key) const;

  /// The accepting half of a peer offer: parses `body` and promotes it
  /// into the memory tier (write-through to the disk tier when attached)
  /// if `disk_key` belongs to this memo's context. Returns whether the
  /// record was accepted. Malformed bodies are rejected, never fatal.
  bool ImportRecord(std::string_view disk_key, const std::string& body);

  /// Pins the Σ-slice of `envelope` for every later chase through this
  /// memo. Sound exactly when each chased query is a sub-conjunction of
  /// `envelope` (up to renaming) — the backchase invariant: Σ-slices are
  /// monotone in the body, so the envelope's slice is a sound slice for
  /// every candidate, and the whole lattice sweep shares one compiled
  /// kernel subset instead of slicing each candidate shape separately.
  /// Call before the first chase; no-op when the plan does not slice.
  void PinEnvelope(const ConjunctiveQuery& envelope);

  /// Memoized SoundChase of `q`, returned in canonical variable space (NOT
  /// remapped to q's variables) — sufficient for every isomorphism-invariant
  /// use (the equivalence tests of Thms 2.2/6.1/6.2). Shared pointer: the
  /// outcome may be handed to many threads. `out_key` (optional) receives
  /// the canonical key, letting callers do their own deterministic hit
  /// accounting. Statuses (step budget, deadline) are never cached.
  ///
  /// `runtime` (chase/set_chase.h) threads the anytime hooks through the
  /// cache-miss chase: captured checkpoints are stamped with the canonical
  /// key as `subject` and live in canonical variable space, and a
  /// runtime.resume checkpoint is applied only when its subject matches the
  /// query being chased (mismatches start cold — never corrupt). The
  /// "memo.insert" fault site fires before a freshly chased outcome is
  /// inserted.
  Result<std::shared_ptr<const ChaseOutcome>> ChaseCanonical(
      const ConjunctiveQuery& q, std::string* out_key = nullptr,
      const ChaseRuntime& runtime = {});

  /// Memoized SoundChase of `q` with the result mapped back onto q's
  /// variables and name. Chase-introduced fresh variables and the trace
  /// (rendered in canonical space) pass through unchanged. Checkpoints
  /// behave as in ChaseCanonical (canonical space, subject-stamped).
  Result<ChaseOutcome> Chase(const ConjunctiveQuery& q,
                             const ChaseRuntime& runtime = {});

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    /// Approximate retained bytes of the live entries.
    size_t bytes = 0;
    /// Entries evicted to honor the byte limit, lifetime total.
    size_t evictions = 0;
    size_t byte_limit = 0;
  };
  /// Live counters. Under concurrent misses of one key both misses are
  /// counted (the first insert wins); use CanonicalQueryKey-based accounting
  /// for deterministic numbers.
  Stats stats() const;

  const DependencySet& sigma() const { return plan_->sigma(); }
  Semantics semantics() const { return plan_->semantics(); }
  const Schema& schema() const { return plan_->schema(); }
  const ChaseOptions& options() const { return plan_->options(); }
  /// The compiled plan cache misses chase through.
  const ChasePlan& plan() const { return *plan_; }
  std::shared_ptr<const ChasePlan> shared_plan() const { return plan_; }

 private:
  struct Entry {
    std::shared_ptr<const ChaseOutcome> outcome;
    size_t bytes = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru;
  };

  /// (disk key, outcome) of an entry evicted under mu_; spilled to the
  /// disk tier after unlocking.
  using SpilledEntry =
      std::pair<std::string, std::shared_ptr<const ChaseOutcome>>;

  /// The shared lookup core behind Chase/ChaseCanonical: memory tier, then
  /// disk tier (with re-promotion), then a fresh chase (with write-through).
  Result<std::shared_ptr<const ChaseOutcome>> LookupOrChase(
      const ConjunctiveQuery& q, std::string* out_key, TermMap* from_canonical,
      const ChaseRuntime& runtime);

  /// Inserts (or returns the concurrent winner of) `key`; runs eviction.
  /// Returns the cached outcome and whether this call inserted it.
  std::pair<std::shared_ptr<const ChaseOutcome>, bool> InsertLocked(
      const std::string& key, std::shared_ptr<const ChaseOutcome> entry,
      MetricsRegistry* metrics, std::vector<SpilledEntry>* spilled);

  /// Evicts LRU entries (never the front) until the limit holds, recording
  /// victims in `spilled` (may be null) when a store is attached. Caller
  /// holds mu_.
  void EvictLocked(MetricsRegistry* metrics,
                   std::vector<SpilledEntry>* spilled);

  const std::shared_ptr<const ChasePlan> plan_;

  /// Set by PinEnvelope: the envelope's slice (stable reference into the
  /// plan's shape cache) and its prebuilt "|slice:<sig>" key suffix.
  const SigmaSlice* pinned_slice_ = nullptr;
  std::string pinned_suffix_;

  mutable std::mutex mu_;
  /// Tier-2 store and the context-fingerprint key prefix; both set by
  /// AttachStore under mu_ and copied out under mu_ before disk I/O.
  std::shared_ptr<MemoStore> store_;
  std::string disk_prefix_;
  /// Peer tier hooks and their context prefix (same derivation as
  /// disk_prefix_; set by AttachPeerTier under mu_, copied out before I/O).
  std::shared_ptr<const MemoPeerTier> peer_;
  std::string peer_prefix_;
  std::unordered_map<std::string, Entry> cache_;
  std::list<std::string> lru_;
  size_t byte_limit_ = 0;
  size_t bytes_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace sqleq

#endif  // SQLEQ_CHASE_CHASE_CACHE_H_
