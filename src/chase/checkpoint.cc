#include "chase/checkpoint.h"

#include <variant>

namespace sqleq {
namespace {

std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

std::string SerializeTerm(Term t) {
  if (t.IsVariable()) return "V:" + EscapeField(t.name());
  const Value& v = t.value();
  if (std::holds_alternative<int64_t>(v)) {
    return "I:" + std::to_string(std::get<int64_t>(v));
  }
  return "S:" + EscapeField(std::get<std::string>(v));
}

Result<Term> DeserializeTerm(std::string_view token) {
  if (token.size() < 2 || token[1] != ':') {
    return Status::InvalidArgument("checkpoint: malformed term token '" +
                                   std::string(token) + "'");
  }
  std::string_view payload = token.substr(2);
  switch (token[0]) {
    case 'V': {
      SQLEQ_ASSIGN_OR_RETURN(std::string name, UnescapeField(payload));
      return Term::Var(name);
    }
    case 'I': {
      int64_t value = 0;
      bool negative = !payload.empty() && payload[0] == '-';
      std::string_view digits = negative ? payload.substr(1) : payload;
      if (digits.empty()) {
        return Status::InvalidArgument("checkpoint: empty integer token");
      }
      for (char c : digits) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("checkpoint: bad integer token '" +
                                         std::string(token) + "'");
        }
        value = value * 10 + (c - '0');
      }
      return Term::Int(negative ? -value : value);
    }
    case 'S': {
      SQLEQ_ASSIGN_OR_RETURN(std::string s, UnescapeField(payload));
      return Term::Str(s);
    }
    default:
      return Status::InvalidArgument("checkpoint: unknown term tag '" +
                                     std::string(token) + "'");
  }
}

}  // namespace

std::string EscapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::InvalidArgument("checkpoint: dangling escape");
    }
    ++i;
    switch (s[i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      default:
        return Status::InvalidArgument("checkpoint: unknown escape '\\" +
                                       std::string(1, s[i]) + "'");
    }
  }
  return out;
}

std::string SerializeQuery(const ConjunctiveQuery& q) {
  std::string out = "Q:" + EscapeField(q.name());
  out += "\tH";
  for (Term t : q.head()) {
    out += '\t';
    out += SerializeTerm(t);
  }
  for (const Atom& a : q.body()) {
    out += "\tA:" + EscapeField(a.predicate());
    for (Term t : a.args()) {
      out += '\t';
      out += SerializeTerm(t);
    }
  }
  return out;
}

Result<ConjunctiveQuery> DeserializeQuery(std::string_view line) {
  std::vector<std::string_view> fields = SplitTabs(line);
  if (fields.size() < 2 || fields[0].substr(0, 2) != "Q:" || fields[1] != "H") {
    return Status::InvalidArgument("checkpoint: malformed query line");
  }
  SQLEQ_ASSIGN_OR_RETURN(std::string name, UnescapeField(fields[0].substr(2)));
  std::vector<Term> head;
  size_t i = 2;
  for (; i < fields.size() && fields[i].substr(0, 2) != "A:"; ++i) {
    SQLEQ_ASSIGN_OR_RETURN(Term t, DeserializeTerm(fields[i]));
    head.push_back(t);
  }
  std::vector<Atom> body;
  while (i < fields.size()) {
    SQLEQ_ASSIGN_OR_RETURN(std::string pred, UnescapeField(fields[i].substr(2)));
    ++i;
    std::vector<Term> args;
    for (; i < fields.size() && fields[i].substr(0, 2) != "A:"; ++i) {
      SQLEQ_ASSIGN_OR_RETURN(Term t, DeserializeTerm(fields[i]));
      args.push_back(t);
    }
    body.emplace_back(std::move(pred), std::move(args));
  }
  return ConjunctiveQuery::Make(std::move(name), std::move(head),
                                std::move(body));
}

std::string SerializeStepRecord(const ChaseStepRecord& record) {
  return EscapeField(record.dep_label) + '\t' + (record.is_tgd ? '1' : '0') +
         '\t' + EscapeField(record.result);
}

Result<ChaseStepRecord> DeserializeStepRecord(std::string_view line) {
  std::vector<std::string_view> fields = SplitTabs(line);
  if (fields.size() != 3 || (fields[1] != "0" && fields[1] != "1")) {
    return Status::InvalidArgument("checkpoint: malformed trace line");
  }
  ChaseStepRecord record;
  SQLEQ_ASSIGN_OR_RETURN(record.dep_label, UnescapeField(fields[0]));
  record.is_tgd = fields[1] == "1";
  SQLEQ_ASSIGN_OR_RETURN(record.result, UnescapeField(fields[2]));
  return record;
}

std::string ChaseCheckpoint::Serialize() const {
  std::string out = "sqleq-chase-checkpoint v1\n";
  out += "phase " + phase + '\n';
  out += "subject " + EscapeField(subject) + '\n';
  out += "steps " + std::to_string(steps_done) + '\n';
  out += "state " + SerializeQuery(state) + '\n';
  for (const ChaseStepRecord& record : trace) {
    out += "trace " + SerializeStepRecord(record) + '\n';
  }
  out += "end\n";
  return out;
}

Result<ChaseCheckpoint> ChaseCheckpoint::Deserialize(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty() || lines[0] != "sqleq-chase-checkpoint v1") {
    return Status::InvalidArgument("checkpoint: bad header");
  }
  std::string phase;
  std::string subject;
  size_t steps = 0;
  std::optional<ConjunctiveQuery> state;
  std::vector<ChaseStepRecord> trace;
  bool saw_end = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      return Status::InvalidArgument("checkpoint: malformed line '" +
                                     std::string(line) + "'");
    }
    std::string_view key = line.substr(0, space);
    std::string_view value = line.substr(space + 1);
    if (key == "phase") {
      phase = std::string(value);
    } else if (key == "subject") {
      SQLEQ_ASSIGN_OR_RETURN(subject, UnescapeField(value));
    } else if (key == "steps") {
      steps = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("checkpoint: bad step count");
        }
        steps = steps * 10 + static_cast<size_t>(c - '0');
      }
    } else if (key == "state") {
      SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, DeserializeQuery(value));
      state = std::move(q);
    } else if (key == "trace") {
      SQLEQ_ASSIGN_OR_RETURN(ChaseStepRecord record, DeserializeStepRecord(value));
      trace.push_back(std::move(record));
    } else {
      return Status::InvalidArgument("checkpoint: unknown key '" +
                                     std::string(key) + "'");
    }
  }
  if (!saw_end || !state.has_value() || phase.empty()) {
    return Status::InvalidArgument("checkpoint: truncated");
  }
  return ChaseCheckpoint{std::move(phase), std::move(subject),
                         std::move(*state), std::move(trace), steps};
}

}  // namespace sqleq
