#include "chase/sigma_plan.h"

#include "chase/assignment_fixing.h"

namespace sqleq {

SigmaPlan SigmaPlan::Compile(const DependencySet& sigma, const Schema& schema) {
  SigmaPlan plan;
  plan.kernels_.reserve(sigma.size());
  for (const Dependency& dep : sigma) {
    DepKernel k;
    k.is_tgd = dep.IsTgd();
    if (dep.IsTgd()) {
      const Tgd& tgd = dep.tgd();
      k.body = CompiledPattern(tgd.body());
      k.head = CompiledPattern(tgd.head());
      k.key_based_any =
          IsKeyBased(tgd, sigma, schema, /*require_set_valued=*/false);
      k.key_based_set_valued =
          IsKeyBased(tgd, sigma, schema, /*require_set_valued=*/true);
    } else {
      const Egd& egd = dep.egd();
      k.body = CompiledPattern(egd.body());
      k.left = egd.left();
      k.right = egd.right();
    }
    plan.kernels_.push_back(std::move(k));
  }
  return plan;
}

SigmaPlan SigmaPlan::Subset(const std::vector<size_t>& kept) const {
  SigmaPlan out;
  out.kernels_.reserve(kept.size());
  for (size_t i : kept) out.kernels_.push_back(kernels_[i]);
  return out;
}

SigmaPlan::Stats SigmaPlan::stats() const {
  Stats s;
  s.dependencies = kernels_.size();
  for (const DepKernel& k : kernels_) {
    if (k.is_tgd) {
      ++s.tgd_kernels;
      s.pattern_atoms += k.body.n_atoms() + k.head.n_atoms();
    } else {
      ++s.egd_kernels;
      s.pattern_atoms += k.body.n_atoms();
    }
  }
  return s;
}

std::optional<TermMap> SigmaPlan::FindApplicableTgdHomomorphism(
    size_t dep_index, const FlatConjunction& to) const {
  const DepKernel& k = kernels_[dep_index];
  std::optional<TermMap> found;
  MatchPattern(k.body, to, TermMap(), [&](const TermMap& h) {
    // Applicable iff h does not extend to the head (restricted chase).
    if (!PatternMatchExists(k.head, to, h)) {
      found = h;
      return false;
    }
    return true;
  });
  return found;
}

std::vector<TermMap> SigmaPlan::FindApplicableTgdHomomorphisms(
    size_t dep_index, const FlatConjunction& to) const {
  const DepKernel& k = kernels_[dep_index];
  std::vector<TermMap> out;
  MatchPattern(k.body, to, TermMap(), [&](const TermMap& h) {
    if (!PatternMatchExists(k.head, to, h)) out.push_back(h);
    return true;
  });
  return out;
}

std::optional<EgdApplication> SigmaPlan::FindEgdApplication(
    size_t dep_index, const FlatConjunction& to) const {
  const DepKernel& k = kernels_[dep_index];
  std::optional<EgdApplication> failing;
  std::optional<EgdApplication> found;
  MatchPattern(k.body, to, TermMap(), [&](const TermMap& h) {
    Term l = ApplyTermMap(h, k.left);
    Term r = ApplyTermMap(h, k.right);
    if (l == r) return true;
    EgdApplication app;
    app.h = h;
    if (l.IsVariable()) {
      app.from = l;
      app.to = r;
    } else if (r.IsVariable()) {
      app.from = r;
      app.to = l;
    } else {
      app.failure = true;
      app.from = l;
      app.to = r;
      if (!failing.has_value()) failing = app;
      return true;  // keep searching for a non-failing application
    }
    found = app;
    return false;
  });
  if (found.has_value()) return found;
  return failing;
}

}  // namespace sqleq
