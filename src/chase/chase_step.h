// Chase steps with tgds and egds (§2.4).
//
// Tgd σ: φ → ∃V̄ ψ applies to Q(X̄) :- ξ when some homomorphism h: φ → ξ
// cannot extend to φ∧ψ → ξ; the step conjoins ψ(h(Ū), V̄) to the body with
// the existential variables V̄ freshly renamed.
//
// Egd e: φ → U1 = U2 applies when some h: φ → ξ has h(U1) ≠ h(U2) with at
// least one side a variable; the step replaces that variable throughout Q.
// Two distinct constants make the chase FAIL (Q is unsatisfiable on
// databases satisfying the egd).
//
// These free functions run on the generic backtracking matcher — the
// executable-spec path behind ChaseOptions::use_compiled_kernels = false.
// The compiled equivalents (same homomorphisms, same order) live in
// chase/sigma_plan.h.
#ifndef SQLEQ_CHASE_CHASE_STEP_H_
#define SQLEQ_CHASE_CHASE_STEP_H_

#include <optional>
#include <string>
#include <vector>

#include "constraints/dependency.h"
#include "ir/query.h"
#include "util/status.h"

namespace sqleq {

/// Enumerates the homomorphisms h: body(σ) → body(q) under which the tgd
/// chase is applicable, i.e. h does not extend to the head. Deterministic
/// order.
std::vector<TermMap> FindApplicableTgdHomomorphisms(const ConjunctiveQuery& q,
                                                    const Tgd& tgd);

/// First applicable homomorphism, or nullopt.
std::optional<TermMap> FindApplicableTgdHomomorphism(const ConjunctiveQuery& q,
                                                     const Tgd& tgd);

/// The atoms a tgd step with homomorphism `h` conjoins to the body: head
/// atoms under h with existential variables freshly renamed. The fresh
/// renaming used is written to `out_fresh` when non-null.
std::vector<Atom> InstantiateTgdHead(const Tgd& tgd, const TermMap& h,
                                     TermMap* out_fresh = nullptr);

/// Performs the tgd chase step Q ⇒σ Q′ for a given applicable `h`. Atoms
/// are appended; no duplicate elimination (semantics-specific normalization
/// is the caller's business — see sound_chase).
ConjunctiveQuery ApplyTgdStep(const ConjunctiveQuery& q, const Tgd& tgd, const TermMap& h);

/// One egd application opportunity.
struct EgdApplication {
  TermMap h;
  Term from;  ///< variable to replace (h of one equation side)
  Term to;    ///< replacement term
  bool failure = false;  ///< h equates two distinct constants
};

/// Finds an h making the egd applicable (h(U1) ≠ h(U2)). If every such h
/// equates two distinct constants, the first failing application is returned
/// with failure=true. Returns nullopt when the egd is satisfied.
std::optional<EgdApplication> FindEgdApplication(const ConjunctiveQuery& q, const Egd& egd);

/// Performs the egd chase step: replaces `app.from` by `app.to` everywhere
/// in Q (head and body). Requires !app.failure.
ConjunctiveQuery ApplyEgdStep(const ConjunctiveQuery& q, const EgdApplication& app);

/// True iff some chase step with `dep` applies to `q` (for an egd, a failing
/// application counts as applicable).
bool IsApplicable(const ConjunctiveQuery& q, const Dependency& dep);

}  // namespace sqleq

#endif  // SQLEQ_CHASE_CHASE_STEP_H_
