#include "chase/set_chase.h"

#include "chase/chase_internal.h"
#include "chase/chase_step.h"
#include "chase/chase_telemetry.h"
#include "chase/checkpoint.h"
#include "chase/flat_db.h"
#include "chase/sigma_plan.h"
#include "constraints/weak_acyclicity.h"
#include "util/fault.h"

namespace sqleq {
namespace {

/// Appends only head-instance atoms not already present: under set
/// semantics duplicate atoms are redundant, and eager de-duplication keeps
/// chase results small. `flat`, when non-null, indexes q's body and replaces
/// the linear presence scan; atoms appended earlier in this same step are
/// checked separately so both paths see the same growing body.
ConjunctiveQuery ApplyTgdStepDeduped(const ConjunctiveQuery& q, const Tgd& tgd,
                                     const TermMap& h,
                                     const FlatConjunction* flat) {
  std::vector<Atom> body = q.body();
  size_t old_size = body.size();
  for (Atom& a : InstantiateTgdHead(tgd, h)) {
    bool present = false;
    if (flat != nullptr) {
      present = flat->ContainsAtom(a);
      for (size_t i = old_size; !present && i < body.size(); ++i) {
        present = body[i] == a;
      }
    } else {
      for (const Atom& existing : body) {
        if (existing == a) {
          present = true;
          break;
        }
      }
    }
    if (!present) body.push_back(std::move(a));
  }
  return q.WithBody(std::move(body));
}

/// Captures the loop state into `runtime.checkpoint_out` (when requested and
/// the stop is resumable) and propagates `status`.
Status StopChase(Status status, const ChaseOutcome& out, size_t steps_done,
                 const char* phase, const ChaseRuntime& runtime) {
  if (runtime.checkpoint_out != nullptr && IsAnytimeStop(status)) {
    *runtime.checkpoint_out =
        ChaseCheckpoint{phase, /*subject=*/"", out.result, out.trace, steps_done};
  }
  return status;
}

}  // namespace

namespace chase_internal {

Result<ChaseOutcome> SetChaseWithPlan(const ConjunctiveQuery& q,
                                      const DependencySet& sigma,
                                      const SigmaPlan* plan,
                                      const ChaseOptions& options,
                                      const ChaseRuntime& runtime) {
  ChaseCounters counters(runtime.metrics);
  TraceSpan span(runtime.trace, "chase.set");
  ChaseOutcome out{q.CanonicalRepresentation(), {}, false};
  size_t start = 0;
  if (runtime.resume != nullptr &&
      runtime.resume->phase == ChaseCheckpoint::kSetChasePhase) {
    out.result = runtime.resume->state;
    out.trace = runtime.resume->trace;
    start = runtime.resume->steps_done;
  }
  const ResourceBudget& budget =
      runtime.budget != nullptr ? *runtime.budget : options.budget;
  FlatConjunction flat;
  for (size_t step = start; step < budget.max_chase_steps; ++step) {
    Status guard = budget.CheckDeadline("set chase");
    if (guard.ok()) {
      guard = ProbeSite(runtime.faults, runtime.cancel, fault_sites::kChaseStep);
    }
    if (!guard.ok()) {
      return StopChase(std::move(guard), out, step,
                       ChaseCheckpoint::kSetChasePhase, runtime);
    }
    if (plan != nullptr) flat.Rebuild(out.result.body());
    bool applied = false;
    // Egd pass.
    if (options.egds_first) {
      for (size_t di = 0; di < sigma.size(); ++di) {
        const Dependency& dep = sigma[di];
        if (!dep.IsEgd()) continue;
        std::optional<EgdApplication> app =
            plan != nullptr ? plan->FindEgdApplication(di, flat)
                            : FindEgdApplication(out.result, dep.egd());
        if (!app.has_value()) {
          counters.Satisfied();
          continue;
        }
        if (app->failure) {
          out.failed = true;
          out.trace.push_back({dep.label(), false, "FAIL: " + app->from.ToString() +
                                                       " = " + app->to.ToString()});
          return out;
        }
        out.result = ApplyEgdStep(out.result, *app).CanonicalRepresentation();
        out.trace.push_back({dep.label(), false, out.result.ToString()});
        counters.Fired(dep.label(), /*is_tgd=*/false);
        applied = true;
        break;
      }
      if (applied) continue;
    }
    for (size_t di = 0; di < sigma.size(); ++di) {
      const Dependency& dep = sigma[di];
      if (dep.IsTgd()) {
        std::optional<TermMap> h =
            plan != nullptr ? plan->FindApplicableTgdHomomorphism(di, flat)
                            : FindApplicableTgdHomomorphism(out.result, dep.tgd());
        if (!h.has_value()) {
          counters.Satisfied();
          continue;
        }
        out.result = ApplyTgdStepDeduped(out.result, dep.tgd(), *h,
                                         plan != nullptr ? &flat : nullptr);
        out.trace.push_back({dep.label(), true, out.result.ToString()});
        counters.Fired(dep.label(), /*is_tgd=*/true);
        applied = true;
        break;
      }
      if (!options.egds_first) {
        std::optional<EgdApplication> app =
            plan != nullptr ? plan->FindEgdApplication(di, flat)
                            : FindEgdApplication(out.result, dep.egd());
        if (!app.has_value()) {
          counters.Satisfied();
          continue;
        }
        if (app->failure) {
          out.failed = true;
          out.trace.push_back({dep.label(), false, "FAIL: " + app->from.ToString() +
                                                       " = " + app->to.ToString()});
          return out;
        }
        out.result = ApplyEgdStep(out.result, *app).CanonicalRepresentation();
        out.trace.push_back({dep.label(), false, out.result.ToString()});
        counters.Fired(dep.label(), /*is_tgd=*/false);
        applied = true;
        break;
      }
    }
    if (!applied) return out;  // D(result) |= Σ — terminal.
  }
  std::string message = "set chase exceeded " +
                        std::to_string(budget.max_chase_steps) +
                        " steps (ResourceBudget::max_chase_steps); ";
  message += IsWeaklyAcyclic(sigma)
                 ? "Σ is weakly acyclic, so raising the budget will "
                   "terminate (Thm H.1)"
                 : "Σ is NOT weakly acyclic — the chase may diverge";
  return StopChase(Status::ResourceExhausted(std::move(message)), out,
                   budget.max_chase_steps,
                   ChaseCheckpoint::kSetChasePhase, runtime);
}

}  // namespace chase_internal

Result<ChaseOutcome> SetChase(const ConjunctiveQuery& q, const DependencySet& sigma,
                              const ChaseOptions& options,
                              const ChaseRuntime& runtime) {
  if (options.use_compiled_kernels) {
    // Per-call adapter: compile a throwaway plan. Callers with a fixed Σ
    // should hold a ChasePlan instead and pay this once.
    SigmaPlan plan = SigmaPlan::Compile(sigma);
    return chase_internal::SetChaseWithPlan(q, sigma, &plan, options, runtime);
  }
  return chase_internal::SetChaseWithPlan(q, sigma, nullptr, options, runtime);
}

Result<bool> SetChaseTerminates(const ConjunctiveQuery& q, const DependencySet& sigma,
                                const ChaseOptions& options) {
  Result<ChaseOutcome> r = SetChase(q, sigma, options);
  if (r.ok()) return true;
  if (r.status().code() == StatusCode::kResourceExhausted) return false;
  return r.status();
}

}  // namespace sqleq
