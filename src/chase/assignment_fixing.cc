#include "chase/assignment_fixing.h"

#include <set>
#include <unordered_set>

#include "chase/chase_internal.h"
#include "chase/chase_step.h"
#include "constraints/keys.h"

namespace sqleq {

AssociatedTestQuery BuildAssociatedTestQuery(const ConjunctiveQuery& q, const Tgd& tgd,
                                             const TermMap& h) {
  AssociatedTestQuery out{q, {}};
  std::vector<Term> existentials = tgd.ExistentialVariables();

  // First copy: ψ(h(X̄), Z̄) with Z̄ fresh.
  TermMap first = h;
  for (Term z : existentials) {
    first.emplace(z, Term::FreshVar(std::string(z.name())));
  }
  // Second copy: ψ(h(X̄), θ(Z̄)) with θ(Z̄) fresh and disjoint.
  TermMap second = h;
  for (Term z : existentials) {
    second.emplace(z, Term::FreshVar(std::string(z.name()) + "t"));
  }

  std::vector<Atom> body = q.body();
  for (const Atom& a : ApplyTermMap(first, tgd.head())) body.push_back(a);
  if (!existentials.empty()) {
    for (const Atom& a : ApplyTermMap(second, tgd.head())) body.push_back(a);
  }
  for (Term z : existentials) {
    out.existential_pairs.emplace_back(first.at(z), second.at(z));
  }
  out.query = q.WithBody(std::move(body)).WithName(q.name() + "_test");
  return out;
}

Result<bool> IsAssignmentFixing(const ConjunctiveQuery& q, const Tgd& tgd,
                                const TermMap& h, const DependencySet& sigma,
                                const ChaseOptions& options, const SigmaPlan* plan) {
  if (tgd.IsFull()) return true;  // Prop 4.3.
  AssociatedTestQuery test = BuildAssociatedTestQuery(q, tgd, h);
  SQLEQ_ASSIGN_OR_RETURN(
      ChaseOutcome chased,
      plan != nullptr
          ? chase_internal::SetChaseWithPlan(test.query, sigma, plan, options, {})
          : SetChase(test.query, sigma, options));
  if (chased.failed) {
    // Chase failure: Q^{σ,h,θ} is unsatisfiable under Σ; no database can
    // witness a multiplicity blow-up, so the step fixes assignments
    // vacuously. (Does not arise in the paper's examples.)
    return true;
  }
  std::unordered_set<Term, TermHash> vars;
  for (Term v : chased.result.BodyVariables()) vars.insert(v);
  for (const auto& [z, theta_z] : test.existential_pairs) {
    if (vars.count(z) > 0 && vars.count(theta_z) > 0) return false;
  }
  return true;
}

Result<bool> IsAssignmentFixingForQuery(const ConjunctiveQuery& q, const Tgd& tgd,
                                        const DependencySet& sigma,
                                        const ChaseOptions& options) {
  std::vector<TermMap> hs = FindApplicableTgdHomomorphisms(q, tgd);
  for (const TermMap& h : hs) {
    SQLEQ_ASSIGN_OR_RETURN(bool fixing, IsAssignmentFixing(q, tgd, h, sigma, options));
    if (fixing) return true;
  }
  return false;
}

bool IsKeyBased(const Tgd& tgd, const DependencySet& sigma, const Schema& schema,
                bool require_set_valued) {
  std::vector<Fd> fds = ExtractFds(sigma);
  std::unordered_set<Term, TermHash> existential;
  for (Term z : tgd.ExistentialVariables()) existential.insert(z);
  for (const Atom& head_atom : tgd.head()) {
    if (require_set_valued && !schema.IsSetValued(head_atom.predicate())) return false;
    std::set<size_t> universal_positions;
    for (size_t i = 0; i < head_atom.arity(); ++i) {
      Term t = head_atom.args()[i];
      if (t.IsConstant() || existential.count(t) == 0) universal_positions.insert(i);
    }
    if (!IsSuperkey(head_atom.predicate(), head_atom.arity(), universal_positions,
                    fds)) {
      return false;
    }
  }
  return true;
}

}  // namespace sqleq
