// Sound chase under bag and bag-set semantics (§4.2.3, Theorems 4.1 and
// 4.3): only chase steps that preserve Q ≡Σ,B / ≡Σ,BS are applied.
//
//   * Under B: a tgd step is sound iff it is assignment-fixing AND every
//     subgoal it adds belongs to a relation that is set valued in all
//     instances; egd steps are always sound, and duplicate subgoals may be
//     dropped only for set-valued relations.
//   * Under BS: a tgd step is sound iff it is assignment-fixing; egd steps
//     are always sound and duplicate subgoals are semantically inert.
//
// The result exists, is reached in finite time whenever set chase of Q
// terminates (Prop 5.1), and is unique up to the semantics' equivalence
// (Thm 5.1 / G.1).
#ifndef SQLEQ_CHASE_SOUND_CHASE_H_
#define SQLEQ_CHASE_SOUND_CHASE_H_

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// Drops duplicate body atoms whose relation is set valued in `schema`
/// (sound under B by Thm 4.2); duplicates over bag-valued relations are
/// kept — they carry multiplicity.
ConjunctiveQuery NormalizeForBag(const ConjunctiveQuery& q, const Schema& schema);

/// Computes the sound chase result (Q)Σ,X for X ∈ {S, B, BS}. Σ is
/// regularized internally (Prop 4.1 makes this lossless); kSet dispatches to
/// SetChase. `schema` supplies the set-valued flags consulted under kBag
/// (ignored under kSet/kBagSet). Fails with ResourceExhausted when set
/// chase does not terminate within the step budget — the precondition of
/// every theorem this implements. `runtime` carries the per-call anytime
/// hooks (fault sites, cancellation, checkpoint capture/resume — see
/// chase/checkpoint.h); the checkpoint phase distinguishes the set-chase
/// precondition probe from the sound-chase loop proper, so a resume skips
/// whatever already completed.
Result<ChaseOutcome> SoundChase(const ConjunctiveQuery& q, const DependencySet& sigma,
                                Semantics semantics, const Schema& schema,
                                const ChaseOptions& options = {},
                                const ChaseRuntime& runtime = {});

/// How a dependency relates to a query for the purposes of Algorithms 1–2.
enum class StepAvailability {
  kNotApplicable,    ///< no chase step with σ applies — D(Q) |= σ.
  kSoundApplicable,  ///< some applicable step is sound under the semantics.
  kUnsoundOnly,      ///< applicable, but every applicable step is unsound.
};

/// Classifies σ against `q` under `semantics` (Thms 4.1/4.3). Under kSet
/// every applicable step is sound.
Result<StepAvailability> ClassifyStep(const ConjunctiveQuery& q, const Dependency& dep,
                                      const DependencySet& sigma, Semantics semantics,
                                      const Schema& schema,
                                      const ChaseOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_CHASE_SOUND_CHASE_H_
