#include "chase/pattern.h"

#include <span>
#include <unordered_set>

namespace sqleq {

CompiledPattern::CompiledPattern(std::span<const Atom> from) {
  atoms_.reserve(from.size());
  size_t total_args = 0;
  for (const Atom& a : from) total_args += a.arity();
  args_.reserve(total_args);
  for (const Atom& a : from) {
    PatternAtom pa;
    pa.pred = InternPredicate(a.predicate());
    pa.arity = static_cast<uint32_t>(a.arity());
    pa.first_arg = static_cast<uint32_t>(args_.size());
    atoms_.push_back(pa);
    for (Term t : a.args()) {
      Arg arg{t, -1};
      if (t.IsVariable()) {
        // Dependency bodies have a handful of variables; a linear scan
        // beats hashing at this size and keeps slot order = first
        // appearance, which the matcher's emission contract relies on.
        int32_t slot = -1;
        for (size_t s = 0; s < slot_vars_.size(); ++s) {
          if (slot_vars_[s] == t) {
            slot = static_cast<int32_t>(s);
            break;
          }
        }
        if (slot < 0) {
          slot = static_cast<int32_t>(slot_vars_.size());
          slot_vars_.push_back(t);
        }
        arg.slot = slot;
      }
      args_.push_back(arg);
    }
  }
}

namespace {

struct BindingVectorHash {
  size_t operator()(const std::vector<Term>& v) const {
    size_t h = 1469598103934665603ULL;
    for (Term t : v) h = (h ^ t.Hash()) * 1099511628211ULL;
    return h;
  }
};

/// Hash-join emulation of the legacy backtracking search; see the
/// enumeration contract in pattern.h.
class PatternMatcher {
 public:
  PatternMatcher(const CompiledPattern& pat, const FlatConjunction& to,
                 const TermMap& fixed, FunctionRef<bool(const TermMap&)> fn)
      : pat_(pat), to_(to), fixed_(fixed), fn_(fn) {}

  bool Run() {
    binding_.assign(pat_.n_slots(), Term());
    bound_.assign(pat_.n_slots(), 0);
    used_.assign(pat_.n_atoms(), 0);
    for (size_t s = 0; s < pat_.n_slots(); ++s) {
      auto it = fixed_.find(pat_.slot_vars()[s]);
      if (it != fixed_.end()) {
        binding_[s] = it->second;
        bound_[s] = 1;
      }
    }
    return Recurse(0);
  }

 private:
  size_t PickNextAtom() const {
    size_t best = pat_.n_atoms();
    long best_score = -1;
    for (size_t i = 0; i < pat_.n_atoms(); ++i) {
      if (used_[i] != 0) continue;
      const CompiledPattern::PatternAtom& pa = pat_.atoms()[i];
      long n_targets = static_cast<long>(to_.CountForPredicate(pa.pred));
      long bound = 0;
      for (uint32_t c = 0; c < pa.arity; ++c) {
        const CompiledPattern::Arg& arg = pat_.args()[pa.first_arg + c];
        if (arg.slot < 0 || bound_[static_cast<size_t>(arg.slot)] != 0) ++bound;
      }
      long score = n_targets * 64 - bound;
      if (best == pat_.n_atoms() || score < best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }

  bool Recurse(size_t depth) {
    if (depth == pat_.n_atoms()) {
      if (!emitted_.insert(binding_).second) return true;
      TermMap out = fixed_;
      for (size_t s = 0; s < pat_.n_slots(); ++s) {
        out.insert_or_assign(pat_.slot_vars()[s], binding_[s]);
      }
      return fn_(out);
    }
    size_t idx = PickNextAtom();
    used_[idx] = 1;
    bool keep_going = true;
    const CompiledPattern::PatternAtom& pa = pat_.atoms()[idx];
    const FlatConjunction::Block* blk = to_.FindBlock(pa.pred, pa.arity);
    if (blk != nullptr) {
      // Probe the sparsest index among bound argument columns; posting lists
      // are ascending, so candidate order stays conjunction order.
      bool probed = false;
      std::span<const uint32_t> candidates;
      for (uint32_t c = 0; c < pa.arity; ++c) {
        const CompiledPattern::Arg& arg = pat_.args()[pa.first_arg + c];
        Term probe;
        if (arg.slot < 0) {
          probe = arg.term;
        } else if (bound_[static_cast<size_t>(arg.slot)] != 0) {
          probe = binding_[static_cast<size_t>(arg.slot)];
        } else {
          continue;
        }
        std::span<const uint32_t> postings = blk->Postings(c, probe);
        if (postings.empty()) {
          probed = true;
          candidates = {};
          break;
        }
        if (!probed || postings.size() < candidates.size()) {
          probed = true;
          candidates = postings;
        }
      }
      size_t n_cand = probed ? candidates.size() : blk->rows;
      // Bindings made for this row go on the shared trail; unwinding to the
      // mark undoes them. One growing buffer for the whole search instead of
      // a heap-allocated vector per recursion node.
      size_t trail_mark = trail_.size();
      for (size_t k = 0; k < n_cand; ++k) {
        uint32_t row = probed ? candidates[k] : static_cast<uint32_t>(k);
        bool match = true;
        for (uint32_t c = 0; c < pa.arity; ++c) {
          const CompiledPattern::Arg& arg = pat_.args()[pa.first_arg + c];
          Term val = blk->cols[c][row];
          if (arg.slot < 0) {
            if (arg.term != val) {
              match = false;
              break;
            }
            continue;
          }
          size_t s = static_cast<size_t>(arg.slot);
          if (bound_[s] != 0) {
            if (binding_[s] != val) {
              match = false;
              break;
            }
          } else {
            binding_[s] = val;
            bound_[s] = 1;
            trail_.push_back(arg.slot);
          }
        }
        if (match) keep_going = Recurse(depth + 1);
        while (trail_.size() > trail_mark) {
          bound_[static_cast<size_t>(trail_.back())] = 0;
          trail_.pop_back();
        }
        if (!keep_going) break;
      }
    }
    used_[idx] = 0;
    return keep_going;
  }

  const CompiledPattern& pat_;
  const FlatConjunction& to_;
  const TermMap& fixed_;
  FunctionRef<bool(const TermMap&)> fn_;
  std::vector<Term> binding_;
  std::vector<uint8_t> bound_;
  std::vector<uint8_t> used_;
  std::vector<int32_t> trail_;
  std::unordered_set<std::vector<Term>, BindingVectorHash> emitted_;
};

}  // namespace

bool MatchPattern(const CompiledPattern& pattern, const FlatConjunction& to,
                  const TermMap& fixed, FunctionRef<bool(const TermMap&)> fn) {
  PatternMatcher matcher(pattern, to, fixed, fn);
  return matcher.Run();
}

bool PatternMatchExists(const CompiledPattern& pattern, const FlatConjunction& to,
                        const TermMap& fixed) {
  bool found = false;
  MatchPattern(pattern, to, fixed, [&found](const TermMap&) {
    found = true;
    return false;
  });
  return found;
}

}  // namespace sqleq
