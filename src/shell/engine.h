// ScriptEngine: the command interpreter behind the sqleq CLI. A script is a
// ';'-separated sequence of statements:
//
//   CREATE TABLE t (...);            -- DDL (keys/fks induce Σ)
//   INSERT INTO t VALUES (...);      -- data
//   DEP p(X, Y) -> r(X);             -- extra dependency (Datalog syntax)
//   VIEW v(X) :- p(X, Y);            -- register a view (Datalog syntax)
//   QUERY q1 := SELECT ... ;         -- define a query from SQL
//   QUERY q2 :- p(X, Y);             -- ... or directly in Datalog (name from head)
//   EVAL q1;                         -- evaluate on the loaded data
//   EQUIV q1 q2 [UNDER S|B|BS];      -- equivalence under Σ
//   EXPLAIN q1 q2 [UNDER S|B|BS];    -- ... with chase traces and witnesses
//   EXPLAIN SLICE q1;                -- Σ-slice + termination certificate for q1
//   MINIMIZE q1 [UNDER S|B|BS];      -- C&B reformulations, rendered as SQL
//   REWRITE q1 [UNDER S|B|BS];       -- rewritings over the registered views
//   LINT [STRICT];                   -- Σ-lint the session (STRICT: warnings err)
//   SET THREADS n;                   -- backchase worker threads
//   SET BUDGET <steps> <candidates>; -- chase-step / candidate limits
//   SET BUDGET AUTO;                 -- chase-step limit from the termination
//                                    --   certificate's static bound
//   SET RETRY n [growth] | OFF;      -- escalating-budget retries on exhaustion
//   SHOW SCHEMA | SIGMA | QUERIES | DATA | BUDGET | STATS;
//   TRACE ON | OFF | EXPORT <file>;  -- chase-span tracing (Chrome trace JSON)
//   CONNECT <host> <port>;           -- attach to a sqleqd daemon
//   CONNECT <fleet-spec>;            -- ... or a whole fleet ("a=h:p,b=h:p")
//   DISCONNECT;                      -- detach
//   WORKLOAD GEN <tmpl> <n> <olap> [SEED s];  -- synthesize a CQ corpus
//   WORKLOAD REPLAY;                 -- replay it through a semantic cache
//   CACHE STATS;                     -- cache counters of the last replay
//   ADVISE VIEWS;                    -- Σ-cluster the corpus, advise rewrites
//
// While connected, the session catalog is uploaded once and kept in sync
// (CREATE TABLE / DEP are mirrored), and EQUIV / MINIMIZE execute on the
// daemon — sharing its process-lifetime chase memo — instead of in-process
// (docs/service.md). EXPLAIN, REWRITE, and EVAL stay local.
//
// SHOW STATS prints the session's accumulated engine metrics (chase steps,
// memo hits, backchase counters — see docs/observability.md); TRACE ON
// records spans for subsequent EQUIV/MINIMIZE/REWRITE statements and TRACE
// EXPORT writes them as chrome://tracing / Perfetto JSON.
//
// "--" starts a line comment (outside quoted literals). Each statement
// returns printable output; errors are Status values (the engine state is
// unchanged by a failed statement).
#ifndef SQLEQ_SHELL_ENGINE_H_
#define SQLEQ_SHELL_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "db/database.h"
#include "db/eval.h"
#include "reformulation/views.h"
#include "sql/translate.h"
#include "util/engine_context.h"
#include "util/resource_budget.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace sqleq {

class CancellationToken;

namespace service {
class FleetClient;
}  // namespace service

namespace workload {
struct Workload;
}  // namespace workload

namespace cache {
class SemanticCache;
}  // namespace cache

namespace shell {

/// A named query with the evaluation semantics it was defined under.
struct NamedQuery {
  ConjunctiveQuery query;
  Semantics semantics = Semantics::kBagSet;
};

class ScriptEngine {
 public:
  ScriptEngine();
  ~ScriptEngine();
  ScriptEngine(const ScriptEngine&) = delete;
  ScriptEngine& operator=(const ScriptEngine&) = delete;

  /// Executes one statement (no trailing ';'), returning its output text.
  Result<std::string> Execute(std::string_view statement);

  /// Executes a ';'-separated script, concatenating outputs; stops at the
  /// first error.
  Result<std::string> Run(std::string_view script);

  const sql::Catalog& catalog() const { return catalog_; }
  const Database& database() const { return database_; }
  const ViewSet& views() const { return views_; }
  /// The budget SET THREADS / SET BUDGET configure; applied to every EQUIV,
  /// EXPLAIN, MINIMIZE, and REWRITE statement.
  const ResourceBudget& budget() const { return budget_; }
  /// The SET RETRY policy (nullopt = retries off, the default).
  const std::optional<EscalatingBudget>& retry() const { return retry_; }
  /// Cooperative cancellation for EQUIV/MINIMIZE/REWRITE: when set (may be
  /// null), the token is checked at every chase step and backchase
  /// candidate; a cancelled statement returns a partial result annotated
  /// "(incomplete: cancelled ...)". The token must outlive the engine or be
  /// cleared with set_cancellation(nullptr).
  void set_cancellation(CancellationToken* cancel) { cancel_ = cancel; }
  Result<NamedQuery> GetQuery(const std::string& name) const;
  /// Session-lifetime engine metrics (what SHOW STATS prints).
  const MetricsRegistry& metrics() const { return metrics_; }
  /// The span sink TRACE ON feeds (empty until tracing is enabled).
  const TraceSink& trace() const { return trace_; }
  bool tracing() const { return tracing_; }
  /// Programmatic TRACE ON/OFF (what sqleq_cli --trace-out uses).
  void set_tracing(bool on) { tracing_ = on; }
  /// True between a successful CONNECT and DISCONNECT (or a remote failure
  /// that dropped the link).
  bool connected() const { return remote_ != nullptr; }

 private:
  Result<std::string> ExecCreate(std::string_view statement);
  Result<std::string> ExecInsert(std::string_view statement);
  Result<std::string> ExecDep(std::string_view rest);
  Result<std::string> ExecView(std::string_view rest);
  Result<std::string> ExecQuery(std::string_view rest);
  Result<std::string> ExecEval(std::string_view rest);
  Result<std::string> ExecEquiv(std::string_view rest, bool explain);
  /// EXPLAIN SLICE <query>: which dependencies the Σ-slice keeps/prunes for
  /// the query, why each pruned one can never fire, and the termination
  /// certificate with its static chase-step bound.
  Result<std::string> ExecExplainSlice(std::string_view rest);
  Result<std::string> ExecMinimize(std::string_view rest);
  Result<std::string> ExecRewrite(std::string_view rest);
  Result<std::string> ExecLint(std::string_view rest);
  Result<std::string> ExecSet(std::string_view rest);
  Result<std::string> ExecShow(std::string_view rest);
  Result<std::string> ExecTrace(std::string_view rest);
  Result<std::string> ExecConnect(std::string_view rest);
  Result<std::string> ExecDisconnect(std::string_view rest);
  /// WORKLOAD GEN / WORKLOAD REPLAY (docs/workload.md): corpus synthesis
  /// and a cold semantic-cache replay reporting measured-vs-ground-truth
  /// hit rates.
  Result<std::string> ExecWorkload(std::string_view rest);
  /// CACHE STATS: the SemanticCache counters of the last WORKLOAD REPLAY.
  Result<std::string> ExecCacheStats(std::string_view rest);
  /// ADVISE VIEWS: Σ-equivalence clustering + C&B representative rewrites
  /// with projected cost savings over the generated corpus.
  Result<std::string> ExecAdvise(std::string_view rest);

  /// Remote execution paths for EQUIV / MINIMIZE while connected.
  Result<std::string> RemoteEquiv(const std::string& n1, const NamedQuery& a,
                                  const std::string& n2, const NamedQuery& b,
                                  Semantics sem);
  Result<std::string> RemoteMinimize(const std::string& name, const NamedQuery& named,
                                     Semantics sem);
  /// Replays a catalog mutation (CREATE TABLE / DEP) on the daemon. A
  /// remote failure drops the connection — the two catalogs can no longer
  /// be assumed in sync — and returns the error.
  Status MirrorToRemote(const std::string& request_line);

  /// The per-call environment EQUIV/MINIMIZE/REWRITE run under: the SET
  /// budget, the session metrics, the trace sink when TRACE is ON, and the
  /// caller's cancellation token.
  EngineContext Context();

  /// Splits "a b UNDER B" into names and an optional semantics override.
  Result<std::pair<std::vector<std::string>, std::optional<Semantics>>> ParseArgs(
      std::string_view rest) const;

  sql::Catalog catalog_;
  Database database_{Schema()};
  ViewSet views_;
  std::map<std::string, NamedQuery> queries_;
  ResourceBudget budget_;
  std::optional<EscalatingBudget> retry_;
  CancellationToken* cancel_ = nullptr;
  MetricsRegistry metrics_;
  TraceSink trace_;
  bool tracing_ = false;
  int dep_counter_ = 0;
  std::unique_ptr<service::FleetClient> remote_;
  std::string remote_name_;  ///< "host:port" or fleet spec, for output lines
  /// WORKLOAD GEN's corpus and the cache of the last WORKLOAD REPLAY.
  std::unique_ptr<workload::Workload> workload_;
  std::unique_ptr<cache::SemanticCache> cache_;
};

}  // namespace shell
}  // namespace sqleq

#endif  // SQLEQ_SHELL_ENGINE_H_
