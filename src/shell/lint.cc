#include "shell/lint.h"

#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "constraints/dependency.h"
#include "ir/parser.h"
#include "ir/query.h"
#include "sql/sql_parser.h"
#include "sql/translate.h"
#include "util/string_util.h"
#include "util/telemetry.h"

namespace sqleq {
namespace shell {
namespace {

/// First whitespace-delimited word of `s`, and the remainder.
std::pair<std::string, std::string_view> SplitKeyword(std::string_view s) {
  s = Trim(s);
  size_t i = 0;
  while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return {std::string(s.substr(0, i)), Trim(s.substr(i))};
}

bool IsSemanticsName(std::string_view name) {
  return EqualsIgnoreCase(name, "S") || EqualsIgnoreCase(name, "SET") ||
         EqualsIgnoreCase(name, "B") || EqualsIgnoreCase(name, "BAG") ||
         EqualsIgnoreCase(name, "BS") || EqualsIgnoreCase(name, "BAGSET");
}

/// Everything the lenient replay of the declaration statements accumulates.
struct ScriptState {
  sql::Catalog catalog;
  std::vector<ParsedQueryParts> queries;   // QUERY + VIEW definitions, in order
  std::set<std::string> known_names;       // names EVAL/EQUIV/... may reference
  size_t views = 0;
  int dep_counter = 0;
  AnalysisReport report;
  MetricsRegistry* metrics = nullptr;  // analysis.diag.<code> counters
};

void Emit(ScriptState* st, std::string code, Severity severity, std::string subject,
          std::string message, std::string fix_hint = "") {
  if (st->metrics != nullptr) {
    st->metrics->counter(metric::kAnalysisDiagPrefix + code).Add();
  }
  st->report.diagnostics.push_back(Diagnostic{std::move(code), severity,
                                              std::move(message), std::move(subject),
                                              std::move(fix_hint)});
}

std::string StatementSubject(size_t number, const std::string& keyword) {
  return "statement " + std::to_string(number) + " (" + keyword + ")";
}

/// Extracts the referenced names from "a b UNDER BS"-shaped arguments.
/// Reports a parse-error for an unknown semantics token; returns the names.
std::vector<std::string> ArgNames(ScriptState* st, const std::string& subject,
                                  std::string_view rest) {
  std::vector<std::string> names;
  std::string_view remaining = Trim(rest);
  while (!remaining.empty()) {
    auto [word, tail] = SplitKeyword(remaining);
    if (EqualsIgnoreCase(word, "UNDER")) {
      auto [sem, tail2] = SplitKeyword(tail);
      if (!IsSemanticsName(sem)) {
        Emit(st, "parse-error", Severity::kError, subject,
             "unknown semantics '" + sem + "'", "use UNDER S, B, or BS");
      }
      remaining = tail2;
      continue;
    }
    names.push_back(word);
    remaining = tail;
  }
  return names;
}

void CheckReferences(ScriptState* st, const std::string& subject,
                     std::string_view rest, size_t expected, const char* usage) {
  std::vector<std::string> names = ArgNames(st, subject, rest);
  if (names.size() != expected) {
    Emit(st, "parse-error", Severity::kError, subject,
         "expected " + std::to_string(expected) + " query name(s), got " +
             std::to_string(names.size()),
         usage);
    return;
  }
  for (const std::string& name : names) {
    if (st->known_names.count(name) == 0) {
      Emit(st, "unknown-query", Severity::kError, subject,
           "'" + name + "' is not defined by any QUERY or VIEW statement",
           "define it earlier in the script with QUERY or VIEW");
    }
  }
}

void LintCreate(ScriptState* st, const std::string& subject,
                std::string_view statement) {
  Result<sql::CreateTableStatement> stmt = sql::ParseCreateTable(statement);
  if (!stmt.ok()) {
    Emit(st, "parse-error", Severity::kError, subject,
         std::string(stmt.status().message()));
    return;
  }
  Status applied = sql::ApplyCreateTable(*stmt, &st->catalog);
  if (!applied.ok()) {
    Emit(st, "parse-error", Severity::kError, subject,
         std::string(applied.message()));
  }
}

void LintInsert(ScriptState* st, const std::string& subject,
                std::string_view statement) {
  Result<sql::InsertStatement> stmt = sql::ParseInsert(statement);
  if (!stmt.ok()) {
    Emit(st, "parse-error", Severity::kError, subject,
         std::string(stmt.status().message()));
    return;
  }
  // The linter loads no data; only the table reference and row widths are
  // checked here.
  if (!st->catalog.schema.HasRelation(stmt->table)) {
    Emit(st, "unknown-relation", Severity::kError, subject,
         "INSERT into '" + stmt->table + "', which no CREATE TABLE declares",
         "add a CREATE TABLE " + stmt->table + " statement first");
    return;
  }
  size_t arity = st->catalog.schema.ArityOf(stmt->table);
  for (const auto& row : stmt->rows) {
    if (row.size() != arity) {
      Emit(st, "arity-mismatch", Severity::kError, subject,
           "row of width " + std::to_string(row.size()) + " inserted into '" +
               stmt->table + "' of arity " + std::to_string(arity));
    }
  }
}

void LintDep(ScriptState* st, const std::string& subject, std::string_view rest) {
  Result<std::vector<Dependency>> deps =
      ParseDependency(rest, "user" + std::to_string(++st->dep_counter));
  if (!deps.ok()) {
    Emit(st, "parse-error", Severity::kError, subject,
         std::string(deps.status().message()));
    return;
  }
  for (Dependency& dep : *deps) st->catalog.sigma.push_back(std::move(dep));
}

void LintQueryDefinition(ScriptState* st, const std::string& subject,
                         std::string_view rest, bool is_view) {
  rest = Trim(rest);
  size_t assign = is_view ? std::string_view::npos : rest.find(":=");
  if (assign != std::string_view::npos) {
    // QUERY <name> := SELECT ...
    std::string name(Trim(rest.substr(0, assign)));
    if (name.empty()) {
      Emit(st, "parse-error", Severity::kError, subject,
           "query name may not be empty");
      return;
    }
    Result<sql::TranslatedQuery> translated =
        sql::TranslateSql(Trim(rest.substr(assign + 2)), st->catalog, name);
    if (!translated.ok()) {
      Emit(st, "parse-error", Severity::kError, subject,
           std::string(translated.status().message()));
      return;
    }
    if (translated->is_aggregate) {
      Emit(st, "parse-error", Severity::kError, subject,
           "aggregate queries are not supported in QUERY",
           "use the AggregateCandB API directly");
      return;
    }
    st->queries.push_back(ParsedQueryParts{name, translated->cq->head(),
                                           translated->cq->body()});
    st->known_names.insert(name);
    return;
  }
  // Datalog text; the lenient parse keeps unsafe heads and empty bodies for
  // the analyzer to diagnose instead of dying here.
  Result<ParsedQueryParts> parts = ParseQueryParts(rest);
  if (!parts.ok()) {
    Emit(st, "parse-error", Severity::kError, subject,
         std::string(parts.status().message()));
    return;
  }
  if (parts->name.empty()) {
    Emit(st, "parse-error", Severity::kError, subject,
         "query name may not be empty");
    return;
  }
  st->known_names.insert(parts->name);
  if (is_view) ++st->views;
  st->queries.push_back(*std::move(parts));
}

void LintSet(ScriptState* st, const std::string& subject, std::string_view rest) {
  auto [what, tail] = SplitKeyword(rest);
  (void)tail;
  if (!EqualsIgnoreCase(what, "THREADS") && !EqualsIgnoreCase(what, "BUDGET")) {
    Emit(st, "parse-error", Severity::kError, subject,
         "unknown SET target '" + what + "'",
         "use SET THREADS <n> or SET BUDGET <chase-steps> <candidates>");
  }
}

void LintShow(ScriptState* st, const std::string& subject, std::string_view rest) {
  auto [what, tail] = SplitKeyword(rest);
  bool known = EqualsIgnoreCase(what, "SCHEMA") || EqualsIgnoreCase(what, "SIGMA") ||
               EqualsIgnoreCase(what, "QUERIES") || EqualsIgnoreCase(what, "DATA") ||
               EqualsIgnoreCase(what, "BUDGET");
  if (!known || !Trim(tail).empty()) {
    Emit(st, "parse-error", Severity::kError, subject,
         "usage: SHOW SCHEMA|SIGMA|QUERIES|DATA|BUDGET");
  }
}

void LintStatement(ScriptState* st, size_t number, std::string_view statement) {
  auto [keyword, rest] = SplitKeyword(statement);
  const std::string subject = StatementSubject(number, keyword);
  if (EqualsIgnoreCase(keyword, "CREATE")) return LintCreate(st, subject, statement);
  if (EqualsIgnoreCase(keyword, "INSERT")) return LintInsert(st, subject, statement);
  if (EqualsIgnoreCase(keyword, "DEP")) return LintDep(st, subject, rest);
  if (EqualsIgnoreCase(keyword, "VIEW")) {
    return LintQueryDefinition(st, subject, rest, /*is_view=*/true);
  }
  if (EqualsIgnoreCase(keyword, "QUERY")) {
    return LintQueryDefinition(st, subject, rest, /*is_view=*/false);
  }
  if (EqualsIgnoreCase(keyword, "EVAL")) {
    return CheckReferences(st, subject, rest, 1, "usage: EVAL <query> [UNDER S|B|BS]");
  }
  if (EqualsIgnoreCase(keyword, "EQUIV") || EqualsIgnoreCase(keyword, "EXPLAIN")) {
    if (EqualsIgnoreCase(keyword, "EXPLAIN")) {
      auto [mode, tail] = SplitKeyword(rest);
      if (EqualsIgnoreCase(mode, "SLICE")) {
        // EXPLAIN SLICE <query> — one name, no semantics clause.
        return CheckReferences(st, subject, tail, 1,
                               "usage: EXPLAIN SLICE <query>");
      }
    }
    return CheckReferences(st, subject, rest, 2,
                           "usage: EQUIV|EXPLAIN <q1> <q2> [UNDER S|B|BS]");
  }
  if (EqualsIgnoreCase(keyword, "MINIMIZE")) {
    return CheckReferences(st, subject, rest, 1,
                           "usage: MINIMIZE <query> [UNDER S|B|BS]");
  }
  if (EqualsIgnoreCase(keyword, "REWRITE")) {
    if (st->views == 0) {
      Emit(st, "parse-error", Severity::kError, subject,
           "REWRITE with no views registered", "add VIEW statements first");
    }
    return CheckReferences(st, subject, rest, 1,
                           "usage: REWRITE <query> [UNDER S|B|BS]");
  }
  if (EqualsIgnoreCase(keyword, "LINT")) {
    auto [mode, tail] = SplitKeyword(rest);
    if ((!mode.empty() && !EqualsIgnoreCase(mode, "STRICT")) || !Trim(tail).empty()) {
      Emit(st, "parse-error", Severity::kError, subject, "usage: LINT [STRICT]");
    }
    return;
  }
  if (EqualsIgnoreCase(keyword, "SET")) return LintSet(st, subject, rest);
  if (EqualsIgnoreCase(keyword, "SHOW")) return LintShow(st, subject, rest);
  Emit(st, "parse-error", Severity::kError, subject,
       "unknown command '" + keyword + "'");
}

}  // namespace

std::string LintSummaryLine(const AnalysisReport& report) {
  return "lint: " + std::to_string(report.CountOf(Severity::kError)) +
         " error(s), " + std::to_string(report.CountOf(Severity::kWarning)) +
         " warning(s), " + std::to_string(report.CountOf(Severity::kInfo)) +
         " note(s)";
}

std::string LintResult::ToString() const {
  std::string out = report.ToString();
  if (!out.empty() && out.back() != '\n') out += '\n';
  out += LintSummaryLine(report) + "\n";
  return out;
}

LintResult LintScript(std::string_view script, const AnalyzeOptions& opts) {
  std::string stripped = StripLineComments(script);
  script = stripped;
  ScriptState state;
  state.metrics = opts.metrics;
  size_t number = 0;
  size_t start = 0;
  while (start <= script.size()) {
    size_t end = script.find(';', start);
    if (end == std::string_view::npos) end = script.size();
    std::string_view piece = Trim(script.substr(start, end - start));
    if (!piece.empty()) LintStatement(&state, ++number, piece);
    if (end == script.size()) break;
    start = end + 1;
  }

  state.report.Merge(AnalyzeDependencies(state.catalog.schema, state.catalog.sigma,
                                         opts));
  for (const ParsedQueryParts& q : state.queries) {
    state.report.Merge(AnalyzeQueryParts(state.catalog.schema, q.name, q.head,
                                         q.body, opts));
  }
  if (opts.check_slicing) {
    std::vector<QueryBodyRef> bodies;
    bodies.reserve(state.queries.size());
    for (const ParsedQueryParts& q : state.queries) {
      bodies.push_back(QueryBodyRef{q.name, q.body});
    }
    state.report.Merge(AnalyzeSigmaSlicing(state.catalog.schema,
                                           state.catalog.sigma, bodies, opts));
  }

  LintResult result;
  result.report = std::move(state.report);
  result.statements = number;
  return result;
}

}  // namespace shell
}  // namespace sqleq
