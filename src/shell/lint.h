// Script-level Σ-lint: statically checks a whole sqleq shell script (the
// statement language docs/shell.md describes) without executing it. No data
// is loaded, no chase-and-backchase runs — the linter replays only the
// declaration statements (CREATE TABLE, DEP, VIEW, QUERY) into an in-memory
// catalog, validates every reference the command statements make, and then
// runs the src/analysis analyzer over the accumulated (Schema, Σ, queries).
//
// On top of the analyzer's catalogue (docs/diagnostics.md), the script
// linter emits two codes of its own:
//   parse-error    error  a statement the shell would reject at parse time
//   unknown-query  error  EVAL/EQUIV/... names a query no QUERY defined
//
// Unlike ScriptEngine::Run, linting never stops at the first problem: a
// malformed statement becomes a diagnostic and the scan continues, so one
// pass reports everything. LintScript itself therefore never fails.
#ifndef SQLEQ_SHELL_LINT_H_
#define SQLEQ_SHELL_LINT_H_

#include <string>
#include <string_view>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"

namespace sqleq {
namespace shell {

/// The outcome of linting one script.
struct LintResult {
  AnalysisReport report;
  /// Non-empty statements examined (the linter never stops early).
  size_t statements = 0;

  bool HasErrors() const { return report.HasErrors(); }

  /// The report plus a "lint: N error(s), M warning(s), K note(s)" summary
  /// line — the exact text `LINT` and sqleq-lint print.
  std::string ToString() const;
};

/// Lints `script` (';'-separated statements). Statements are numbered from 1
/// in diagnostic subjects ("statement 3: DEP ...").
LintResult LintScript(std::string_view script,
                      const AnalyzeOptions& opts = AnalyzeOptions::Full());

/// Formats the summary line alone: "lint: N error(s), M warning(s), K note(s)".
std::string LintSummaryLine(const AnalysisReport& report);

}  // namespace shell
}  // namespace sqleq

#endif  // SQLEQ_SHELL_LINT_H_
