#include "shell/engine.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/sigma_graph.h"
#include "cache/semantic_cache.h"
#include "cache/view_advisor.h"
#include "equivalence/engine.h"
#include "equivalence/explain.h"
#include "ir/parser.h"
#include "reformulation/candb.h"
#include "service/fleet_client.h"
#include "service/protocol.h"
#include "service/routing.h"
#include "shell/lint.h"
#include "sql/render.h"
#include "sql/sql_parser.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace sqleq {
namespace shell {
namespace {

/// First whitespace-delimited word of `s`, and the remainder.
std::pair<std::string, std::string_view> SplitKeyword(std::string_view s) {
  s = Trim(s);
  size_t i = 0;
  while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return {std::string(s.substr(0, i)), Trim(s.substr(i))};
}

Result<Semantics> SemanticsFromName(std::string_view name) {
  if (EqualsIgnoreCase(name, "S") || EqualsIgnoreCase(name, "SET")) {
    return Semantics::kSet;
  }
  if (EqualsIgnoreCase(name, "B") || EqualsIgnoreCase(name, "BAG")) {
    return Semantics::kBag;
  }
  if (EqualsIgnoreCase(name, "BS") || EqualsIgnoreCase(name, "BAGSET")) {
    return Semantics::kBagSet;
  }
  return Status::InvalidArgument("unknown semantics '" + std::string(name) +
                                 "' (use S, B, or BS)");
}

Result<size_t> ParseCount(const std::string& word, const char* what) {
  if (word.empty()) {
    return Status::InvalidArgument(std::string("missing ") + what + " value");
  }
  size_t value = 0;
  for (char c : word) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(std::string(what) + " must be a positive integer, got '" +
                                     word + "'");
    }
    size_t digit = static_cast<size_t>(c - '0');
    if (value > (std::numeric_limits<size_t>::max() - digit) / 10) {
      return Status::InvalidArgument(std::string(what) + " value '" + word +
                                     "' overflows");
    }
    value = value * 10 + digit;
  }
  return value;
}

/// Parses the SET RETRY growth factor: a decimal number >= 1.
Result<double> ParseGrowth(const std::string& word) {
  if (word.empty()) return Status::InvalidArgument("missing RETRY growth value");
  for (char c : word) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.') {
      return Status::InvalidArgument("RETRY growth must be a number >= 1, got '" +
                                     word + "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(word.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("RETRY growth must be a number >= 1, got '" +
                                   word + "'");
  }
  if (value < 1.0) {
    return Status::InvalidArgument("RETRY growth must be >= 1, got '" + word + "'");
  }
  return value;
}

/// Renders the anytime-stop annotation for a partial result.
std::string IncompleteLine(const std::optional<ExhaustionInfo>& exhaustion) {
  return "  (incomplete: " +
         (exhaustion.has_value() ? exhaustion->ToString()
                                 : std::string("stopped early")) +
         ")\n";
}

/// Human-readable rendering of a metrics snapshot for SHOW STATS: counters
/// as `name = value`, histograms with count/mean/p95/max, in name order.
std::string RenderStats(const MetricsSnapshot& snap) {
  if (snap.counters.empty() && snap.histograms.empty()) {
    return "no stats recorded yet (run EQUIV, MINIMIZE, or REWRITE)\n";
  }
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += name + ": count=" + std::to_string(h.count) +
           " mean=" + std::to_string(static_cast<uint64_t>(h.Mean())) +
           " p95<=" + std::to_string(h.ApproxQuantile(0.95)) +
           " max=" + std::to_string(h.max) + "\n";
  }
  return out;
}

/// The shell's client robustness defaults (docs/robustness.md): bounded
/// dialing, a few retries with backoff on overloaded/draining responses, no
/// read deadline (an expensive check may legitimately run long; the server
/// bounds it via the request budget).
service::RetryPolicy ShellRetryPolicy() {
  service::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 50;
  policy.max_backoff_ms = 1000;
  policy.connect_timeout = std::chrono::milliseconds(2000);
  return policy;
}

/// One round-trip through the CONNECT fleet client (which pools, routes,
/// follows redirects, redials dropped connections, and backs off on
/// overloaded/draining servers). A response with "ok":false becomes a
/// Status carrying the server's error code and message, so remote failures
/// read like local ones.
Result<JsonValue> RemoteCall(service::FleetClient& client, const std::string& line) {
  SQLEQ_ASSIGN_OR_RETURN(JsonValue response, client.Call(line));
  const JsonValue* ok = response.Find("ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) {
    return Status::Internal("malformed response from server (missing \"ok\")");
  }
  if (!ok->boolean) {
    service::DecodedResponse decoded =
        service::DecodeResponseObject(std::move(response));
    std::string code = StatusCodeToString(decoded.error_code);
    std::string message = decoded.error_message.empty()
                              ? "server reported an error"
                              : decoded.error_message;
    return Status::FailedPrecondition("remote " + code + ": " + message);
  }
  return response;
}

/// RemoteCall for a RequestSpec (the v2 single-encoder path).
Result<JsonValue> RemoteCall(service::FleetClient& client,
                             const service::RequestSpec& spec) {
  SQLEQ_ASSIGN_OR_RETURN(std::string line, service::EncodeRequest(spec));
  return RemoteCall(client, line);
}

/// The string member `key` of a remote response, or "" when absent.
std::string ResponseString(const JsonValue& response, const char* key) {
  const JsonValue* v = response.Find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::string();
}

/// Reassembles the server's exhaustion object into an ExhaustionInfo so
/// remote partial results render exactly like local ones.
std::optional<ExhaustionInfo> ResponseExhaustion(const JsonValue& response) {
  const JsonValue* e = response.Find("exhaustion");
  if (e == nullptr || e->kind != JsonValue::Kind::kObject) return std::nullopt;
  ExhaustionInfo info;
  info.limit = ResponseString(*e, "limit");
  info.phase = ResponseString(*e, "phase");
  info.progress = ResponseString(*e, "progress");
  return info;
}

/// Distinct terms (variables and constants) in a query's body — the
/// `query_terms` input of TerminationCertificate::StepBound.
size_t QueryTermCount(const ConjunctiveQuery& q) {
  std::set<std::string> terms;
  for (const Atom& a : q.body()) {
    for (const Term& t : a.args()) terms.insert(t.ToString());
  }
  return terms.size();
}

/// Renders a StepBound value; the saturated cap prints symbolically.
std::string RenderBound(uint64_t bound) {
  if (bound >= TerminationCertificate::kBoundCap) {
    return ">=2^62 (finite but astronomically large)";
  }
  return std::to_string(bound);
}

/// SET BUDGET AUTO clamps the certificate bound here so a sound but
/// astronomical bound still yields a usable interactive budget.
constexpr uint64_t kAutoBudgetCap = uint64_t{1} << 20;

/// Budget fields of a check/reformulate request; the server narrows its own
/// defaults to these, so SET BUDGET / SET THREADS apply remotely too.
void AddBudgetFields(const ResourceBudget& budget, service::RequestSpec* req) {
  req->Int("max_chase_steps", budget.max_chase_steps)
      .Int("max_candidates", budget.max_candidates)
      .Int("threads", budget.threads);
}

}  // namespace

ScriptEngine::ScriptEngine() = default;
ScriptEngine::~ScriptEngine() = default;

EngineContext ScriptEngine::Context() {
  EngineContext ctx;
  ctx.budget = budget_;
  ctx.metrics = &metrics_;
  ctx.trace = tracing_ ? &trace_ : nullptr;
  ctx.cancel = cancel_;
  return ctx;
}

Result<NamedQuery> ScriptEngine::GetQuery(const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("unknown query '" + name + "' (define it with QUERY)");
  }
  return it->second;
}

Result<std::pair<std::vector<std::string>, std::optional<Semantics>>>
ScriptEngine::ParseArgs(std::string_view rest) const {
  std::vector<std::string> names;
  std::optional<Semantics> semantics;
  std::string_view remaining = Trim(rest);
  while (!remaining.empty()) {
    auto [word, tail] = SplitKeyword(remaining);
    if (EqualsIgnoreCase(word, "UNDER")) {
      auto [sem_name, tail2] = SplitKeyword(tail);
      SQLEQ_ASSIGN_OR_RETURN(Semantics sem, SemanticsFromName(sem_name));
      semantics = sem;
      remaining = tail2;
      continue;
    }
    names.push_back(word);
    remaining = tail;
  }
  return std::make_pair(std::move(names), semantics);
}

Result<std::string> ScriptEngine::Execute(std::string_view statement) {
  statement = Trim(statement);
  if (statement.empty()) return std::string();
  auto [keyword, rest] = SplitKeyword(statement);
  if (EqualsIgnoreCase(keyword, "CREATE")) return ExecCreate(statement);
  if (EqualsIgnoreCase(keyword, "INSERT")) return ExecInsert(statement);
  if (EqualsIgnoreCase(keyword, "DEP")) return ExecDep(rest);
  if (EqualsIgnoreCase(keyword, "VIEW")) return ExecView(rest);
  if (EqualsIgnoreCase(keyword, "QUERY")) return ExecQuery(rest);
  if (EqualsIgnoreCase(keyword, "EVAL")) return ExecEval(rest);
  if (EqualsIgnoreCase(keyword, "EQUIV")) return ExecEquiv(rest, /*explain=*/false);
  if (EqualsIgnoreCase(keyword, "EXPLAIN")) return ExecEquiv(rest, /*explain=*/true);
  if (EqualsIgnoreCase(keyword, "MINIMIZE")) return ExecMinimize(rest);
  if (EqualsIgnoreCase(keyword, "REWRITE")) return ExecRewrite(rest);
  if (EqualsIgnoreCase(keyword, "LINT")) return ExecLint(rest);
  if (EqualsIgnoreCase(keyword, "SET")) return ExecSet(rest);
  if (EqualsIgnoreCase(keyword, "SHOW")) return ExecShow(rest);
  if (EqualsIgnoreCase(keyword, "TRACE")) return ExecTrace(rest);
  if (EqualsIgnoreCase(keyword, "CONNECT")) return ExecConnect(rest);
  if (EqualsIgnoreCase(keyword, "DISCONNECT")) return ExecDisconnect(rest);
  if (EqualsIgnoreCase(keyword, "WORKLOAD")) return ExecWorkload(rest);
  if (EqualsIgnoreCase(keyword, "CACHE")) return ExecCacheStats(rest);
  if (EqualsIgnoreCase(keyword, "ADVISE")) return ExecAdvise(rest);
  return Status::InvalidArgument("unknown command '" + keyword + "'");
}

Result<std::string> ScriptEngine::Run(std::string_view script) {
  std::string stripped = StripLineComments(script);
  script = stripped;
  std::string out;
  size_t start = 0;
  while (start < script.size()) {
    size_t end = script.find(';', start);
    if (end == std::string_view::npos) end = script.size();
    std::string_view piece = Trim(script.substr(start, end - start));
    if (!piece.empty()) {
      SQLEQ_ASSIGN_OR_RETURN(std::string piece_out, Execute(piece));
      out += piece_out;
    }
    start = end + 1;
  }
  return out;
}

Result<std::string> ScriptEngine::ExecCreate(std::string_view statement) {
  SQLEQ_ASSIGN_OR_RETURN(sql::CreateTableStatement stmt,
                         sql::ParseCreateTable(statement));
  sql::Catalog updated = catalog_;
  SQLEQ_RETURN_IF_ERROR(sql::ApplyCreateTable(stmt, &updated));
  // Rebuild the instance over the widened schema, carrying data over.
  Database rebuilt(updated.schema);
  for (const RelationInfo& info : database_.schema().Relations()) {
    SQLEQ_ASSIGN_OR_RETURN(RelationInstance rel, database_.GetRelation(info.name));
    for (const auto& [tuple, count] : rel.bag().counts()) {
      SQLEQ_RETURN_IF_ERROR(rebuilt.Insert(info.name, tuple, count));
    }
  }
  std::string out = "created table " + stmt.table + "\n";
  if (remote_ != nullptr) {
    // Mirror before committing locally, so a remote failure leaves the
    // session unchanged (the connection is dropped either way).
    service::RequestSpec req("ddl");
    req.Str("script", std::string(statement));
    SQLEQ_ASSIGN_OR_RETURN(std::string line, service::EncodeRequest(req));
    SQLEQ_RETURN_IF_ERROR(MirrorToRemote(line));
    out += "  (mirrored to " + remote_name_ + ")\n";
  }
  catalog_ = std::move(updated);
  database_ = std::move(rebuilt);
  return out;
}

Result<std::string> ScriptEngine::ExecInsert(std::string_view statement) {
  SQLEQ_ASSIGN_OR_RETURN(sql::InsertStatement stmt, sql::ParseInsert(statement));
  Database staged = database_;  // failed INSERTs leave the engine unchanged
  SQLEQ_RETURN_IF_ERROR(sql::ApplyInsert(stmt, &staged));
  database_ = std::move(staged);
  return "inserted " + std::to_string(stmt.rows.size()) + " row(s) into " +
         stmt.table + "\n";
}

Result<std::string> ScriptEngine::ExecDep(std::string_view rest) {
  SQLEQ_ASSIGN_OR_RETURN(
      std::vector<Dependency> deps,
      ParseDependency(rest, "user" + std::to_string(++dep_counter_)));
  // Mirror before committing locally, so a remote failure leaves the
  // session unchanged (the connection is dropped either way).
  std::string out;
  for (const Dependency& dep : deps) {
    out += "added dependency " + dep.ToString() + "\n";
    if (remote_ != nullptr) {
      // Dependency::ToString() prepends "[label] ", which ParseDependency
      // rejects; send the bare body->head text with the label alongside.
      service::RequestSpec req("dep");
      req.Str("text", dep.IsTgd() ? dep.tgd().ToString() : dep.egd().ToString())
          .Str("label", dep.label());
      SQLEQ_ASSIGN_OR_RETURN(std::string line, service::EncodeRequest(req));
      SQLEQ_RETURN_IF_ERROR(MirrorToRemote(line));
      out += "  (mirrored to " + remote_name_ + ")\n";
    }
  }
  for (Dependency& dep : deps) catalog_.sigma.push_back(std::move(dep));
  return out;
}

Result<std::string> ScriptEngine::ExecView(std::string_view rest) {
  SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, ParseQuery(rest));
  SQLEQ_RETURN_IF_ERROR(views_.Add(def));
  return "registered view " + def.ToString() + "\n";
}

Result<std::string> ScriptEngine::ExecQuery(std::string_view rest) {
  rest = Trim(rest);
  size_t assign = rest.find(":=");
  std::optional<ConjunctiveQuery> parsed;
  Semantics semantics = Semantics::kBagSet;
  std::string name;
  if (assign != std::string_view::npos) {
    // QUERY <name> := SELECT ...
    name = std::string(Trim(rest.substr(0, assign)));
    std::string_view select_text = Trim(rest.substr(assign + 2));
    SQLEQ_ASSIGN_OR_RETURN(sql::TranslatedQuery translated,
                           sql::TranslateSql(select_text, catalog_, name));
    if (translated.is_aggregate) {
      return Status::Unsupported(
          "aggregate queries are not yet supported in QUERY; use the "
          "AggregateCandB API directly");
    }
    parsed = *translated.cq;
    semantics = translated.semantics;
  } else {
    // QUERY <datalog text>, name from the head.
    SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseQuery(rest));
    name = q.name();
    // SQL-standard semantics derivation: bags unless every base relation is
    // keyed (set valued).
    bool all_set_valued = true;
    for (const Atom& a : q.body()) {
      if (!catalog_.schema.IsSetValued(a.predicate())) all_set_valued = false;
    }
    parsed = std::move(q);
    semantics = all_set_valued ? Semantics::kBagSet : Semantics::kBag;
  }
  if (name.empty()) return Status::InvalidArgument("query name may not be empty");
  NamedQuery named{std::move(*parsed), semantics};
  queries_.erase(name);
  queries_.emplace(name, named);
  return "defined " + name + ": " + named.query.ToString() + "  [" +
         SemanticsToString(named.semantics) + "]\n";
}

Result<std::string> ScriptEngine::ExecEval(std::string_view rest) {
  SQLEQ_ASSIGN_OR_RETURN(auto args, ParseArgs(rest));
  if (args.first.size() != 1) {
    return Status::InvalidArgument("usage: EVAL <query> [UNDER S|B|BS]");
  }
  SQLEQ_ASSIGN_OR_RETURN(NamedQuery named, GetQuery(args.first[0]));
  Semantics sem = args.second.value_or(named.semantics);
  SQLEQ_ASSIGN_OR_RETURN(Bag answer, Evaluate(named.query, database_, sem));
  return args.first[0] + "(D," + SemanticsToString(sem) + ") = " + answer.ToString() +
         "\n";
}

Result<std::string> ScriptEngine::ExecEquiv(std::string_view rest, bool explain) {
  if (explain) {
    auto [mode, tail] = SplitKeyword(rest);
    if (EqualsIgnoreCase(mode, "SLICE")) return ExecExplainSlice(tail);
  }
  SQLEQ_ASSIGN_OR_RETURN(auto args, ParseArgs(rest));
  if (args.first.size() != 2) {
    return Status::InvalidArgument("usage: EQUIV|EXPLAIN <q1> <q2> [UNDER S|B|BS]");
  }
  SQLEQ_ASSIGN_OR_RETURN(NamedQuery a, GetQuery(args.first[0]));
  SQLEQ_ASSIGN_OR_RETURN(NamedQuery b, GetQuery(args.first[1]));
  Semantics sem = args.second.value_or(a.semantics);
  if (explain) {
    ChaseOptions chase_options;
    chase_options.budget = budget_;
    SQLEQ_ASSIGN_OR_RETURN(EquivalenceExplanation e,
                           ExplainEquivalence(a.query, b.query, catalog_.sigma, sem,
                                              catalog_.schema, chase_options));
    return e.ToString();
  }
  if (remote_ != nullptr) {
    return RemoteEquiv(args.first[0], a, args.first[1], b, sem);
  }
  EquivalenceEngine engine;
  EquivRequest request{sem, catalog_.sigma, catalog_.schema, {}};
  request.context = Context();
  SQLEQ_ASSIGN_OR_RETURN(
      EquivVerdict verdict,
      retry_.has_value()
          ? engine.EquivalentWithRetry(a.query, b.query, request, *retry_)
          : engine.Equivalent(a.query, b.query, request));
  if (verdict.verdict == Verdict::kUnknown) {
    return args.first[0] + " ?? " + args.first[1] + "  under " +
           SemanticsToString(sem) + " semantics (given Sigma)\n" +
           IncompleteLine(verdict.exhaustion);
  }
  return args.first[0] + (verdict.equivalent ? " == " : " != ") + args.first[1] +
         "  under " + SemanticsToString(sem) + " semantics (given Sigma)\n";
}

Result<std::string> ScriptEngine::ExecExplainSlice(std::string_view rest) {
  auto [name, tail] = SplitKeyword(rest);
  if (name.empty() || !Trim(tail).empty()) {
    return Status::InvalidArgument("usage: EXPLAIN SLICE <query>");
  }
  SQLEQ_ASSIGN_OR_RETURN(NamedQuery named, GetQuery(name));
  SigmaGraph graph = SigmaGraph::Build(catalog_.sigma, catalog_.schema);
  SigmaSlice slice = graph.SliceFor(named.query.body());
  std::string out = "slice for " + name + ": keeps " +
                    std::to_string(slice.kept.size()) + " of " +
                    std::to_string(slice.total()) + " dependencies [" +
                    slice.Signature() + "]\n";
  for (size_t i : slice.kept) {
    out += "  kept   " + graph.sigma()[i].ToString() + "\n";
  }
  for (const SigmaSlice::Pruned& p : slice.pruned) {
    out += "  pruned " + graph.sigma()[p.index].ToString() +
           "  -- body atom " + p.blocked_atom + " can never be matched\n";
  }
  TerminationCertificate cert = graph.DeriveCertificate();
  out += "certificate: " + cert.ToString() + "\n";
  if (cert.terminates()) {
    uint64_t bound = cert.StepBound(named.query.body().size(),
                                    QueryTermCount(named.query));
    out += "static chase-step bound for " + name + ": " + RenderBound(bound) +
           "  (SET BUDGET AUTO adopts it)\n";
  }
  return out;
}

Result<std::string> ScriptEngine::ExecMinimize(std::string_view rest) {
  SQLEQ_ASSIGN_OR_RETURN(auto args, ParseArgs(rest));
  if (args.first.size() != 1) {
    return Status::InvalidArgument("usage: MINIMIZE <query> [UNDER S|B|BS]");
  }
  SQLEQ_ASSIGN_OR_RETURN(NamedQuery named, GetQuery(args.first[0]));
  Semantics sem = args.second.value_or(named.semantics);
  if (remote_ != nullptr) return RemoteMinimize(args.first[0], named, sem);
  CandBOptions options;
  options.context = Context();
  SQLEQ_ASSIGN_OR_RETURN(
      CandBResult result,
      retry_.has_value()
          ? ChaseAndBackchaseWithRetry(named.query, catalog_.sigma, sem,
                                       catalog_.schema, options, *retry_)
          : ChaseAndBackchase(named.query, catalog_.sigma, sem, catalog_.schema,
                              options));
  std::string out = "minimize " + args.first[0] + " under " + SemanticsToString(sem) +
                    " (" + std::to_string(result.candidates_examined) +
                    " candidates):\n";
  for (const ConjunctiveQuery& reform : result.reformulations) {
    Result<std::string> rendered = sql::RenderSql(reform, catalog_.schema, sem);
    out += "  " + (rendered.ok() ? *rendered : reform.ToString()) + "\n";
  }
  if (!result.complete) out += IncompleteLine(result.exhaustion);
  return out;
}

Result<std::string> ScriptEngine::ExecRewrite(std::string_view rest) {
  SQLEQ_ASSIGN_OR_RETURN(auto args, ParseArgs(rest));
  if (args.first.size() != 1) {
    return Status::InvalidArgument("usage: REWRITE <query> [UNDER S|B|BS]");
  }
  if (views_.size() == 0) {
    return Status::FailedPrecondition("no views registered (use VIEW)");
  }
  SQLEQ_ASSIGN_OR_RETURN(NamedQuery named, GetQuery(args.first[0]));
  Semantics sem = args.second.value_or(named.semantics);
  RewriteOptions options;
  options.context = Context();
  SQLEQ_ASSIGN_OR_RETURN(
      RewriteResult result,
      retry_.has_value()
          ? RewriteWithViewsWithRetry(named.query, views_, catalog_.sigma, sem,
                                      catalog_.schema, options, *retry_)
          : RewriteWithViews(named.query, views_, catalog_.sigma, sem,
                             catalog_.schema, options));
  std::string out = "rewritings of " + args.first[0] + " under " +
                    SemanticsToString(sem) + ":\n";
  if (result.rewritings.empty() && result.complete) out += "  (none)\n";
  for (const ConjunctiveQuery& r : result.rewritings) {
    out += "  " + r.ToString() + "\n";
  }
  if (!result.complete) out += IncompleteLine(result.exhaustion);
  return out;
}

Result<std::string> ScriptEngine::ExecLint(std::string_view rest) {
  auto [mode, tail] = SplitKeyword(rest);
  bool strict = false;
  if (EqualsIgnoreCase(mode, "STRICT")) {
    strict = true;
  } else if (!mode.empty()) {
    return Status::InvalidArgument("usage: LINT [STRICT]");
  }
  if (!Trim(tail).empty()) return Status::InvalidArgument("usage: LINT [STRICT]");

  AnalyzeOptions opts = AnalyzeOptions::Full();
  opts.warnings_as_errors = strict;
  opts.budget = budget_;
  opts.metrics = &metrics_;  // analysis.diag.<code> counters for SHOW STATS
  std::vector<ConjunctiveQuery> queries;
  for (const auto& [name, named] : queries_) queries.push_back(named.query);
  for (const std::string& name : views_.names()) {
    SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views_.Get(name));
    queries.push_back(std::move(def));
  }
  AnalysisReport report =
      AnalyzeProgram(catalog_.schema, catalog_.sigma, queries, opts);
  std::string out = report.ToString();
  if (!out.empty() && out.back() != '\n') out += '\n';
  out += LintSummaryLine(report) + "\n";
  return out;
}

Result<std::string> ScriptEngine::ExecSet(std::string_view rest) {
  auto [what, tail] = SplitKeyword(rest);
  if (EqualsIgnoreCase(what, "THREADS")) {
    auto [value, tail2] = SplitKeyword(tail);
    if (!Trim(tail2).empty()) {
      return Status::InvalidArgument("usage: SET THREADS <n>");
    }
    SQLEQ_ASSIGN_OR_RETURN(size_t n, ParseCount(value, "THREADS"));
    if (n == 0) return Status::InvalidArgument("THREADS must be at least 1");
    budget_.threads = n;
    return "set threads = " + std::to_string(n) + "\n";
  }
  if (EqualsIgnoreCase(what, "BUDGET")) {
    auto [steps_word, tail2] = SplitKeyword(tail);
    if (EqualsIgnoreCase(steps_word, "AUTO")) {
      if (!Trim(tail2).empty()) {
        return Status::InvalidArgument("usage: SET BUDGET AUTO");
      }
      if (queries_.empty()) {
        return Status::FailedPrecondition(
            "SET BUDGET AUTO needs at least one QUERY to bound");
      }
      SigmaGraph graph = SigmaGraph::Build(catalog_.sigma, catalog_.schema);
      TerminationCertificate cert = graph.DeriveCertificate();
      if (!cert.terminates()) {
        std::string why = cert.ToString();
        return Status::FailedPrecondition(
            "SET BUDGET AUTO needs a termination certificate, but Sigma has "
            "none (" + why + "); set an explicit SET BUDGET instead");
      }
      uint64_t bound = 0;
      for (const auto& [qname, named] : queries_) {
        uint64_t b = cert.StepBound(named.query.body().size(),
                                    QueryTermCount(named.query));
        if (b > bound) bound = b;
      }
      uint64_t clamped = std::min(bound, kAutoBudgetCap);
      budget_.max_chase_steps = static_cast<size_t>(clamped);
      std::string out = "set budget: " + budget_.ToString() +
                        "  (certificate bound " + RenderBound(bound);
      if (clamped != bound) out += ", clamped to " + std::to_string(clamped);
      out += ")\n";
      return out;
    }
    auto [cands_word, tail3] = SplitKeyword(tail2);
    if (!Trim(tail3).empty()) {
      return Status::InvalidArgument("usage: SET BUDGET <chase-steps> <candidates>");
    }
    SQLEQ_ASSIGN_OR_RETURN(size_t steps, ParseCount(steps_word, "BUDGET chase-steps"));
    SQLEQ_ASSIGN_OR_RETURN(size_t cands, ParseCount(cands_word, "BUDGET candidates"));
    if (steps == 0 || cands == 0) {
      return Status::InvalidArgument("BUDGET limits must be at least 1");
    }
    budget_.max_chase_steps = steps;
    budget_.max_candidates = cands;
    return "set budget: " + budget_.ToString() + "\n";
  }
  if (EqualsIgnoreCase(what, "RETRY")) {
    auto [attempts_word, tail2] = SplitKeyword(tail);
    if (EqualsIgnoreCase(attempts_word, "OFF")) {
      if (!Trim(tail2).empty()) {
        return Status::InvalidArgument("usage: SET RETRY OFF");
      }
      retry_.reset();
      return std::string("set retry: off\n");
    }
    auto [growth_word, tail3] = SplitKeyword(tail2);
    if (!Trim(tail3).empty()) {
      return Status::InvalidArgument(
          "usage: SET RETRY <attempts> [<growth>] | SET RETRY OFF");
    }
    SQLEQ_ASSIGN_OR_RETURN(size_t attempts,
                           ParseCount(attempts_word, "RETRY attempts"));
    if (attempts == 0) return Status::InvalidArgument("RETRY attempts must be at least 1");
    EscalatingBudget policy;
    policy.max_attempts = attempts;
    if (!growth_word.empty()) {
      SQLEQ_ASSIGN_OR_RETURN(policy.growth, ParseGrowth(growth_word));
    }
    retry_ = policy;
    return "set retry: " + std::to_string(attempts) + " attempt(s), growth " +
           std::to_string(retry_->growth) + "\n";
  }
  return Status::InvalidArgument(
      "usage: SET THREADS <n> | SET BUDGET <chase-steps> <candidates> | "
      "SET BUDGET AUTO | SET RETRY <attempts> [<growth>] | SET RETRY OFF");
}

Result<std::string> ScriptEngine::ExecShow(std::string_view rest) {
  auto [what, tail] = SplitKeyword(rest);
  if (!Trim(tail).empty()) {
    return Status::InvalidArgument(
        "usage: SHOW SCHEMA|SIGMA|QUERIES|DATA|BUDGET|STATS");
  }
  if (EqualsIgnoreCase(what, "STATS")) return RenderStats(metrics_.Snapshot());
  if (EqualsIgnoreCase(what, "SCHEMA")) return catalog_.schema.ToString();
  if (EqualsIgnoreCase(what, "SIGMA")) return SigmaToString(catalog_.sigma);
  if (EqualsIgnoreCase(what, "DATA")) return database_.ToString();
  if (EqualsIgnoreCase(what, "BUDGET")) {
    std::string out = budget_.ToString() + "\n";
    if (retry_.has_value()) {
      out += "retry: " + std::to_string(retry_->max_attempts) +
             " attempt(s), growth " + std::to_string(retry_->growth) + "\n";
    }
    return out;
  }
  if (EqualsIgnoreCase(what, "QUERIES")) {
    std::string out;
    for (const auto& [name, named] : queries_) {
      out += name + ": " + named.query.ToString() + "  [" +
             SemanticsToString(named.semantics) + "]\n";
    }
    return out;
  }
  return Status::InvalidArgument("unknown SHOW target '" + what + "'");
}

Result<std::string> ScriptEngine::ExecTrace(std::string_view rest) {
  auto [mode, tail] = SplitKeyword(rest);
  if (EqualsIgnoreCase(mode, "ON")) {
    if (!Trim(tail).empty()) return Status::InvalidArgument("usage: TRACE ON");
    tracing_ = true;
    return std::string("tracing on\n");
  }
  if (EqualsIgnoreCase(mode, "OFF")) {
    if (!Trim(tail).empty()) return Status::InvalidArgument("usage: TRACE OFF");
    tracing_ = false;
    return std::string("tracing off\n");
  }
  if (EqualsIgnoreCase(mode, "EXPORT")) {
    auto [path, tail2] = SplitKeyword(tail);
    if (path.empty() || !Trim(tail2).empty()) {
      return Status::InvalidArgument("usage: TRACE EXPORT <file>");
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot open '" + path + "' for writing");
    }
    out << trace_.ToChromeTraceJson();
    out.close();
    if (!out) return Status::Internal("failed writing '" + path + "'");
    return "exported " + std::to_string(trace_.size()) + " trace event(s) to " +
           path + "\n";
  }
  return Status::InvalidArgument("usage: TRACE ON | TRACE OFF | TRACE EXPORT <file>");
}

Result<std::string> ScriptEngine::ExecConnect(std::string_view rest) {
  auto [host, tail] = SplitKeyword(rest);
  auto [port_word, tail2] = SplitKeyword(tail);
  if (host.empty() || !Trim(tail2).empty() ||
      (port_word.empty() && host.find(':') == std::string::npos)) {
    return Status::InvalidArgument(
        "usage: CONNECT <host> <port> | CONNECT <fleet-spec>");
  }
  if (remote_ != nullptr) {
    return Status::FailedPrecondition("already connected to " + remote_name_ +
                                      " (DISCONNECT first)");
  }
  std::string spec;
  if (port_word.empty()) {
    // One word with ':' — a fleet spec ("host:port" or "a=h:p,b=h:p,...").
    spec = host;
  } else {
    SQLEQ_ASSIGN_OR_RETURN(size_t port, ParseCount(port_word, "port"));
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument("port must be in 1..65535, got '" + port_word + "'");
    }
    spec = host + ":" + port_word;
  }
  service::FleetClientOptions options;
  SQLEQ_ASSIGN_OR_RETURN(options.shards, service::ParseFleetSpec(spec));
  options.retry = ShellRetryPolicy();
  SQLEQ_ASSIGN_OR_RETURN(std::unique_ptr<service::FleetClient> client,
                         service::FleetClient::Create(std::move(options)));

  // One hello per shard: proves every shard is reachable and speaks a
  // protocol we understand before any catalog is uploaded.
  SQLEQ_ASSIGN_OR_RETURN(std::string hello_line,
                         service::EncodeRequest(service::RequestSpec("hello")));
  SQLEQ_ASSIGN_OR_RETURN(std::vector<JsonValue> hellos,
                         client->Broadcast(hello_line));
  for (const JsonValue& hello : hellos) {
    const JsonValue* protocol = hello.Find("protocol");
    if (protocol == nullptr || protocol->kind != JsonValue::Kind::kNumber ||
        static_cast<int>(protocol->number) < service::kProtocolVersion) {
      return Status::FailedPrecondition(
          "server speaks a different protocol than this shell (want version " +
          std::to_string(service::kProtocolVersion) + " or newer)");
    }
  }

  // Upload the session catalog so the daemon sessions match ours; the fleet
  // client logs these and replays them onto every pooled connection. Keys
  // and foreign keys travel as the Σ they induced, so only name/arity/
  // set-valuedness need the relation command.
  size_t relations = 0;
  for (const RelationInfo& info : catalog_.schema.Relations()) {
    service::RequestSpec req("relation");
    req.Str("name", info.name)
        .Int("arity", info.arity)
        .Bool("set_valued", info.set_valued);
    SQLEQ_RETURN_IF_ERROR(RemoteCall(*client, req).status());
    ++relations;
  }
  size_t deps = 0;
  for (const Dependency& dep : catalog_.sigma) {
    service::RequestSpec req("dep");
    req.Str("text", dep.IsTgd() ? dep.tgd().ToString() : dep.egd().ToString())
        .Str("label", dep.label());
    SQLEQ_RETURN_IF_ERROR(RemoteCall(*client, req).status());
    ++deps;
  }

  const size_t shard_count = client->shard_count();
  remote_ = std::move(client);
  remote_name_ = spec;
  std::string out = "connected to sqleqd at " + remote_name_;
  if (shard_count > 1) {
    out += " (" + std::to_string(shard_count) + " shards)";
  }
  return out + "; uploaded " + std::to_string(relations) + " relation(s), " +
         std::to_string(deps) + " dependenc(ies)\n";
}

Result<std::string> ScriptEngine::ExecDisconnect(std::string_view rest) {
  if (!Trim(rest).empty()) return Status::InvalidArgument("usage: DISCONNECT");
  if (remote_ == nullptr) {
    return Status::FailedPrecondition("not connected (use CONNECT <host> <port>)");
  }
  remote_.reset();
  std::string out = "disconnected from " + remote_name_ + "\n";
  remote_name_.clear();
  return out;
}

Status ScriptEngine::MirrorToRemote(const std::string& request_line) {
  Result<JsonValue> response = RemoteCall(*remote_, request_line);
  if (!response.ok()) {
    std::string peer = remote_name_;
    remote_.reset();
    remote_name_.clear();
    return Status::FailedPrecondition("mirroring to " + peer +
                                      " failed (connection dropped): " +
                                      response.status().message());
  }
  return Status::OK();
}

Result<std::string> ScriptEngine::RemoteEquiv(const std::string& n1, const NamedQuery& a,
                                              const std::string& n2, const NamedQuery& b,
                                              Semantics sem) {
  service::RequestSpec req("check");
  req.Str("q1", a.query.ToString())
      .Str("q2", b.query.ToString())
      .Str("semantics", service::SemanticsWireName(sem));
  AddBudgetFields(budget_, &req);
  SQLEQ_ASSIGN_OR_RETURN(JsonValue response, RemoteCall(*remote_, req));
  const std::string verdict = ResponseString(response, "verdict");
  std::string out;
  if (verdict == "unknown") {
    out = n1 + " ?? " + n2 + "  under " + SemanticsToString(sem) +
          " semantics (given Sigma)  [remote " + remote_name_ + "]\n" +
          IncompleteLine(ResponseExhaustion(response));
  } else {
    const JsonValue* equivalent = response.Find("equivalent");
    bool eq = equivalent != nullptr &&
              equivalent->kind == JsonValue::Kind::kBool && equivalent->boolean;
    out = n1 + (eq ? " == " : " != ") + n2 + "  under " + SemanticsToString(sem) +
          " semantics (given Sigma)  [remote " + remote_name_ + "]\n";
  }
  return out;
}

Result<std::string> ScriptEngine::RemoteMinimize(const std::string& name,
                                                 const NamedQuery& named,
                                                 Semantics sem) {
  service::RequestSpec req("reformulate");
  req.Str("query", named.query.ToString())
      .Str("semantics", service::SemanticsWireName(sem));
  AddBudgetFields(budget_, &req);
  SQLEQ_ASSIGN_OR_RETURN(JsonValue response, RemoteCall(*remote_, req));

  uint64_t candidates = 0;
  if (const JsonValue* c = response.Find("candidates");
      c != nullptr && c->kind == JsonValue::Kind::kNumber) {
    candidates = static_cast<uint64_t>(c->number);
  }
  std::string out = "minimize " + name + " under " + SemanticsToString(sem) + " (" +
                    std::to_string(candidates) + " candidates)  [remote " +
                    remote_name_ + "]:\n";
  if (const JsonValue* list = response.Find("reformulations");
      list != nullptr && list->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& item : list->array) {
      if (!item.is_string()) continue;
      // The daemon speaks Datalog; render back as SQL like local MINIMIZE.
      std::string line = item.string;
      if (Result<ConjunctiveQuery> reform = ParseQuery(item.string); reform.ok()) {
        Result<std::string> rendered = sql::RenderSql(*reform, catalog_.schema, sem);
        if (rendered.ok()) line = *rendered;
      }
      out += "  " + line + "\n";
    }
  }
  const JsonValue* complete = response.Find("complete");
  if (complete != nullptr && complete->kind == JsonValue::Kind::kBool &&
      !complete->boolean) {
    out += IncompleteLine(ResponseExhaustion(response));
  }
  return out;
}

Result<std::string> ScriptEngine::ExecWorkload(std::string_view rest) {
  auto [verb, tail] = SplitKeyword(rest);
  if (EqualsIgnoreCase(verb, "GEN")) {
    auto [tmpl, tail2] = SplitKeyword(tail);
    auto [num_word, tail3] = SplitKeyword(tail2);
    auto [olap_word, tail4] = SplitKeyword(tail3);
    workload::WorkloadOptions options;
    if (tmpl.empty() || num_word.empty() || olap_word.empty()) {
      return Status::InvalidArgument(
          "usage: WORKLOAD GEN <template> <num-queries> <overlap> [SEED <n>]");
    }
    options.schema_template = tmpl;
    SQLEQ_ASSIGN_OR_RETURN(options.num_queries,
                           ParseCount(num_word, "num-queries"));
    errno = 0;
    char* end = nullptr;
    options.overlap_rate = std::strtod(olap_word.c_str(), &end);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("overlap must be a number in [0, 1], got '" +
                                     olap_word + "'");
    }
    auto [seed_kw, tail5] = SplitKeyword(tail4);
    if (EqualsIgnoreCase(seed_kw, "SEED")) {
      auto [seed_word, tail6] = SplitKeyword(tail5);
      if (!Trim(tail6).empty()) {
        return Status::InvalidArgument(
            "usage: WORKLOAD GEN <template> <num-queries> <overlap> [SEED <n>]");
      }
      SQLEQ_ASSIGN_OR_RETURN(size_t seed, ParseCount(seed_word, "SEED"));
      options.seed = seed;
    } else if (!seed_kw.empty()) {
      return Status::InvalidArgument(
          "usage: WORKLOAD GEN <template> <num-queries> <overlap> [SEED <n>]");
    }
    SQLEQ_ASSIGN_OR_RETURN(workload::Workload w, GenerateWorkload(options));
    workload_ = std::make_unique<workload::Workload>(std::move(w));
    cache_.reset();
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.3f", workload_->GroundTruthHitRate());
    return "generated workload: template=" + workload_->schema.name +
           " queries=" + std::to_string(workload_->queries.size()) +
           " classes=" + std::to_string(workload_->num_classes) +
           " ground-truth-hit-rate=" + rate + "\n";
  }
  if (EqualsIgnoreCase(verb, "REPLAY")) {
    if (!Trim(tail).empty()) {
      return Status::InvalidArgument("usage: WORKLOAD REPLAY");
    }
    if (workload_ == nullptr) {
      return Status::FailedPrecondition("no workload (use WORKLOAD GEN first)");
    }
    cache::SemanticCacheOptions options;
    options.metrics = &metrics_;
    cache_ = std::make_unique<cache::SemanticCache>(
        workload_->schema.catalog.sigma, workload_->schema.catalog.schema,
        options);
    size_t hits = 0;
    for (const workload::WorkloadQuery& wq : workload_->queries) {
      SQLEQ_ASSIGN_OR_RETURN(cache::SemanticCache::Lookup hit,
                             cache_->Get(wq.query));
      if (hit.tier == cache::SemanticCache::Tier::kMiss) {
        cache_->Admit(wq.query, wq.query.name());
      } else {
        ++hits;
      }
    }
    cache::SemanticCache::Stats stats = cache_->stats();
    char measured[32], truth[32];
    std::snprintf(measured, sizeof(measured), "%.3f", stats.HitRate());
    std::snprintf(truth, sizeof(truth), "%.3f", workload_->GroundTruthHitRate());
    return "replayed " + std::to_string(workload_->queries.size()) +
           " queries: hits=" + std::to_string(hits) + " (exact=" +
           std::to_string(stats.exact_hits) + ", semantic=" +
           std::to_string(stats.semantic_hits) + ") hit-rate=" + measured +
           " ground-truth=" + truth + "\n";
  }
  return Status::InvalidArgument("usage: WORKLOAD GEN ... | WORKLOAD REPLAY");
}

Result<std::string> ScriptEngine::ExecCacheStats(std::string_view rest) {
  auto [verb, tail] = SplitKeyword(rest);
  if (!EqualsIgnoreCase(verb, "STATS") || !Trim(tail).empty()) {
    return Status::InvalidArgument("usage: CACHE STATS");
  }
  if (cache_ == nullptr) {
    return Status::FailedPrecondition("no cache (use WORKLOAD REPLAY first)");
  }
  cache::SemanticCache::Stats s = cache_->stats();
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.3f", s.HitRate());
  std::string out = "cache stats:\n";
  out += "  lookups = " + std::to_string(s.lookups) + "\n";
  out += "  hits.exact = " + std::to_string(s.exact_hits) + "\n";
  out += "  hits.semantic = " + std::to_string(s.semantic_hits) + "\n";
  out += "  misses = " + std::to_string(s.misses) + "\n";
  out += "  confirms = " + std::to_string(s.confirms) + " (unknown " +
         std::to_string(s.unknown_confirms) + ")\n";
  out += "  entries = " + std::to_string(s.entries) + " in " +
         std::to_string(s.buckets) + " buckets\n";
  out += "  hit-rate = " + std::string(rate) + "\n";
  return out;
}

Result<std::string> ScriptEngine::ExecAdvise(std::string_view rest) {
  auto [verb, tail] = SplitKeyword(rest);
  if (!EqualsIgnoreCase(verb, "VIEWS") || !Trim(tail).empty()) {
    return Status::InvalidArgument("usage: ADVISE VIEWS");
  }
  if (workload_ == nullptr) {
    return Status::FailedPrecondition("no workload (use WORKLOAD GEN first)");
  }
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(workload_->queries.size());
  for (const workload::WorkloadQuery& wq : workload_->queries) {
    queries.push_back(wq.query);
  }
  cache::ViewAdvisorOptions options;
  options.max_chase_steps = budget_.max_chase_steps;
  options.max_candidates = budget_.max_candidates;
  SQLEQ_ASSIGN_OR_RETURN(
      cache::ViewAdvice advice,
      AdviseViews(queries, workload_->schema.catalog.sigma,
                  workload_->schema.catalog.schema, options));
  std::string out = "advised " + std::to_string(advice.clusters.size()) +
                    " clusters over " +
                    std::to_string(advice.queries_clustered) + " queries (" +
                    std::to_string(advice.confirms) + " confirms)\n";
  for (const cache::ViewAdvice::Cluster& c : advice.clusters) {
    if (!c.rewritten) continue;
    char saving[32];
    std::snprintf(saving, sizeof(saving), "%.0f", c.ProjectedSaving());
    out += "  [" + std::to_string(c.members.size()) + " queries, saves ~" +
           saving + " tuples] " + c.rewrite.ToString() + "\n";
  }
  return out;
}

}  // namespace shell
}  // namespace sqleq
