// ViewAdvisor — workload-level advice built on the semantic cache: replay
// a workload, cluster the queries by Σ-equivalence (two queries land in one
// cluster iff the cache's engine confirms them equivalent), then run the
// paper's C&B (Appendix A / §6.3) on each cluster's representative and
// report the Σ-minimal reformulation the cost model ranks cheapest,
// together with the projected per-cluster saving of answering every member
// from that one rewrite. The "materialize one representative per class"
// workflow of docs/workload.md.
#ifndef SQLEQ_CACHE_VIEW_ADVISOR_H_
#define SQLEQ_CACHE_VIEW_ADVISOR_H_

#include <string>
#include <vector>

#include "cache/semantic_cache.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "reformulation/cost.h"
#include "util/status.h"

namespace sqleq {
namespace cache {

struct ViewAdvisorOptions {
  Semantics semantics = Semantics::kSet;
  /// Chase-step budget for the clustering confirms and each C&B run.
  size_t max_chase_steps = 5000;
  /// Backchase candidate cap per representative.
  size_t max_candidates = 4096;
  /// Clusters below this size are reported without a C&B run (no rewrite
  /// is worth materializing for a singleton unless asked).
  size_t min_cluster_size = 2;
  /// Statistics the projected savings are priced under.
  CostModel cost_model;
};

struct ViewAdvice {
  struct Cluster {
    /// Indices into the input workload, ascending. members[0] contributed
    /// the representative.
    std::vector<size_t> members;
    /// The advised rewrite: the cheapest Σ-minimal reformulation of the
    /// representative (which may be the representative itself when C&B
    /// finds nothing cheaper, or for sub-threshold clusters).
    ConjunctiveQuery rewrite;
    /// Whether C&B ran and completed for this cluster (sub-threshold
    /// clusters and anytime-interrupted runs report false and echo the
    /// representative).
    bool rewritten = false;
    /// Summed EstimateCost(...).intermediate_tuples over the members, and
    /// the same sum if every member instead ran the rewrite.
    double original_cost = 0.0;
    double rewritten_cost = 0.0;
    double ProjectedSaving() const { return original_cost - rewritten_cost; }
  };
  /// Clusters in order of first appearance in the workload.
  std::vector<Cluster> clusters;
  size_t queries_clustered = 0;
  /// Engine confirms the clustering pass spent.
  size_t confirms = 0;
};

/// Clusters `workload` by Σ-equivalence and advises one rewrite per
/// cluster. Every advised rewrite is engine-confirmed Σ-equivalent to its
/// cluster's representative (C&B soundness); the property tests re-verify
/// against every member. Deterministic for a fixed input.
Result<ViewAdvice> AdviseViews(const std::vector<ConjunctiveQuery>& workload,
                               const DependencySet& sigma, const Schema& schema,
                               const ViewAdvisorOptions& options = {});

}  // namespace cache
}  // namespace sqleq

#endif  // SQLEQ_CACHE_VIEW_ADVISOR_H_
