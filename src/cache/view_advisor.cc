#include "cache/view_advisor.h"

#include <string>
#include <utility>

#include "reformulation/candb.h"

namespace sqleq {
namespace cache {

Result<ViewAdvice> AdviseViews(const std::vector<ConjunctiveQuery>& workload,
                               const DependencySet& sigma, const Schema& schema,
                               const ViewAdvisorOptions& options) {
  ViewAdvice advice;
  if (workload.empty()) return advice;

  // Clustering pass: replay through a SemanticCache whose payloads are
  // cluster indices. A hit (either tier) assigns the query to the matched
  // entry's cluster; a miss opens a new cluster and admits the query as its
  // representative.
  SemanticCacheOptions cache_options;
  cache_options.semantics = options.semantics;
  cache_options.confirm_chase_steps = options.max_chase_steps;
  // Advice wants exhaustive clustering, not bounded lookup latency: let the
  // semantic tier examine the whole bucket.
  cache_options.max_confirms_per_lookup = workload.size();
  cache_options.max_body_size_delta = 0;
  SemanticCache cache(sigma, schema, cache_options);

  for (size_t i = 0; i < workload.size(); ++i) {
    SQLEQ_ASSIGN_OR_RETURN(SemanticCache::Lookup hit, cache.Get(workload[i]));
    if (hit.tier == SemanticCache::Tier::kMiss) {
      ViewAdvice::Cluster cluster{{i}, workload[i]};
      advice.clusters.push_back(std::move(cluster));
      cache.Admit(workload[i], std::to_string(advice.clusters.size() - 1));
    } else {
      advice.clusters[std::stoul(hit.payload)].members.push_back(i);
    }
  }
  advice.queries_clustered = workload.size();
  advice.confirms = cache.stats().confirms;

  // Advice pass: C&B each big-enough cluster's representative and keep the
  // cheapest Σ-minimal reformulation under the cost model.
  for (ViewAdvice::Cluster& cluster : advice.clusters) {
    double member_cost = 0.0;
    for (size_t m : cluster.members) {
      member_cost +=
          EstimateCost(workload[m], options.cost_model).intermediate_tuples;
    }
    cluster.original_cost = member_cost;
    cluster.rewritten_cost = member_cost;
    if (cluster.members.size() < options.min_cluster_size) continue;

    CandBOptions candb;
    candb.context.budget.max_chase_steps = options.max_chase_steps;
    candb.context.budget.max_candidates = options.max_candidates;
    Result<CandBResult> run = ChaseAndBackchase(cluster.rewrite, sigma,
                                                options.semantics, schema,
                                                candb);
    // A cluster C&B cannot improve (e.g. an unsatisfiable representative the
    // chase rejects) is reported unrewritten rather than failing the whole
    // advice pass.
    if (!run.ok()) continue;
    CandBResult result = std::move(run).value();
    if (!result.complete || result.reformulations.empty()) continue;

    std::vector<ConjunctiveQuery> candidates = result.reformulations;
    candidates.push_back(cluster.rewrite);  // never advise a costlier rewrite
    std::optional<size_t> best = PickCheapest(candidates, options.cost_model);
    if (!best.has_value()) continue;
    double per_query =
        EstimateCost(candidates[*best], options.cost_model).intermediate_tuples;
    cluster.rewrite = candidates[*best].WithName(cluster.rewrite.name());
    cluster.rewritten = true;
    cluster.rewritten_cost =
        per_query * static_cast<double>(cluster.members.size());
  }
  return advice;
}

}  // namespace cache
}  // namespace sqleq
