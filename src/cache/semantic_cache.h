// SemanticCache — the Σ-aware two-tier query result/verdict cache the
// roadmap's flagship scenario calls for (docs/workload.md).
//
// A lookup for query Q proceeds through two tiers:
//
//  1. EXACT tier: hash on CanonicalQueryKey(Q). Renamings and atom
//     reorderings of an admitted query hit here in O(|Q| log |Q|), no
//     chase.
//  2. SEMANTIC tier: candidates are the admitted entries in Q's bucket,
//     where buckets are keyed by cheap Σ-aware invariants — the predicate
//     set of Q's Σ-reachability closure (body predicates plus the head
//     predicates of the tgds SigmaGraph::SliceFor keeps), the head arity,
//     and the distinct-constant fingerprint. All three are invariant under
//     every Σ-equivalence-preserving rewrite the workload generator emits
//     (FK fold/unfold adds/removes only predicates already in the closure
//     and copies only existing constants), so a true variant always lands
//     in its base's bucket. Each candidate is confirmed by a full
//     EquivalenceEngine::Equivalent call under a per-lookup budget;
//     kUnknown confirms fall through — the cache degrades to a miss, never
//     to a wrong answer.
//
// Correctness therefore never rests on the invariants: they only bound how
// many engine confirms a lookup spends. A pluggable Confirmer reroutes the
// semantic-tier decision through a remote fleet (tools/sqleq-replay wires
// FleetClient "check" requests in) without the cache knowing.
#ifndef SQLEQ_CACHE_SEMANTIC_CACHE_H_
#define SQLEQ_CACHE_SEMANTIC_CACHE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/sigma_graph.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "equivalence/engine.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace sqleq {
namespace cache {

/// Decides whether two queries are Σ-equivalent. kUnknown (or an error) is
/// treated as "not confirmed": the lookup moves to the next candidate.
using Confirmer = std::function<Result<Verdict>(const ConjunctiveQuery&,
                                                const ConjunctiveQuery&)>;

struct SemanticCacheOptions {
  Semantics semantics = Semantics::kSet;
  /// Engine confirms a single lookup may spend on semantic-tier candidates
  /// before giving up and reporting a miss.
  size_t max_confirms_per_lookup = 4;
  /// Chase-step budget per confirm (EquivRequest context budget). The
  /// default matches ResourceBudget's.
  size_t confirm_chase_steps = 5000;
  /// Candidates whose body size differs from the probe's by more than this
  /// are skipped without a confirm — transforms change the body by at most
  /// one atom each, so a small bound covers real variants. 0 disables the
  /// filter.
  size_t max_body_size_delta = 4;
  /// Counter/histogram sink for cache.* metrics; null disables telemetry.
  MetricsRegistry* metrics = nullptr;
};

class SemanticCache {
 public:
  /// The cache owns an EquivalenceEngine configured for (Σ, schema,
  /// semantics); the engine's chase memo persists across lookups, so
  /// confirms against a hot class get cheaper over time.
  SemanticCache(DependencySet sigma, Schema schema,
                SemanticCacheOptions options = {});

  SemanticCache(const SemanticCache&) = delete;
  SemanticCache& operator=(const SemanticCache&) = delete;

  /// Reroutes semantic-tier confirms (e.g. through a fleet). The default
  /// confirmer is the owned engine.
  void set_confirmer(Confirmer confirmer);

  enum class Tier { kExact, kSemantic, kMiss };

  struct Lookup {
    Tier tier = Tier::kMiss;
    /// The admitted payload on a hit; empty on a miss.
    std::string payload;
    /// Name of the admitted query that matched; empty on a miss.
    std::string matched;
    /// Engine confirms this lookup spent (semantic tier only).
    size_t confirms = 0;
  };

  /// Looks Q up. Never errors on engine kUnknown — that candidate is simply
  /// not confirmed. Errors surface only for malformed inputs (e.g. the
  /// slice machinery rejecting the query).
  Result<Lookup> Get(const ConjunctiveQuery& q);

  /// Admits (Q, payload). Typically called after Get reported a miss; a
  /// second admit under the same canonical key keeps the first entry (the
  /// cache is append-wins-first, matching replay semantics).
  void Admit(const ConjunctiveQuery& q, std::string payload);

  struct Stats {
    size_t lookups = 0;
    size_t exact_hits = 0;
    size_t semantic_hits = 0;
    size_t misses = 0;
    size_t confirms = 0;          ///< engine confirms attempted
    size_t unknown_confirms = 0;  ///< confirms that came back kUnknown
    size_t entries = 0;
    size_t buckets = 0;
    double HitRate() const {
      return lookups == 0
                 ? 0.0
                 : static_cast<double>(exact_hits + semantic_hits) / lookups;
    }
  };
  Stats stats() const;

  /// The owned engine — exposed so callers can pre-warm memos, attach
  /// stores, or read ChaseMemo counters (tests assert memo.inserts
  /// stability across replayed equivalents).
  EquivalenceEngine& engine() { return *engine_; }

  const DependencySet& sigma() const { return sigma_; }
  const Schema& schema() const { return schema_; }
  Semantics semantics() const { return options_.semantics; }

  /// The semantic-tier bucket key for Q — exposed for tests asserting the
  /// invariance contract (every generator transform preserves it).
  std::string BucketKey(const ConjunctiveQuery& q) const;

 private:
  struct Entry {
    ConjunctiveQuery query;
    std::string payload;
    size_t body_size = 0;
  };

  SemanticCacheOptions options_;
  DependencySet sigma_;
  Schema schema_;
  SigmaGraph graph_;
  std::unique_ptr<EquivalenceEngine> engine_;
  Confirmer confirmer_;

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t> exact_;  ///< canonical key → entry
  std::unordered_map<std::string, std::vector<size_t>> buckets_;
  Stats stats_;
};

}  // namespace cache
}  // namespace sqleq

#endif  // SQLEQ_CACHE_SEMANTIC_CACHE_H_
