#include "cache/semantic_cache.h"

#include <algorithm>
#include <set>
#include <utility>

#include "chase/chase_cache.h"

namespace sqleq {
namespace cache {

SemanticCache::SemanticCache(DependencySet sigma, Schema schema,
                             SemanticCacheOptions options)
    : options_(options),
      sigma_(std::move(sigma)),
      schema_(std::move(schema)),
      graph_(SigmaGraph::Build(sigma_, schema_)),
      engine_(std::make_unique<EquivalenceEngine>()) {
  confirmer_ = [this](const ConjunctiveQuery& q1, const ConjunctiveQuery& q2)
      -> Result<Verdict> {
    EquivRequest request(options_.semantics, sigma_, schema_);
    request.context.budget.max_chase_steps = options_.confirm_chase_steps;
    SQLEQ_ASSIGN_OR_RETURN(EquivVerdict v, engine_->Equivalent(q1, q2, request));
    return v.verdict;
  };
}

void SemanticCache::set_confirmer(Confirmer confirmer) {
  std::lock_guard<std::mutex> lock(mu_);
  confirmer_ = std::move(confirmer);
}

std::string SemanticCache::BucketKey(const ConjunctiveQuery& q) const {
  // Σ-reachability closure: body predicates plus the head predicates of
  // every tgd the slice keeps. Egds never contribute new predicates (their
  // bodies must already may-match the pool), so tgd heads suffice.
  std::set<std::string> predicates;
  for (const Atom& a : q.body()) predicates.insert(a.predicate());
  SigmaSlice slice = graph_.SliceFor(q.body(), /*render_pruned=*/false);
  for (size_t i : slice.kept) {
    if (!sigma_[i].IsTgd()) continue;
    for (const Atom& h : sigma_[i].tgd().head()) {
      predicates.insert(h.predicate());
    }
  }
  // Distinct-constant fingerprint: FK-unfold copies existing terms and
  // invents only fresh variables, so the distinct set (not the multiset!)
  // is transform-invariant.
  std::set<std::string> constants;
  for (const Atom& a : q.body()) {
    for (Term t : a.args()) {
      if (t.IsConstant()) constants.insert(t.ToString());
    }
  }
  for (Term t : q.head()) {
    if (t.IsConstant()) constants.insert(t.ToString());
  }
  std::string key = "w=" + std::to_string(q.head().size()) + "|p=";
  for (const std::string& p : predicates) {
    key += p;
    key += ',';
  }
  key += "|c=";
  for (const std::string& c : constants) {
    key += c;
    key += ';';
  }
  return key;
}

Result<SemanticCache::Lookup> SemanticCache::Get(const ConjunctiveQuery& q) {
  MetricsRegistry* metrics = options_.metrics;
  if (metrics != nullptr) metrics->counter(metric::kCacheLookups).Add();

  const std::string canonical = CanonicalQueryKey(q);
  std::vector<Entry> candidates;
  Confirmer confirmer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    auto it = exact_.find(canonical);
    if (it != exact_.end()) {
      ++stats_.exact_hits;
      if (metrics != nullptr) metrics->counter(metric::kCacheHitsExact).Add();
      const Entry& e = entries_[it->second];
      return Lookup{Tier::kExact, e.payload, e.query.name(), 0};
    }
    auto bucket = buckets_.find(BucketKey(q));
    if (bucket != buckets_.end()) {
      for (size_t idx : bucket->second) candidates.push_back(entries_[idx]);
    }
    confirmer = confirmer_;
  }

  // Semantic tier: confirm bucket candidates with the engine, newest first
  // (recently admitted bases are likelier matches in replay order), under
  // the per-lookup confirm budget. Engine calls run outside the lock.
  std::reverse(candidates.begin(), candidates.end());
  Lookup result;
  size_t unknown = 0;
  for (const Entry& e : candidates) {
    if (result.confirms >= options_.max_confirms_per_lookup) break;
    if (options_.max_body_size_delta > 0) {
      size_t delta = e.body_size > q.body().size()
                         ? e.body_size - q.body().size()
                         : q.body().size() - e.body_size;
      if (delta > options_.max_body_size_delta) continue;
    }
    ++result.confirms;
    Result<Verdict> v = confirmer(q, e.query);
    if (!v.ok()) continue;  // a broken confirmer degrades to a miss
    if (v.value() == Verdict::kUnknown) {
      ++unknown;
      continue;
    }
    if (v.value() == Verdict::kEquivalent) {
      result.tier = Tier::kSemantic;
      result.payload = e.payload;
      result.matched = e.query.name();
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.confirms += result.confirms;
    stats_.unknown_confirms += unknown;
    if (result.tier == Tier::kSemantic) {
      ++stats_.semantic_hits;
    } else {
      ++stats_.misses;
    }
  }
  if (metrics != nullptr) {
    metrics->counter(metric::kCacheConfirms).Add(result.confirms);
    if (unknown > 0) metrics->counter(metric::kCacheConfirmsUnknown).Add(unknown);
    metrics
        ->counter(result.tier == Tier::kSemantic ? metric::kCacheHitsSemantic
                                                 : metric::kCacheMisses)
        .Add();
  }
  return result;
}

void SemanticCache::Admit(const ConjunctiveQuery& q, std::string payload) {
  const std::string canonical = CanonicalQueryKey(q);
  const std::string bucket = BucketKey(q);
  std::lock_guard<std::mutex> lock(mu_);
  if (exact_.find(canonical) != exact_.end()) return;
  size_t idx = entries_.size();
  entries_.push_back(Entry{q, std::move(payload), q.body().size()});
  exact_.emplace(canonical, idx);
  buckets_[bucket].push_back(idx);
  stats_.entries = entries_.size();
  stats_.buckets = buckets_.size();
  if (options_.metrics != nullptr) {
    options_.metrics->counter(metric::kCacheAdmissions).Add();
  }
}

SemanticCache::Stats SemanticCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cache
}  // namespace sqleq
