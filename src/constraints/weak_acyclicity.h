// Weak acyclicity (Definition H.1, after Fagin et al.): the sufficient
// condition guaranteeing set-chase termination. Build the dependency graph
// over positions (R, i); a universal variable occurrence in a tgd body at
// position u adds a regular edge to each of its head positions and a special
// edge to each head position holding an existential variable. Σ is weakly
// acyclic iff no cycle passes through a special edge.
#ifndef SQLEQ_CONSTRAINTS_WEAK_ACYCLICITY_H_
#define SQLEQ_CONSTRAINTS_WEAK_ACYCLICITY_H_

#include <string>
#include <vector>

#include "constraints/dependency.h"

namespace sqleq {

/// One position (relation, attribute index) of the dependency graph.
struct Position {
  std::string relation;
  size_t index = 0;

  friend bool operator==(const Position& a, const Position& b) {
    return a.relation == b.relation && a.index == b.index;
  }
  friend bool operator<(const Position& a, const Position& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.index < b.index;
  }

  std::string ToString() const {
    return "(" + relation + ", " + std::to_string(index) + ")";
  }
};

/// One edge of the dependency graph; `special` marks existential targets.
struct PositionEdge {
  Position from;
  Position to;
  bool special = false;
};

/// The dependency graph of the tgds of Σ (egds contribute nothing).
std::vector<PositionEdge> BuildDependencyGraph(const DependencySet& sigma);

/// True iff Σ is weakly acyclic: no cycle of the dependency graph goes
/// through a special edge.
bool IsWeaklyAcyclic(const DependencySet& sigma);

}  // namespace sqleq

#endif  // SQLEQ_CONSTRAINTS_WEAK_ACYCLICITY_H_
