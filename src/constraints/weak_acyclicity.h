// Chase-termination analysis of Σ (App. H and beyond).
//
// Weak acyclicity (Definition H.1, after Fagin et al.) is the sufficient
// condition guaranteeing set-chase termination. Build the dependency graph
// over positions (R, i); a universal variable occurrence in a tgd body at
// position u adds a regular edge to each of its head positions and a special
// edge to each head position holding an existential variable. Σ is weakly
// acyclic iff no cycle passes through a special edge.
//
// Stratification (after Deutsch–Nash–Remmel) is the strictly richer test
// used by the Σ-lint analyzer: partition Σ into strongly connected
// components of the firing graph (σ ≺ σ′ when firing σ can enable σ′ —
// over-approximated here by constant-aware atom matching: a written atom of
// σ must unify with a body atom of σ′ up to variables, so clashing constants
// sever the edge) and require every component to be weakly acyclic on its
// own. Weakly acyclic ⇒ stratified ⇒ the set chase terminates on every
// input.
#ifndef SQLEQ_CONSTRAINTS_WEAK_ACYCLICITY_H_
#define SQLEQ_CONSTRAINTS_WEAK_ACYCLICITY_H_

#include <optional>
#include <string>
#include <vector>

#include "constraints/dependency.h"

namespace sqleq {

/// One position (relation, attribute index) of the dependency graph.
struct Position {
  std::string relation;
  size_t index = 0;

  friend bool operator==(const Position& a, const Position& b) {
    return a.relation == b.relation && a.index == b.index;
  }
  friend bool operator<(const Position& a, const Position& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.index < b.index;
  }

  std::string ToString() const {
    return "(" + relation + ", " + std::to_string(index) + ")";
  }
};

/// One edge of the dependency graph; `special` marks existential targets.
struct PositionEdge {
  Position from;
  Position to;
  bool special = false;
};

/// A cycle of the dependency graph passing through a special edge — the
/// witness that Σ is not weakly acyclic. edges[0] is the special edge; the
/// remaining edges lead from its target back to its source (empty for a
/// special self-loop).
struct SpecialCycle {
  std::vector<PositionEdge> edges;

  /// "(p, 1) =>* (q, 0) -> (p, 1)" with "=>*" marking the special edge.
  std::string ToString() const;
};

/// The dependency graph of the tgds of Σ (egds contribute nothing).
std::vector<PositionEdge> BuildDependencyGraph(const DependencySet& sigma);

/// An atom firing a dependency can add or rewrite, with `wildcard` marking
/// atoms whose argument values are unconstrained: head atoms for a tgd
/// (their constants are literal); body atoms for an egd (its merges rewrite
/// the matched tuples to values the egd text does not determine). The
/// pointer borrows from the dependency it was extracted from.
struct WrittenAtomView {
  const Atom* atom;
  bool wildcard;
};

/// The atoms firing `dep` can add or rewrite (see WrittenAtomView). Views
/// borrow from `dep`, which must outlive them.
std::vector<WrittenAtomView> DependencyWrites(const Dependency& dep);

/// Whether a tuple produced by `written` can match `read`. Variables are
/// wildcards (an existential null may later be merged into anything); only
/// a position where both atoms carry distinct constants rules a match out —
/// constants are never rewritten (an egd equating two constants fails the
/// chase instead).
bool MayMatchAtom(const WrittenAtomView& written, const Atom& read);

/// Strongly connected components of the firing graph over dependency
/// indices (σ ≺ σ′ when a written atom of σ may-matches a body atom of σ′).
/// Each component is sorted ascending; the component list is sorted too.
/// Deterministic for fixed inputs.
std::vector<std::vector<size_t>> FiringComponents(const DependencySet& sigma);

/// A cycle through a special edge, or nullopt when Σ is weakly acyclic.
/// Deterministic for fixed inputs.
std::optional<SpecialCycle> FindSpecialCycle(const DependencySet& sigma);

/// True iff Σ is weakly acyclic: no cycle of the dependency graph goes
/// through a special edge.
bool IsWeaklyAcyclic(const DependencySet& sigma);

/// Outcome of the stratification test.
struct StratificationResult {
  /// Σ as a whole is weakly acyclic (implies `stratified`).
  bool weakly_acyclic = false;
  /// Every firing-graph component of Σ is weakly acyclic; the set chase
  /// terminates on every input.
  bool stratified = false;
  /// When not stratified: a special-edge cycle of the offending component.
  std::optional<SpecialCycle> witness;
  /// When not stratified: indices into Σ of the offending component.
  std::vector<size_t> offending_component;
};

/// The stratification test: SCCs of the firing graph (σ ≺ σ′ when an atom σ
/// writes — a tgd head atom, or a body atom an egd's merges rewrite — can
/// match a body atom of σ′; distinct constants at one position rule a match
/// out, variables match anything), each component checked for weak
/// acyclicity in isolation. The ≺ here over-approximates the semantic
/// firing relation, so `stratified` is a sound termination guarantee.
StratificationResult CheckStratification(const DependencySet& sigma);

}  // namespace sqleq

#endif  // SQLEQ_CONSTRAINTS_WEAK_ACYCLICITY_H_
