#include "constraints/keys.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

namespace sqleq {

std::string Fd::ToString() const {
  std::string out = relation + ": {";
  bool first = true;
  for (size_t p : lhs) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(p);
  }
  out += "} -> " + std::to_string(rhs);
  return out;
}

std::optional<Fd> ExtractFd(const Egd& egd) {
  if (egd.body().size() != 2) return std::nullopt;
  const Atom& a = egd.body()[0];
  const Atom& b = egd.body()[1];
  if (a.predicate() != b.predicate() || a.arity() != b.arity()) return std::nullopt;
  size_t n = a.arity();

  // All arguments must be variables, and within each atom linear (no repeats).
  std::unordered_set<Term, TermHash> seen_a, seen_b;
  for (size_t i = 0; i < n; ++i) {
    if (!a.args()[i].IsVariable() || !b.args()[i].IsVariable()) return std::nullopt;
    if (!seen_a.insert(a.args()[i]).second) return std::nullopt;
    if (!seen_b.insert(b.args()[i]).second) return std::nullopt;
  }

  std::set<size_t> shared;
  for (size_t i = 0; i < n; ++i) {
    if (a.args()[i] == b.args()[i]) {
      shared.insert(i);
    } else {
      // Non-shared positions must use variables private to their atom:
      // a cross-position share would encode a different constraint.
      if (seen_b.count(a.args()[i]) > 0 || seen_a.count(b.args()[i]) > 0) {
        return std::nullopt;
      }
    }
  }
  if (shared.empty() || shared.size() == n) return std::nullopt;

  // Conclusion: equates the two atoms' variables at one non-shared position.
  for (size_t i = 0; i < n; ++i) {
    if (shared.count(i) > 0) continue;
    bool forward = egd.left() == a.args()[i] && egd.right() == b.args()[i];
    bool backward = egd.left() == b.args()[i] && egd.right() == a.args()[i];
    if (forward || backward) {
      Fd fd;
      fd.relation = a.predicate();
      fd.lhs = shared;
      fd.rhs = i;
      return fd;
    }
  }
  return std::nullopt;
}

std::vector<Fd> ExtractFds(const DependencySet& sigma) {
  std::vector<Fd> out;
  for (const Dependency& dep : sigma) {
    if (!dep.IsEgd()) continue;
    std::optional<Fd> fd = ExtractFd(dep.egd());
    if (fd.has_value()) out.push_back(*fd);
  }
  return out;
}

std::set<size_t> AttributeClosure(const std::string& relation,
                                  const std::set<size_t>& attrs,
                                  const std::vector<Fd>& fds) {
  std::set<size_t> closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      if (fd.relation != relation) continue;
      if (closure.count(fd.rhs) > 0) continue;
      bool all_in = true;
      for (size_t p : fd.lhs) {
        if (closure.count(p) == 0) {
          all_in = false;
          break;
        }
      }
      if (all_in) {
        closure.insert(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool ImpliesFd(const std::vector<Fd>& fds, const Fd& candidate) {
  std::set<size_t> closure = AttributeClosure(candidate.relation, candidate.lhs, fds);
  return closure.count(candidate.rhs) > 0;
}

bool IsSuperkey(const std::string& relation, size_t arity, const std::set<size_t>& attrs,
                const std::vector<Fd>& fds) {
  std::set<size_t> closure = AttributeClosure(relation, attrs, fds);
  for (size_t i = 0; i < arity; ++i) {
    if (closure.count(i) == 0) return false;
  }
  return true;
}

bool IsKey(const std::string& relation, size_t arity, const std::set<size_t>& attrs,
           const std::vector<Fd>& fds) {
  if (attrs.empty()) return false;
  if (!IsSuperkey(relation, arity, attrs, fds)) return false;
  // Every proper subset obtained by removing one attribute must fail; by
  // monotonicity of closure this covers all proper subsets.
  for (size_t drop : attrs) {
    std::set<size_t> smaller = attrs;
    smaller.erase(drop);
    if (!smaller.empty() && IsSuperkey(relation, arity, smaller, fds)) return false;
  }
  return true;
}

std::vector<std::set<size_t>> FindKeys(const std::string& relation, size_t arity,
                                       const std::vector<Fd>& fds) {
  std::vector<std::set<size_t>> keys;
  // Enumerate subsets by increasing popcount so minimality is by
  // construction: a superkey containing an already-found key is skipped.
  std::vector<uint64_t> masks;
  for (uint64_t m = 1; m < (uint64_t(1) << arity); ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    int pa = __builtin_popcountll(a);
    int pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });
  std::vector<uint64_t> key_masks;
  for (uint64_t m : masks) {
    bool contains_key = false;
    for (uint64_t km : key_masks) {
      if ((m & km) == km) {
        contains_key = true;
        break;
      }
    }
    if (contains_key) continue;
    std::set<size_t> attrs;
    for (size_t i = 0; i < arity; ++i) {
      if ((m >> i) & 1) attrs.insert(i);
    }
    if (IsSuperkey(relation, arity, attrs, fds)) {
      keys.push_back(attrs);
      key_masks.push_back(m);
    }
  }
  return keys;
}

}  // namespace sqleq
