#include "constraints/regularize.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace sqleq {
namespace {

/// Union-find over head-atom indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// Groups the head atoms of `tgd` into connected components under shared
/// existential variables. Two atoms are connected when some existential
/// variable occurs in both (shared universal variables do NOT connect —
/// that is exactly what makes a partition "nonshared", Def 4.1).
std::vector<std::vector<size_t>> HeadComponents(const Tgd& tgd) {
  const std::vector<Atom>& head = tgd.head();
  std::unordered_set<Term, TermHash> existential;
  for (Term v : tgd.ExistentialVariables()) existential.insert(v);

  UnionFind uf(head.size());
  std::unordered_map<Term, size_t, TermHash> first_owner;
  for (size_t i = 0; i < head.size(); ++i) {
    for (Term t : head[i].args()) {
      if (!t.IsVariable() || existential.count(t) == 0) continue;
      auto [it, inserted] = first_owner.emplace(t, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }

  std::unordered_map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < head.size(); ++i) groups[uf.Find(i)].push_back(i);
  std::vector<std::vector<size_t>> out;
  // Deterministic order: by smallest atom index in each component.
  std::vector<size_t> roots;
  for (const auto& [root, members] : groups) roots.push_back(members.front());
  std::sort(roots.begin(), roots.end());
  for (size_t first : roots) {
    out.push_back(groups[uf.Find(first)]);
  }
  return out;
}

}  // namespace

bool IsRegularized(const Tgd& tgd) {
  if (tgd.head().size() <= 1) return true;
  return HeadComponents(tgd).size() == 1;
}

bool IsRegularizedSet(const DependencySet& sigma) {
  for (const Dependency& dep : sigma) {
    if (dep.IsTgd() && !IsRegularized(dep.tgd())) return false;
  }
  return true;
}

std::vector<Tgd> RegularizeTgd(const Tgd& tgd) {
  std::vector<std::vector<size_t>> components = HeadComponents(tgd);
  std::vector<Tgd> out;
  out.reserve(components.size());
  for (const std::vector<size_t>& component : components) {
    std::vector<Atom> head;
    head.reserve(component.size());
    for (size_t i : component) head.push_back(tgd.head()[i]);
    // Create cannot fail: body and component head are nonempty.
    out.push_back(std::move(Tgd::Create(tgd.body(), std::move(head))).value());
  }
  return out;
}

DependencySet RegularizeSigma(const DependencySet& sigma) {
  DependencySet out;
  for (const Dependency& dep : sigma) {
    if (dep.IsEgd()) {
      out.push_back(dep);
      continue;
    }
    std::vector<Tgd> pieces = RegularizeTgd(dep.tgd());
    if (pieces.size() == 1) {
      out.push_back(dep);
      continue;
    }
    for (size_t i = 0; i < pieces.size(); ++i) {
      std::string label = dep.label();
      if (!label.empty()) label += "." + std::to_string(i + 1);
      out.push_back(Dependency::FromTgd(std::move(pieces[i]), std::move(label)));
    }
  }
  return out;
}

}  // namespace sqleq
