#include "constraints/weak_acyclicity.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace sqleq {
namespace {

/// The tgd indices of `sigma` restricted to `members` (all of Σ when
/// `members` is empty is NOT implied — callers pass the full index range).
std::vector<PositionEdge> BuildGraphForSubset(const DependencySet& sigma,
                                              const std::vector<size_t>& members) {
  DependencySet subset;
  subset.reserve(members.size());
  for (size_t i : members) subset.push_back(sigma[i]);
  return BuildDependencyGraph(subset);
}

/// Shortest path from `src` to `dst` along `edges`, as the edge sequence,
/// or nullopt when unreachable. BFS with parent-edge tracking keeps the
/// witness minimal and deterministic.
std::optional<std::vector<PositionEdge>> FindPath(
    const std::vector<PositionEdge>& edges, const Position& src,
    const Position& dst) {
  if (src == dst) return std::vector<PositionEdge>{};
  std::map<Position, std::vector<const PositionEdge*>> adj;
  for (const PositionEdge& e : edges) adj[e.from].push_back(&e);

  std::map<Position, const PositionEdge*> parent;  // position -> edge used to reach it
  std::vector<Position> frontier{src};
  std::set<Position> visited{src};
  while (!frontier.empty()) {
    std::vector<Position> next;
    for (const Position& cur : frontier) {
      auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const PositionEdge* e : it->second) {
        if (!visited.insert(e->to).second) continue;
        parent[e->to] = e;
        if (e->to == dst) {
          std::vector<PositionEdge> path;
          Position at = dst;
          while (!(at == src)) {
            const PositionEdge* pe = parent[at];
            path.push_back(*pe);
            at = pe->from;
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        next.push_back(e->to);
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;
}

/// A special-edge cycle in the given edge set, or nullopt.
std::optional<SpecialCycle> FindSpecialCycleInGraph(
    const std::vector<PositionEdge>& edges) {
  for (const PositionEdge& e : edges) {
    if (!e.special) continue;
    std::optional<std::vector<PositionEdge>> back = FindPath(edges, e.to, e.from);
    if (!back.has_value()) continue;
    SpecialCycle cycle;
    cycle.edges.push_back(e);
    cycle.edges.insert(cycle.edges.end(), back->begin(), back->end());
    return cycle;
  }
  return std::nullopt;
}

}  // namespace

std::vector<WrittenAtomView> DependencyWrites(const Dependency& dep) {
  std::vector<WrittenAtomView> out;
  if (dep.IsTgd()) {
    for (const Atom& h : dep.tgd().head()) out.push_back({&h, false});
  } else {
    for (const Atom& b : dep.egd().body()) out.push_back({&b, true});
  }
  return out;
}

bool MayMatchAtom(const WrittenAtomView& written, const Atom& read) {
  const Atom& w = *written.atom;
  if (w.predicate() != read.predicate() || w.arity() != read.arity()) return false;
  if (written.wildcard) return true;
  for (size_t i = 0; i < w.arity(); ++i) {
    const Term& a = w.args()[i];
    const Term& b = read.args()[i];
    if (!a.IsVariable() && !b.IsVariable() && !(a == b)) return false;
  }
  return true;
}

/// Iterative Tarjan over the may-match firing graph.
std::vector<std::vector<size_t>> FiringComponents(const DependencySet& sigma) {
  size_t n = sigma.size();
  std::vector<std::vector<WrittenAtomView>> writes(n);
  for (size_t i = 0; i < n; ++i) writes[i] = DependencyWrites(sigma[i]);
  std::vector<std::vector<size_t>> succ(n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      bool fires = false;
      for (const WrittenAtomView& w : writes[a]) {
        for (const Atom& r : sigma[b].body()) {
          if (MayMatchAtom(w, r)) {
            fires = true;
            break;
          }
        }
        if (fires) break;
      }
      if (fires) succ[a].push_back(b);
    }
  }

  // Iterative Tarjan SCC.
  constexpr size_t kUnvisited = static_cast<size_t>(-1);
  std::vector<size_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<std::vector<size_t>> components;
  size_t next_index = 0;

  struct Frame {
    size_t v;
    size_t child = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> frames{{root}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < succ[f.v].size()) {
        size_t w = succ[f.v][f.child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          std::vector<size_t> component;
          size_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
          } while (w != f.v);
          std::sort(component.begin(), component.end());
          components.push_back(std::move(component));
        }
        size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }
  std::sort(components.begin(), components.end());
  return components;
}

std::string SpecialCycle::ToString() const {
  if (edges.empty()) return "(empty cycle)";
  std::string out = edges.front().from.ToString();
  for (const PositionEdge& e : edges) {
    out += e.special ? " =>* " : " -> ";
    out += e.to.ToString();
  }
  return out;
}

std::vector<PositionEdge> BuildDependencyGraph(const DependencySet& sigma) {
  std::vector<PositionEdge> edges;
  for (const Dependency& dep : sigma) {
    if (!dep.IsTgd()) continue;
    const Tgd& tgd = dep.tgd();
    std::unordered_set<Term, TermHash> existential;
    for (Term v : tgd.ExistentialVariables()) existential.insert(v);

    // For every universal variable X occurring in the head, and for every
    // occurrence of X in the body at position (R, i):
    //   (a) regular edge to each head occurrence of X,
    //   (b) special edge to each head position holding an existential var.
    std::unordered_set<Term, TermHash> head_universals;
    for (const Atom& h : tgd.head()) {
      for (Term t : h.args()) {
        if (t.IsVariable() && existential.count(t) == 0) head_universals.insert(t);
      }
    }
    for (const Atom& b : tgd.body()) {
      for (size_t i = 0; i < b.arity(); ++i) {
        Term x = b.args()[i];
        if (!x.IsVariable() || head_universals.count(x) == 0) continue;
        Position from{b.predicate(), i};
        for (const Atom& h : tgd.head()) {
          for (size_t j = 0; j < h.arity(); ++j) {
            Term y = h.args()[j];
            if (!y.IsVariable()) continue;
            Position to{h.predicate(), j};
            if (y == x) {
              edges.push_back({from, to, /*special=*/false});
            } else if (existential.count(y) > 0) {
              edges.push_back({from, to, /*special=*/true});
            }
          }
        }
      }
    }
  }
  return edges;
}

std::optional<SpecialCycle> FindSpecialCycle(const DependencySet& sigma) {
  return FindSpecialCycleInGraph(BuildDependencyGraph(sigma));
}

bool IsWeaklyAcyclic(const DependencySet& sigma) {
  return !FindSpecialCycle(sigma).has_value();
}

StratificationResult CheckStratification(const DependencySet& sigma) {
  StratificationResult out;
  out.weakly_acyclic = IsWeaklyAcyclic(sigma);
  if (out.weakly_acyclic) {
    out.stratified = true;
    return out;
  }
  out.stratified = true;
  for (const std::vector<size_t>& component : FiringComponents(sigma)) {
    std::vector<PositionEdge> edges = BuildGraphForSubset(sigma, component);
    std::optional<SpecialCycle> cycle = FindSpecialCycleInGraph(edges);
    if (!cycle.has_value()) continue;
    out.stratified = false;
    out.witness = std::move(cycle);
    out.offending_component = component;
    return out;
  }
  // Not weakly acyclic, yet every firing component is: stratified, chase
  // still terminates. Surface the global cycle as an informational witness.
  out.witness = FindSpecialCycle(sigma);
  return out;
}

}  // namespace sqleq
