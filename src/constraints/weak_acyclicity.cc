#include "constraints/weak_acyclicity.h"

#include <map>
#include <set>
#include <unordered_set>

namespace sqleq {

std::vector<PositionEdge> BuildDependencyGraph(const DependencySet& sigma) {
  std::vector<PositionEdge> edges;
  for (const Dependency& dep : sigma) {
    if (!dep.IsTgd()) continue;
    const Tgd& tgd = dep.tgd();
    std::unordered_set<Term, TermHash> existential;
    for (Term v : tgd.ExistentialVariables()) existential.insert(v);

    // For every universal variable X occurring in the head, and for every
    // occurrence of X in the body at position (R, i):
    //   (a) regular edge to each head occurrence of X,
    //   (b) special edge to each head position holding an existential var.
    std::unordered_set<Term, TermHash> head_universals;
    for (const Atom& h : tgd.head()) {
      for (Term t : h.args()) {
        if (t.IsVariable() && existential.count(t) == 0) head_universals.insert(t);
      }
    }
    for (const Atom& b : tgd.body()) {
      for (size_t i = 0; i < b.arity(); ++i) {
        Term x = b.args()[i];
        if (!x.IsVariable() || head_universals.count(x) == 0) continue;
        Position from{b.predicate(), i};
        for (const Atom& h : tgd.head()) {
          for (size_t j = 0; j < h.arity(); ++j) {
            Term y = h.args()[j];
            if (!y.IsVariable()) continue;
            Position to{h.predicate(), j};
            if (y == x) {
              edges.push_back({from, to, /*special=*/false});
            } else if (existential.count(y) > 0) {
              edges.push_back({from, to, /*special=*/true});
            }
          }
        }
      }
    }
  }
  return edges;
}

bool IsWeaklyAcyclic(const DependencySet& sigma) {
  std::vector<PositionEdge> edges = BuildDependencyGraph(sigma);
  // Adjacency over all mentioned positions.
  std::map<Position, std::set<Position>> adj;
  for (const PositionEdge& e : edges) adj[e.from].insert(e.to);

  // A cycle goes through special edge u →* v iff v can reach u.
  auto reaches = [&adj](const Position& src, const Position& dst) {
    std::set<Position> visited;
    std::vector<Position> stack{src};
    while (!stack.empty()) {
      Position cur = stack.back();
      stack.pop_back();
      if (cur == dst) return true;
      if (!visited.insert(cur).second) continue;
      auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const Position& next : it->second) {
        if (visited.count(next) == 0) stack.push_back(next);
      }
    }
    return false;
  };

  for (const PositionEdge& e : edges) {
    if (e.special && reaches(e.to, e.from)) return false;
  }
  return true;
}

}  // namespace sqleq
