#include "constraints/dependency.h"

#include <cassert>
#include <unordered_set>

#include "ir/parser.h"

namespace sqleq {

Result<Tgd> Tgd::Create(std::vector<Atom> body, std::vector<Atom> head) {
  if (body.empty()) return Status::InvalidArgument("tgd body may not be empty");
  if (head.empty()) return Status::InvalidArgument("tgd head may not be empty");
  return Tgd(std::move(body), std::move(head));
}

std::vector<Term> Tgd::ExistentialVariables() const {
  std::unordered_set<Term, TermHash> body_vars;
  for (const Atom& a : body_) {
    for (Term t : a.args()) {
      if (t.IsVariable()) body_vars.insert(t);
    }
  }
  std::vector<Term> out;
  std::unordered_set<Term, TermHash> seen;
  for (const Atom& a : head_) {
    for (Term t : a.args()) {
      if (t.IsVariable() && body_vars.count(t) == 0 && seen.insert(t).second) {
        out.push_back(t);
      }
    }
  }
  return out;
}

std::vector<Term> Tgd::FrontierVariables() const {
  std::unordered_set<Term, TermHash> head_vars;
  for (const Atom& a : head_) {
    for (Term t : a.args()) {
      if (t.IsVariable()) head_vars.insert(t);
    }
  }
  std::vector<Term> out;
  std::unordered_set<Term, TermHash> seen;
  for (const Atom& a : body_) {
    for (Term t : a.args()) {
      if (t.IsVariable() && head_vars.count(t) > 0 && seen.insert(t).second) {
        out.push_back(t);
      }
    }
  }
  return out;
}

std::string Tgd::ToString() const {
  std::string out = AtomsToString(body_);
  out += " -> ";
  std::vector<Term> ex = ExistentialVariables();
  if (!ex.empty()) {
    out += "EXISTS ";
    for (size_t i = 0; i < ex.size(); ++i) {
      if (i > 0) out += ", ";
      out += ex[i].ToString();
    }
    out += ": ";
  }
  out += AtomsToString(head_);
  return out;
}

Result<Egd> Egd::Create(std::vector<Atom> body, Term left, Term right) {
  if (body.empty()) return Status::InvalidArgument("egd body may not be empty");
  if (left == right) {
    return Status::InvalidArgument("egd equates a term with itself: " + left.ToString());
  }
  std::unordered_set<Term, TermHash> body_vars;
  for (const Atom& a : body) {
    for (Term t : a.args()) {
      if (t.IsVariable()) body_vars.insert(t);
    }
  }
  for (Term side : {left, right}) {
    if (side.IsVariable() && body_vars.count(side) == 0) {
      return Status::InvalidArgument("egd equation variable " + side.ToString() +
                                     " does not occur in the body");
    }
  }
  return Egd(std::move(body), left, right);
}

std::string Egd::ToString() const {
  return AtomsToString(body_) + " -> " + left_.ToString() + " = " + right_.ToString();
}

Dependency Dependency::FromTgd(Tgd tgd, std::string label) {
  return Dependency(Kind::kTgd, {std::move(tgd)}, {}, std::move(label));
}

Dependency Dependency::FromEgd(Egd egd, std::string label) {
  return Dependency(Kind::kEgd, {}, {std::move(egd)}, std::move(label));
}

const Tgd& Dependency::tgd() const {
  assert(IsTgd());
  return tgd_[0];
}

const Egd& Dependency::egd() const {
  assert(IsEgd());
  return egd_[0];
}

Dependency Dependency::WithLabel(std::string label) const {
  Dependency copy = *this;
  copy.label_ = std::move(label);
  return copy;
}

const std::vector<Atom>& Dependency::body() const {
  return IsTgd() ? tgd_[0].body() : egd_[0].body();
}

std::string Dependency::ToString() const {
  std::string out;
  if (!label_.empty()) {
    out += '[';
    out += label_;
    out += "] ";
  }
  out += IsTgd() ? tgd_[0].ToString() : egd_[0].ToString();
  return out;
}

Result<std::vector<Dependency>> ParseDependency(std::string_view text, std::string label) {
  SQLEQ_ASSIGN_OR_RETURN(ParsedDependency parsed, ParseDependencyText(text));
  std::vector<Dependency> out;
  if (parsed.is_egd()) {
    for (size_t i = 0; i < parsed.equations.size(); ++i) {
      SQLEQ_ASSIGN_OR_RETURN(Egd egd, Egd::Create(parsed.body, parsed.equations[i].first,
                                                  parsed.equations[i].second));
      std::string l = label;
      if (parsed.equations.size() > 1 && !label.empty()) {
        l += "_" + std::to_string(i + 1);
      }
      out.push_back(Dependency::FromEgd(std::move(egd), std::move(l)));
    }
  } else {
    SQLEQ_ASSIGN_OR_RETURN(Tgd tgd,
                           Tgd::Create(std::move(parsed.body), std::move(parsed.head_atoms)));
    out.push_back(Dependency::FromTgd(std::move(tgd), std::move(label)));
  }
  return out;
}

Result<DependencySet> ParseSigma(const std::vector<std::string>& statements) {
  DependencySet sigma;
  for (size_t i = 0; i < statements.size(); ++i) {
    SQLEQ_ASSIGN_OR_RETURN(
        std::vector<Dependency> deps,
        ParseDependency(statements[i], "sigma" + std::to_string(i + 1)));
    for (Dependency& d : deps) sigma.push_back(std::move(d));
  }
  return sigma;
}

std::string SigmaToString(const DependencySet& sigma) {
  std::string out;
  for (const Dependency& d : sigma) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace sqleq
