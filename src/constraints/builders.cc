#include "constraints/builders.h"

#include <algorithm>
#include <set>

namespace sqleq {

Result<std::vector<Dependency>> MakeKeyEgds(const std::string& relation, size_t arity,
                                            const std::vector<size_t>& key_positions,
                                            const std::string& label_prefix) {
  if (key_positions.empty()) {
    return Status::InvalidArgument("key of '" + relation + "' may not be empty");
  }
  std::set<size_t> key(key_positions.begin(), key_positions.end());
  for (size_t p : key) {
    if (p >= arity) {
      return Status::InvalidArgument("key position " + std::to_string(p) +
                                     " out of range for arity " + std::to_string(arity));
    }
  }
  std::vector<Dependency> out;
  for (size_t dep_pos = 0; dep_pos < arity; ++dep_pos) {
    if (key.count(dep_pos) > 0) continue;
    std::vector<Term> args1, args2;
    for (size_t i = 0; i < arity; ++i) {
      if (key.count(i) > 0) {
        Term shared = Term::Var("K" + std::to_string(i + 1));
        args1.push_back(shared);
        args2.push_back(shared);
      } else {
        args1.push_back(Term::Var("A" + std::to_string(i + 1)));
        args2.push_back(Term::Var("B" + std::to_string(i + 1)));
      }
    }
    SQLEQ_ASSIGN_OR_RETURN(
        Egd egd, Egd::Create({Atom(relation, args1), Atom(relation, args2)},
                             args1[dep_pos], args2[dep_pos]));
    std::string label = label_prefix;
    if (!label.empty()) label += "_" + std::to_string(dep_pos);
    out.push_back(Dependency::FromEgd(std::move(egd), std::move(label)));
  }
  if (out.empty()) {
    return Status::InvalidArgument("key of '" + relation +
                                   "' covers all attributes; no egd needed");
  }
  return out;
}

Result<Dependency> MakeInclusionDependency(const std::string& src, size_t src_arity,
                                           const std::vector<size_t>& src_positions,
                                           const std::string& dst, size_t dst_arity,
                                           const std::vector<size_t>& dst_positions,
                                           const std::string& label) {
  if (src_positions.size() != dst_positions.size() || src_positions.empty()) {
    return Status::InvalidArgument(
        "inclusion dependency requires matching nonempty position lists");
  }
  for (size_t p : src_positions) {
    if (p >= src_arity) {
      return Status::InvalidArgument("source position out of range");
    }
  }
  for (size_t p : dst_positions) {
    if (p >= dst_arity) {
      return Status::InvalidArgument("destination position out of range");
    }
  }
  std::vector<Term> src_args;
  for (size_t i = 0; i < src_arity; ++i) src_args.push_back(Term::Var("S" + std::to_string(i + 1)));
  std::vector<Term> dst_args;
  for (size_t i = 0; i < dst_arity; ++i) dst_args.push_back(Term::Var("D" + std::to_string(i + 1)));
  for (size_t k = 0; k < src_positions.size(); ++k) {
    dst_args[dst_positions[k]] = src_args[src_positions[k]];
  }
  SQLEQ_ASSIGN_OR_RETURN(Tgd tgd, Tgd::Create({Atom(src, std::move(src_args))},
                                              {Atom(dst, std::move(dst_args))}));
  return Dependency::FromTgd(std::move(tgd), label);
}

Result<Dependency> MakeForeignKey(const std::string& src, size_t src_arity,
                                  const std::vector<size_t>& src_positions,
                                  const std::string& dst, size_t dst_arity,
                                  const std::vector<size_t>& dst_positions,
                                  const std::string& label) {
  return MakeInclusionDependency(src, src_arity, src_positions, dst, dst_arity,
                                 dst_positions, label);
}

Result<DependencySet> KeyEgdsFromSchema(const Schema& schema) {
  DependencySet out;
  for (const RelationInfo& info : schema.Relations()) {
    for (size_t k = 0; k < info.declared_keys.size(); ++k) {
      // A key covering all attributes yields no egd; skip silently.
      if (info.declared_keys[k].size() == info.arity) continue;
      SQLEQ_ASSIGN_OR_RETURN(
          std::vector<Dependency> egds,
          MakeKeyEgds(info.name, info.arity, info.declared_keys[k],
                      "key_" + info.name + (k == 0 ? "" : "_" + std::to_string(k + 1))));
      for (Dependency& d : egds) out.push_back(std::move(d));
    }
  }
  return out;
}

}  // namespace sqleq
