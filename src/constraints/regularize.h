// Regularization of tgds (Definition 4.1): a tgd is regularized when its
// head admits no *nonshared* partition — no split of the head atoms into two
// nonempty groups whose only common variables are universally quantified.
// Chasing with a non-regularized tgd is unsound under bag/bag-set semantics
// (Examples 4.4–4.5); sound chase therefore works with the regularized
// version Σ′ of Σ, which is unique and instance-equivalent (Prop 4.1).
#ifndef SQLEQ_CONSTRAINTS_REGULARIZE_H_
#define SQLEQ_CONSTRAINTS_REGULARIZE_H_

#include <vector>

#include "constraints/dependency.h"

namespace sqleq {

/// True iff `tgd` is regularized (Def 4.1). A single-atom head is trivially
/// regularized.
bool IsRegularized(const Tgd& tgd);

/// True iff every tgd in Σ is regularized.
bool IsRegularizedSet(const DependencySet& sigma);

/// The regularized set Σ_σ of one tgd: the head is split into its connected
/// components under the "shares an existential variable" relation, one tgd
/// per component (all with σ's body). Returns {σ} when σ is already
/// regularized. The result is unique.
std::vector<Tgd> RegularizeTgd(const Tgd& tgd);

/// The regularized version Σ′ of Σ (§4.2.1): egds pass through; each tgd is
/// replaced by its regularized set. Labels become "<label>.1", "<label>.2",
/// ... when a tgd actually splits.
DependencySet RegularizeSigma(const DependencySet& sigma);

}  // namespace sqleq

#endif  // SQLEQ_CONSTRAINTS_REGULARIZE_H_
