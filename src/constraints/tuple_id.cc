#include "constraints/tuple_id.h"

#include <algorithm>
#include <unordered_set>

namespace sqleq {
namespace {

bool IsTracked(const std::vector<std::string>& tracked, const std::string& name) {
  return tracked.empty() ||
         std::find(tracked.begin(), tracked.end(), name) != tracked.end();
}

}  // namespace

Result<Schema> ExpandSchemaWithTupleIds(const Schema& schema,
                                        const std::vector<std::string>& tracked) {
  for (const std::string& name : tracked) {
    if (!schema.HasRelation(name)) {
      return Status::NotFound("cannot track unknown relation '" + name + "'");
    }
  }
  Schema out;
  for (const RelationInfo& info : schema.Relations()) {
    std::vector<std::string> attrs = info.attributes;
    size_t arity = info.arity;
    if (IsTracked(tracked, info.name)) {
      attrs.push_back(kTupleIdAttribute);
      ++arity;
    }
    SQLEQ_RETURN_IF_ERROR(out.AddRelation(info.name, arity, std::move(attrs),
                                          /*set_valued=*/false));
  }
  return out;
}

Result<Dependency> MakeSetEnforcingEgd(const std::string& relation,
                                       size_t visible_arity) {
  if (visible_arity == 0) {
    return Status::InvalidArgument("visible arity must be >= 1");
  }
  std::vector<Term> args1, args2;
  for (size_t i = 0; i < visible_arity; ++i) {
    Term shared = Term::Var("X" + std::to_string(i + 1));
    args1.push_back(shared);
    args2.push_back(shared);
  }
  Term t1 = Term::Var("Tid1");
  Term t2 = Term::Var("Tid2");
  args1.push_back(t1);
  args2.push_back(t2);
  SQLEQ_ASSIGN_OR_RETURN(
      Egd egd, Egd::Create({Atom(relation, args1), Atom(relation, args2)}, t1, t2));
  return Dependency::FromEgd(std::move(egd), "set_" + relation);
}

Result<Database> AssignTupleIds(const Database& db, const Schema& expanded_schema,
                                const std::vector<std::string>& tracked) {
  Database out(expanded_schema);
  int64_t next_id = 1;
  for (const RelationInfo& info : db.schema().Relations()) {
    SQLEQ_ASSIGN_OR_RETURN(RelationInstance rel, db.GetRelation(info.name));
    bool is_tracked = IsTracked(tracked, info.name);
    for (const auto& [tuple, count] : rel.bag().counts()) {
      if (!is_tracked) {
        SQLEQ_RETURN_IF_ERROR(out.Insert(info.name, tuple, count));
        continue;
      }
      for (uint64_t c = 0; c < count; ++c) {
        Tuple expanded = tuple;
        expanded.push_back(Term::Int(next_id++));
        SQLEQ_RETURN_IF_ERROR(out.Insert(info.name, expanded, 1));
      }
    }
  }
  return out;
}

Result<Database> ProjectOutTupleIds(const Database& expanded_db, const Schema& schema,
                                    const std::vector<std::string>& tracked) {
  Database out(schema);
  for (const RelationInfo& info : schema.Relations()) {
    SQLEQ_ASSIGN_OR_RETURN(RelationInstance rel, expanded_db.GetRelation(info.name));
    bool is_tracked = IsTracked(tracked, info.name);
    for (const auto& [tuple, count] : rel.bag().counts()) {
      Tuple projected = tuple;
      if (is_tracked) {
        if (projected.size() != info.arity + 1) {
          return Status::InvalidArgument("relation '" + info.name +
                                         "' does not carry a tuple-ID column");
        }
        projected.pop_back();
      }
      SQLEQ_RETURN_IF_ERROR(out.Insert(info.name, projected, count));
    }
  }
  return out;
}

Result<bool> TupleIdsAreUnique(const Database& expanded_db, const std::string& relation) {
  SQLEQ_ASSIGN_OR_RETURN(RelationInstance rel, expanded_db.GetRelation(relation));
  if (rel.arity() == 0) return Status::InvalidArgument("empty relation arity");
  // |coreSet(Q_tid(D',B))|: distinct tuple-ID values.
  std::unordered_set<Term, TermHash> distinct_ids;
  // |Q_vals(D',B)|: total row count (bag projection keeps duplicates).
  uint64_t total_rows = 0;
  for (const auto& [tuple, count] : rel.bag().counts()) {
    distinct_ids.insert(tuple.back());
    total_rows += count;
  }
  return distinct_ids.size() == total_rows;
}

}  // namespace sqleq
