// Functional dependencies and keys (Appendix B): recognizing fd-shaped egds,
// attribute closure, implied fds, superkeys, and keys.
#ifndef SQLEQ_CONSTRAINTS_KEYS_H_
#define SQLEQ_CONSTRAINTS_KEYS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "constraints/dependency.h"

namespace sqleq {

/// A functional dependency on one relation: attributes at positions `lhs`
/// determine the attribute at position `rhs` (0-based).
struct Fd {
  std::string relation;
  std::set<size_t> lhs;
  size_t rhs = 0;

  std::string ToString() const;

  friend bool operator==(const Fd& a, const Fd& b) {
    return a.relation == b.relation && a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

/// Recognizes an egd of the textbook fd shape (App. B):
///   p(X̄, Y, Z̄) ∧ p(X̄, Y', Z̄') → Y = Y'
/// i.e. two atoms of the same predicate, all arguments distinct variables,
/// agreeing exactly on the lhs positions, with the conclusion equating the
/// two atoms' variables at one non-lhs position. Returns nullopt for egds of
/// any other shape (they are still valid egds, just not fds).
std::optional<Fd> ExtractFd(const Egd& egd);

/// All fds recognized among the egds of Σ (tgds are skipped).
std::vector<Fd> ExtractFds(const DependencySet& sigma);

/// The closure of `attrs` under the fds of `relation` in `fds`: the set of
/// positions functionally determined by `attrs`.
std::set<size_t> AttributeClosure(const std::string& relation,
                                  const std::set<size_t>& attrs,
                                  const std::vector<Fd>& fds);

/// True iff `candidate` is implied by `fds` (Def B.1), via closure.
bool ImpliesFd(const std::vector<Fd>& fds, const Fd& candidate);

/// True iff positions `attrs` form a superkey of `relation` (arity `arity`)
/// under `fds` (Def B.2). The full attribute set is always a superkey.
bool IsSuperkey(const std::string& relation, size_t arity, const std::set<size_t>& attrs,
                const std::vector<Fd>& fds);

/// True iff `attrs` is a key: a superkey none of whose proper nonempty
/// subsets is a superkey (Def B.3).
bool IsKey(const std::string& relation, size_t arity, const std::set<size_t>& attrs,
           const std::vector<Fd>& fds);

/// All (minimal) keys of `relation`, found by breadth-first search over
/// attribute subsets in increasing size. Exponential in arity; arities in
/// this domain are tiny.
std::vector<std::set<size_t>> FindKeys(const std::string& relation, size_t arity,
                                       const std::vector<Fd>& fds);

}  // namespace sqleq

#endif  // SQLEQ_CONSTRAINTS_KEYS_H_
