// Convenience constructors for the dependency shapes that dominate practice:
// key fds, inclusion dependencies, and foreign keys.
#ifndef SQLEQ_CONSTRAINTS_BUILDERS_H_
#define SQLEQ_CONSTRAINTS_BUILDERS_H_

#include <string>
#include <vector>

#include "constraints/dependency.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// Egds declaring `key_positions` a superkey of `relation` (arity `arity`):
/// one fd σ(K|A) per attribute A outside the key (App. B notation).
Result<std::vector<Dependency>> MakeKeyEgds(const std::string& relation, size_t arity,
                                            const std::vector<size_t>& key_positions,
                                            const std::string& label_prefix = "");

/// An inclusion dependency: π_{src_positions}(src) ⊆ π_{dst_positions}(dst),
/// as a single-atom-per-side tgd with existential variables for the
/// non-referenced dst attributes.
Result<Dependency> MakeInclusionDependency(const std::string& src, size_t src_arity,
                                           const std::vector<size_t>& src_positions,
                                           const std::string& dst, size_t dst_arity,
                                           const std::vector<size_t>& dst_positions,
                                           const std::string& label = "");

/// Foreign key src(src_positions) REFERENCES dst(dst_positions): the
/// inclusion dependency above. (SQL additionally requires dst_positions to
/// be a key of dst; pair with MakeKeyEgds.)
Result<Dependency> MakeForeignKey(const std::string& src, size_t src_arity,
                                  const std::vector<size_t>& src_positions,
                                  const std::string& dst, size_t dst_arity,
                                  const std::vector<size_t>& dst_positions,
                                  const std::string& label = "");

/// All key egds implied by a schema's declared keys.
Result<DependencySet> KeyEgdsFromSchema(const Schema& schema);

}  // namespace sqleq

#endif  // SQLEQ_CONSTRAINTS_BUILDERS_H_
