// Appendix C: expressing "relation R is set valued in all instances" as an
// egd, via tuple IDs. The schema D is expanded to D′ by appending a
// tuple-ID attribute to each tracked relation; Definition C.1 requires all
// tuple IDs to be distinct within an instance; the set-enforcing egd σ_tid
// then forces tuples that agree on all visible attributes to agree on the
// tuple ID — i.e. to be the same tuple.
//
// Operationally, sqleq uses Schema::set_valued flags; this module proves the
// flags are definable inside the embedded-dependency formalism and provides
// the round-trip between D and D′ instances.
#ifndef SQLEQ_CONSTRAINTS_TUPLE_ID_H_
#define SQLEQ_CONSTRAINTS_TUPLE_ID_H_

#include <string>
#include <vector>

#include "constraints/dependency.h"
#include "db/database.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// Name of the appended tuple-ID attribute.
inline constexpr char kTupleIdAttribute[] = "tid";

/// Expands `schema` to D′: each relation in `tracked` (all relations if
/// empty) gains one trailing tuple-ID attribute. Set-valued flags are
/// cleared in D′ (set-valuedness is now enforced by egds, not flags).
Result<Schema> ExpandSchemaWithTupleIds(const Schema& schema,
                                        const std::vector<std::string>& tracked = {});

/// The set-enforcing egd σ_tid on `relation` of *expanded* arity `arity + 1`:
///   R(X1..Xk, T) ∧ R(X1..Xk, T') → T = T'.
/// Together with tuple-ID uniqueness (Def C.1) this forces the visible part
/// of R to be set valued under bag semantics.
Result<Dependency> MakeSetEnforcingEgd(const std::string& relation, size_t visible_arity);

/// Converts an instance of D into an instance of D′ by assigning a fresh
/// integer tuple ID to every copy of every tuple of each tracked relation.
Result<Database> AssignTupleIds(const Database& db, const Schema& expanded_schema,
                                const std::vector<std::string>& tracked = {});

/// Recovers the D instance from a D′ instance: evaluates the projection
/// query Q_vals (drop the trailing tuple-ID attribute) under bag semantics
/// on each tracked relation.
Result<Database> ProjectOutTupleIds(const Database& expanded_db, const Schema& schema,
                                    const std::vector<std::string>& tracked = {});

/// Checks Definition C.1 on one relation of a D′ instance:
///   |coreSet(Q_tid(D′,B))| == |Q_vals(D′,B)|,
/// i.e. tuple IDs are pairwise distinct across the bag.
Result<bool> TupleIdsAreUnique(const Database& expanded_db, const std::string& relation);

}  // namespace sqleq

#endif  // SQLEQ_CONSTRAINTS_TUPLE_ID_H_
