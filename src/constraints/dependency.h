// Embedded dependencies (§2.4): tuple-generating (tgd) and equality-
// generating (egd) dependencies. Every set of embedded dependencies is
// equivalent to a set of tgds and egds [Abiteboul-Hull-Vianu], and the paper
// (and this library) works with Σ in that normal form.
#ifndef SQLEQ_CONSTRAINTS_DEPENDENCY_H_
#define SQLEQ_CONSTRAINTS_DEPENDENCY_H_

#include <string>
#include <string_view>
#include <vector>

#include "ir/atom.h"
#include "ir/query.h"
#include "util/status.h"

namespace sqleq {

/// A tuple-generating dependency φ(X̄,Ȳ) → ∃Z̄ ψ(X̄,Z̄). The existential
/// variables are exactly the head variables that do not occur in the body.
class Tgd {
 public:
  /// Validates: nonempty body and head of relational atoms.
  static Result<Tgd> Create(std::vector<Atom> body, std::vector<Atom> head);

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Atom>& head() const { return head_; }

  /// Head variables absent from the body, first-occurrence order.
  std::vector<Term> ExistentialVariables() const;

  /// Body variables that occur in the head (the frontier), first-occurrence
  /// order.
  std::vector<Term> FrontierVariables() const;

  /// True iff the tgd has no existential variables ("full tgd").
  bool IsFull() const { return ExistentialVariables().empty(); }

  /// "p(X, Y) -> EXISTS Z: s(X, Z)".
  std::string ToString() const;

 private:
  Tgd(std::vector<Atom> body, std::vector<Atom> head)
      : body_(std::move(body)), head_(std::move(head)) {}

  std::vector<Atom> body_;
  std::vector<Atom> head_;
};

/// An equality-generating dependency φ(Ū) → U1 = U2.
class Egd {
 public:
  /// Validates: nonempty body; each side is a constant or a body variable;
  /// the two sides are not syntactically identical.
  static Result<Egd> Create(std::vector<Atom> body, Term left, Term right);

  const std::vector<Atom>& body() const { return body_; }
  Term left() const { return left_; }
  Term right() const { return right_; }

  /// "r(X, Y), r(X, Z) -> Y = Z".
  std::string ToString() const;

 private:
  Egd(std::vector<Atom> body, Term left, Term right)
      : body_(std::move(body)), left_(left), right_(right) {}

  std::vector<Atom> body_;
  Term left_;
  Term right_;
};

/// A tagged union of Tgd and Egd with an optional human-readable label
/// ("sigma1", "key_S", ...). Labels are carried through regularization so
/// provenance stays visible in chase traces.
class Dependency {
 public:
  enum class Kind { kTgd, kEgd };

  static Dependency FromTgd(Tgd tgd, std::string label = "");
  static Dependency FromEgd(Egd egd, std::string label = "");

  Kind kind() const { return kind_; }
  bool IsTgd() const { return kind_ == Kind::kTgd; }
  bool IsEgd() const { return kind_ == Kind::kEgd; }

  /// Requires IsTgd() / IsEgd() respectively.
  const Tgd& tgd() const;
  const Egd& egd() const;

  const std::string& label() const { return label_; }
  Dependency WithLabel(std::string label) const;

  const std::vector<Atom>& body() const;

  /// "[label] body -> head".
  std::string ToString() const;

 private:
  Dependency(Kind kind, std::vector<Tgd> tgd, std::vector<Egd> egd, std::string label)
      : kind_(kind), tgd_(std::move(tgd)), egd_(std::move(egd)), label_(std::move(label)) {}

  Kind kind_;
  // Exactly one of these holds one element (poor-man's variant keeps the
  // class copyable without heap indirection gymnastics).
  std::vector<Tgd> tgd_;
  std::vector<Egd> egd_;
  std::string label_;
};

/// A finite set Σ of embedded dependencies.
using DependencySet = std::vector<Dependency>;

/// Parses one dependency statement. A tgd parses to one Dependency; an egd
/// conclusion with k equations parses to k egd Dependencies (labelled
/// "<label>", "<label>_2", ...).
Result<std::vector<Dependency>> ParseDependency(std::string_view text,
                                                std::string label = "");

/// Parses a whole Σ, one statement per element; labels default to
/// "sigma1".."sigmaN".
Result<DependencySet> ParseSigma(const std::vector<std::string>& statements);

/// Renders Σ one dependency per line.
std::string SigmaToString(const DependencySet& sigma);

}  // namespace sqleq

#endif  // SQLEQ_CONSTRAINTS_DEPENDENCY_H_
