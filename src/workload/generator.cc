#include "workload/generator.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "chase/chase_cache.h"
#include "chase/chase_plan.h"
#include "util/rng.h"

namespace sqleq {
namespace workload {
namespace {

/// Occurrence count of every variable across the body and head — the
/// "lone variable" test the fold/collapse transforms rely on: a variable
/// occurring exactly once (in the atom being dropped) maps freely onto the
/// chase's fresh nulls, so dropping the atom preserves Σ-equivalence.
std::unordered_map<Term, size_t, TermHash> VariableOccurrences(
    const ConjunctiveQuery& q) {
  std::unordered_map<Term, size_t, TermHash> counts;
  for (const Atom& a : q.body()) {
    for (Term t : a.args()) {
      if (t.IsVariable()) ++counts[t];
    }
  }
  for (Term t : q.head()) {
    if (t.IsVariable()) ++counts[t];
  }
  return counts;
}

/// The generator's variable factory: deterministic names, no dependence on
/// the process-global FreshVar counter, so the same seed reproduces the
/// same corpus byte for byte in any process.
class VarFactory {
 public:
  Term Next() { return Term::Var("V" + std::to_string(counter_++)); }

 private:
  size_t counter_ = 0;
};

/// All FK edges incident to `relation` (as src or dst), by index into fks.
std::vector<size_t> IncidentEdges(const std::vector<ForeignKeyEdge>& fks,
                                  const std::string& relation) {
  std::vector<size_t> out;
  for (size_t i = 0; i < fks.size(); ++i) {
    if (fks[i].src == relation || fks[i].dst == relation) out.push_back(i);
  }
  return out;
}

class Generator {
 public:
  Generator(const WorkloadOptions& options, SchemaTemplate tmpl)
      : options_(options), tmpl_(std::move(tmpl)), rng_(options.seed) {
    relations_ = tmpl_.catalog.schema.RelationNames();
    plan_ = std::make_unique<ChasePlan>(tmpl_.catalog.sigma, Semantics::kSet,
                                        tmpl_.catalog.schema);
  }

  Result<Workload> Run() {
    Workload out;
    std::vector<size_t> base_indices;
    std::unordered_map<std::string, size_t> base_key_to_index;
    for (size_t i = 0; i < options_.num_queries; ++i) {
      const bool make_variant =
          !base_indices.empty() && rng_.Chance(options_.overlap_rate);
      WorkloadQuery wq{ConjunctiveQuery::Make("Q", {Term::Var("V0")},
                                              {Atom("q", {Term::Var("V0")})}),
                       i, false, "base"};
      if (make_variant) {
        size_t base = base_indices[rng_.Index(base_indices.size())];
        SQLEQ_ASSIGN_OR_RETURN(
            auto v,
            MakeVariant(out.queries[base].query, "Q" + std::to_string(i)));
        wq.query = std::move(v.first);
        wq.class_id = base;
        wq.is_variant = true;
        wq.transform = std::move(v.second);
      } else {
        // Retry base generation until the canonical key is fresh AND the
        // query is Σ-satisfiable (random constants can clash through key
        // egds — e.g. two atoms key-equated by the chase holding different
        // constants in the same column — and an unsatisfiable query has no
        // meaningful equivalence class). A stale key after the retries
        // means the walk space is effectively exhausted, and the query is
        // RECLASSIFIED as a variant of the base it collided with — ground
        // truth stays exact either way.
        ConjunctiveQuery q = GenerateBase("Q" + std::to_string(i));
        std::string key = CanonicalQueryKey(q);
        for (int attempt = 0; attempt < 20; ++attempt) {
          if (!Unsatisfiable(q) &&
              base_key_to_index.find(key) == base_key_to_index.end()) {
            break;
          }
          q = GenerateBase("Q" + std::to_string(i));
          key = CanonicalQueryKey(q);
        }
        if (Unsatisfiable(q)) {
          // Every retry clashed (possible only at extreme constant
          // density): constant-free queries cannot clash, so strip the
          // constants rather than ship an unsatisfiable base.
          q = StripConstants(q);
          key = CanonicalQueryKey(q);
        }
        auto it = base_key_to_index.find(key);
        if (it != base_key_to_index.end()) {
          wq.query = std::move(q);
          wq.class_id = it->second;
          wq.is_variant = true;
          wq.transform = "isomorphic-dup";
        } else {
          base_key_to_index.emplace(std::move(key), i);
          base_indices.push_back(i);
          wq.query = std::move(q);
          wq.class_id = i;
        }
      }
      out.queries.push_back(std::move(wq));
    }
    out.num_classes = base_indices.size();
    out.schema = std::move(tmpl_);
    return out;
  }

 private:
  /// True when the chase proves q empty on every instance of Σ (a key egd
  /// equated two distinct constants). Chase errors (budget, etc.) count as
  /// satisfiable — we only reject what is *provably* unsatisfiable.
  bool Unsatisfiable(const ConjunctiveQuery& q) {
    Result<ChaseOutcome> out = plan_->Run(q);
    return out.ok() && out->failed;
  }

  /// Replaces every constant with a fresh variable — the satisfiability
  /// fallback (an egd can fail only by equating two distinct constants, so
  /// a constant-free query always chases to a universal plan).
  ConjunctiveQuery StripConstants(const ConjunctiveQuery& q) {
    std::vector<Atom> body = q.body();
    size_t i = 0;
    for (Atom& a : body) {
      for (Term& t : a.mutable_args()) {
        if (!t.IsVariable()) {
          t = Term::Var("C" + std::to_string(rename_epoch_) + "_" +
                        std::to_string(i++));
        }
      }
    }
    ++rename_epoch_;
    return q.WithBody(std::move(body));
  }

  /// A fresh atom over `relation`, every position a fresh variable.
  Atom FreshAtom(const std::string& relation, VarFactory* vars) {
    size_t arity = tmpl_.catalog.schema.ArityOf(relation);
    std::vector<Term> args;
    args.reserve(arity);
    for (size_t i = 0; i < arity; ++i) args.push_back(vars->Next());
    return Atom(relation, std::move(args));
  }

  /// A random FK-join walk: start anywhere, grow by joining a new atom to
  /// an existing one along a random incident FK edge (either direction),
  /// then bind random single-occurrence positions to constants and draw the
  /// head from the surviving variables.
  ConjunctiveQuery GenerateBase(const std::string& name) {
    VarFactory vars;
    size_t depth = options_.min_join_depth +
                   rng_.Index(options_.max_join_depth -
                              options_.min_join_depth + 1);
    std::vector<Atom> body;
    body.push_back(
        FreshAtom(relations_[rng_.Index(relations_.size())], &vars));
    while (body.size() < depth) {
      size_t at = rng_.Index(body.size());
      std::vector<size_t> edges =
          IncidentEdges(tmpl_.fks, body[at].predicate());
      if (edges.empty()) break;  // isolated relation: stop growing
      const ForeignKeyEdge& fk = tmpl_.fks[edges[rng_.Index(edges.size())]];
      const bool at_is_src = fk.src == body[at].predicate();
      Atom added = FreshAtom(at_is_src ? fk.dst : fk.src, &vars);
      const std::vector<size_t>& at_cols = at_is_src ? fk.src_cols : fk.dst_cols;
      const std::vector<size_t>& new_cols = at_is_src ? fk.dst_cols : fk.src_cols;
      for (size_t j = 0; j < at_cols.size(); ++j) {
        added.mutable_args()[new_cols[j]] = body[at].args()[at_cols[j]];
      }
      body.push_back(std::move(added));
    }

    // Constant binding: single-occurrence variables only, so join structure
    // is never disturbed, and always leaving at least one variable for the
    // head.
    std::unordered_map<Term, size_t, TermHash> counts;
    for (const Atom& a : body) {
      for (Term t : a.args()) {
        if (t.IsVariable()) ++counts[t];
      }
    }
    size_t variables_left = counts.size();
    for (Atom& a : body) {
      for (Term& t : a.mutable_args()) {
        if (!t.IsVariable() || counts[t] != 1 || variables_left <= 1) continue;
        if (rng_.Chance(options_.constant_density)) {
          t = Term::Int(rng_.UniformInt(0, options_.constant_domain - 1));
          --variables_left;
        }
      }
    }

    std::vector<Term> head_pool = DistinctVariables(body);
    rng_.Shuffle(&head_pool);
    size_t width = 1 + rng_.Index(std::min(options_.max_width,
                                           head_pool.size()));
    head_pool.resize(width);
    return ConjunctiveQuery::Make(name, std::move(head_pool), std::move(body));
  }

  /// One Σ-equivalence-preserving rewrite chain applied to `base`.
  Result<std::pair<ConjunctiveQuery, std::string>> MakeVariant(
      const ConjunctiveQuery& base, const std::string& name) {
    ConjunctiveQuery q = base.WithName(name);
    std::string chain;
    size_t steps = 1 + rng_.Index(options_.max_transforms_per_variant);
    for (size_t s = 0; s < steps; ++s) {
      std::string applied;
      switch (rng_.Index(4)) {
        case 0:
          q = RenameAndReorder(q);
          applied = "rename";
          break;
        case 1:
          applied = TryFkUnfold(&q) ? "fk-unfold" : "";
          break;
        case 2:
          applied = TryFkFold(&q) ? "fk-fold" : "";
          break;
        case 3:
          applied = TrySelfJoin(&q) ? "selfjoin" : "";
          break;
      }
      if (applied.empty()) {  // transform inapplicable: renaming always is
        q = RenameAndReorder(q);
        applied = "rename";
      }
      chain += (chain.empty() ? "" : "+") + applied;
    }
    return std::make_pair(std::move(q), std::move(chain));
  }

  /// Fresh deterministic names for every variable plus a body shuffle — the
  /// identity-up-to-isomorphism rewrite every tier must catch exactly.
  ConjunctiveQuery RenameAndReorder(const ConjunctiveQuery& q) {
    TermMap renaming;
    size_t i = 0;
    for (Term v : q.BodyVariables()) {
      renaming.emplace(
          v, Term::Var("W" + std::to_string(rename_epoch_) + "_" +
                       std::to_string(i++)));
    }
    ++rename_epoch_;
    ConjunctiveQuery renamed = q.Substitute(renaming);
    std::vector<Atom> body = renamed.body();
    rng_.Shuffle(&body);
    return renamed.WithBody(std::move(body));
  }

  /// FK-join unfolding: src(… k …) additionally joins its FK target
  /// dst(… k …, fresh) — the atom the chase adds when it fires the
  /// inclusion tgd, so Q and Q+dst are Σ-equivalent under set semantics.
  bool TryFkUnfold(ConjunctiveQuery* q) {
    std::vector<std::pair<size_t, size_t>> sites;  // (atom index, fk index)
    for (size_t i = 0; i < q->body().size(); ++i) {
      for (size_t f = 0; f < tmpl_.fks.size(); ++f) {
        if (tmpl_.fks[f].src == q->body()[i].predicate()) sites.push_back({i, f});
      }
    }
    if (sites.empty()) return false;
    auto [at, f] = sites[rng_.Index(sites.size())];
    const ForeignKeyEdge& fk = tmpl_.fks[f];
    std::vector<Term> args;
    size_t arity = tmpl_.catalog.schema.ArityOf(fk.dst);
    args.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      args.push_back(Term::Var("U" + std::to_string(rename_epoch_) + "_" +
                               std::to_string(i)));
    }
    ++rename_epoch_;
    for (size_t j = 0; j < fk.src_cols.size(); ++j) {
      args[fk.dst_cols[j]] = q->body()[at].args()[fk.src_cols[j]];
    }
    std::vector<Atom> body = q->body();
    body.emplace_back(fk.dst, std::move(args));
    *q = q->WithBody(std::move(body));
    return true;
  }

  /// FK-join folding — the inverse of unfolding: drop a dst atom that is
  /// FK-implied by a src atom and whose non-referenced positions are lone
  /// variables (they map onto the tgd's existential nulls).
  bool TryFkFold(ConjunctiveQuery* q) {
    std::unordered_map<Term, size_t, TermHash> counts = VariableOccurrences(*q);
    std::vector<size_t> victims;
    for (size_t d = 0; d < q->body().size(); ++d) {
      const Atom& dst = q->body()[d];
      for (const ForeignKeyEdge& fk : tmpl_.fks) {
        if (fk.dst != dst.predicate()) continue;
        bool extras_lone = true;
        for (size_t p = 0; p < dst.arity(); ++p) {
          if (std::find(fk.dst_cols.begin(), fk.dst_cols.end(), p) !=
              fk.dst_cols.end()) {
            continue;
          }
          Term t = dst.args()[p];
          if (!t.IsVariable() || counts[t] != 1) {
            extras_lone = false;
            break;
          }
        }
        if (!extras_lone) continue;
        for (size_t s = 0; s < q->body().size(); ++s) {
          if (s == d || q->body()[s].predicate() != fk.src) continue;
          bool joined = true;
          for (size_t j = 0; j < fk.src_cols.size(); ++j) {
            if (q->body()[s].args()[fk.src_cols[j]] !=
                dst.args()[fk.dst_cols[j]]) {
              joined = false;
              break;
            }
          }
          if (joined) {
            victims.push_back(d);
            s = q->body().size();  // one witness suffices
          }
        }
      }
    }
    if (victims.empty()) return false;
    size_t victim = victims[rng_.Index(victims.size())];
    std::vector<Atom> body = q->body();
    body.erase(body.begin() + static_cast<ptrdiff_t>(victim));
    if (body.empty()) return false;  // never fold the last atom away
    *q = q->WithBody(std::move(body));
    return true;
  }

  /// Key-implied self-join: EXPAND duplicates a keyed atom with fresh lone
  /// variables off the key (the key egd chases the copies together), or —
  /// when the query already contains such a redundant copy — COLLAPSE
  /// removes it. Collapse is preferred so expand+collapse chains shrink
  /// back instead of growing monotonically.
  bool TrySelfJoin(ConjunctiveQuery* q) {
    std::unordered_map<Term, size_t, TermHash> counts = VariableOccurrences(*q);
    // Collapse: a pair (keep, drop) over the same keyed relation, equal on
    // the key, drop's off-key positions all lone variables.
    for (size_t drop = 0; drop < q->body().size(); ++drop) {
      const Atom& a = q->body()[drop];
      Result<RelationInfo> info = tmpl_.catalog.schema.GetRelation(a.predicate());
      if (!info.ok() || info.value().declared_keys.empty()) continue;
      const std::vector<size_t>& key = info.value().declared_keys.front();
      bool extras_lone = true;
      for (size_t p = 0; p < a.arity(); ++p) {
        if (std::find(key.begin(), key.end(), p) != key.end()) continue;
        if (!a.args()[p].IsVariable() || counts[a.args()[p]] != 1) {
          extras_lone = false;
          break;
        }
      }
      if (!extras_lone) continue;
      for (size_t keep = 0; keep < q->body().size(); ++keep) {
        if (keep == drop || q->body()[keep].predicate() != a.predicate()) continue;
        bool same_key = true;
        for (size_t p : key) {
          if (q->body()[keep].args()[p] != a.args()[p]) same_key = false;
        }
        if (!same_key) continue;
        std::vector<Atom> body = q->body();
        body.erase(body.begin() + static_cast<ptrdiff_t>(drop));
        *q = q->WithBody(std::move(body));
        return true;
      }
    }
    // Expand: duplicate a keyed atom that has at least one off-key position.
    std::vector<size_t> sites;
    for (size_t i = 0; i < q->body().size(); ++i) {
      Result<RelationInfo> info =
          tmpl_.catalog.schema.GetRelation(q->body()[i].predicate());
      if (info.ok() && !info.value().declared_keys.empty() &&
          info.value().declared_keys.front().size() < q->body()[i].arity()) {
        sites.push_back(i);
      }
    }
    if (sites.empty()) return false;
    size_t at = sites[rng_.Index(sites.size())];
    const Atom& a = q->body()[at];
    const std::vector<size_t> key =
        tmpl_.catalog.schema.GetRelation(a.predicate()).value()
            .declared_keys.front();
    std::vector<Term> args = a.args();
    for (size_t p = 0; p < args.size(); ++p) {
      if (std::find(key.begin(), key.end(), p) == key.end()) {
        args[p] = Term::Var("K" + std::to_string(rename_epoch_) + "_" +
                            std::to_string(p));
      }
    }
    ++rename_epoch_;
    std::vector<Atom> body = q->body();
    body.emplace_back(a.predicate(), std::move(args));
    *q = q->WithBody(std::move(body));
    return true;
  }

  const WorkloadOptions& options_;
  SchemaTemplate tmpl_;
  Rng rng_;
  std::vector<std::string> relations_;
  /// Satisfiability screen for generated bases (see Unsatisfiable()).
  std::unique_ptr<ChasePlan> plan_;
  /// Monotone epoch making every rename/unfold/expand variable family
  /// distinct without consulting the process-global fresh counter.
  size_t rename_epoch_ = 0;
};

}  // namespace

double Workload::GroundTruthHitRate() const {
  if (queries.empty()) return 0.0;
  size_t variants = 0;
  for (const WorkloadQuery& q : queries) {
    if (q.is_variant) ++variants;
  }
  return static_cast<double>(variants) / static_cast<double>(queries.size());
}

Result<Workload> GenerateWorkload(const WorkloadOptions& options) {
  if (options.num_queries == 0) {
    return Status::InvalidArgument("workload needs at least one query");
  }
  if (options.overlap_rate < 0.0 || options.overlap_rate > 1.0) {
    return Status::InvalidArgument("overlap_rate must be in [0, 1]");
  }
  if (options.constant_density < 0.0 || options.constant_density > 1.0) {
    return Status::InvalidArgument("constant_density must be in [0, 1]");
  }
  if (options.min_join_depth == 0 ||
      options.min_join_depth > options.max_join_depth) {
    return Status::InvalidArgument(
        "join depth bounds must satisfy 1 <= min <= max");
  }
  if (options.max_width == 0) {
    return Status::InvalidArgument("max_width must be at least 1");
  }
  if (options.constant_domain <= 0) {
    return Status::InvalidArgument("constant_domain must be positive");
  }
  SQLEQ_ASSIGN_OR_RETURN(SchemaTemplate tmpl,
                         MakeSchemaTemplate(options.schema_template));
  return Generator(options, std::move(tmpl)).Run();
}

}  // namespace workload
}  // namespace sqleq
