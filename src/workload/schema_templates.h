// Workload schema templates (docs/workload.md): realistically shaped
// catalogs whose declared PRIMARY KEYs and FOREIGN KEYs are compiled into
// Σ through constraints/builders — exactly what a production catalog hands
// the semantic cache. Three families ship:
//
//   tpch       — the TPC-H order/lineitem snowflake (8 relations),
//   job        — an IMDB/JOB-style movie join graph (7 relations),
//   warehouse  — a star-schema fact table over four dimensions.
//
// Every template's FK graph is acyclic and every FK target is a key, so Σ
// is weakly acyclic and the chase carries a termination certificate — the
// decidable regime the paper's headline theorems live in (Thm 5.2).
#ifndef SQLEQ_WORKLOAD_SCHEMA_TEMPLATES_H_
#define SQLEQ_WORKLOAD_SCHEMA_TEMPLATES_H_

#include <string>
#include <string_view>
#include <vector>

#include "sql/translate.h"
#include "util/status.h"

namespace sqleq {
namespace workload {

/// One FOREIGN KEY edge of a template, in structured form. The same edge is
/// compiled into Σ as an inclusion tgd; the generator additionally walks
/// these edges to synthesize FK-join queries and to apply the fold/unfold
/// equivalence transforms, which need the column lists, not the tgd.
struct ForeignKeyEdge {
  std::string src;
  std::vector<size_t> src_cols;
  std::string dst;
  std::vector<size_t> dst_cols;
};

/// A named schema template: the compiled catalog (schema + Σ) plus the
/// structured FK graph it was compiled from.
struct SchemaTemplate {
  std::string name;
  sql::Catalog catalog;
  std::vector<ForeignKeyEdge> fks;
};

/// The template names MakeSchemaTemplate accepts, in display order.
std::vector<std::string> KnownSchemaTemplates();

/// Builds the named template. Deterministic — two calls return catalogs
/// with identical schemas and identical Σ (labels included).
Result<SchemaTemplate> MakeSchemaTemplate(std::string_view name);

}  // namespace workload
}  // namespace sqleq

#endif  // SQLEQ_WORKLOAD_SCHEMA_TEMPLATES_H_
