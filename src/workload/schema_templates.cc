#include "workload/schema_templates.h"

#include <utility>

#include "constraints/builders.h"

namespace sqleq {
namespace workload {
namespace {

/// Accumulates relations, keys, and FK edges, then compiles Σ: key egds
/// from the declared keys (KeyEgdsFromSchema) followed by one inclusion tgd
/// per FK edge (MakeForeignKey), labelled "fk_<src>_<dst>".
class TemplateBuilder {
 public:
  explicit TemplateBuilder(std::string name) { out_.name = std::move(name); }

  /// Keyed relations are set valued in all instances (the SQL-standard
  /// PRIMARY KEY reading the paper adopts, §1).
  TemplateBuilder& Rel(const std::string& name, size_t arity,
                       std::vector<size_t> key = {}) {
    out_.catalog.schema.Relation(name, arity, /*set_valued=*/!key.empty());
    if (!key.empty()) {
      Status s = out_.catalog.schema.DeclareKey(name, std::move(key));
      if (status_.ok() && !s.ok()) status_ = std::move(s);
    }
    return *this;
  }

  TemplateBuilder& Fk(const std::string& src, std::vector<size_t> src_cols,
                      const std::string& dst, std::vector<size_t> dst_cols) {
    out_.fks.push_back({src, std::move(src_cols), dst, std::move(dst_cols)});
    return *this;
  }

  Result<SchemaTemplate> Build() {
    SQLEQ_RETURN_IF_ERROR(status_);
    SQLEQ_ASSIGN_OR_RETURN(DependencySet keys,
                           KeyEgdsFromSchema(out_.catalog.schema));
    out_.catalog.sigma = std::move(keys);
    for (const ForeignKeyEdge& fk : out_.fks) {
      SQLEQ_ASSIGN_OR_RETURN(
          Dependency dep,
          MakeForeignKey(fk.src, out_.catalog.schema.ArityOf(fk.src),
                         fk.src_cols, fk.dst,
                         out_.catalog.schema.ArityOf(fk.dst), fk.dst_cols,
                         "fk_" + fk.src + "_" + fk.dst));
      out_.catalog.sigma.push_back(std::move(dep));
    }
    return std::move(out_);
  }

 private:
  SchemaTemplate out_;
  Status status_ = Status::OK();
};

/// TPC-H's snowflake, attribute lists trimmed to the join-relevant columns
/// (key columns first, FK columns next, one or two payload columns).
Result<SchemaTemplate> MakeTpch() {
  TemplateBuilder b("tpch");
  b.Rel("region", 2, {0})                    // (regionkey, name)
      .Rel("nation", 3, {0})                 // (nationkey, regionkey, name)
      .Rel("supplier", 3, {0})               // (suppkey, nationkey, acctbal)
      .Rel("customer", 3, {0})               // (custkey, nationkey, mktsegment)
      .Rel("part", 3, {0})                   // (partkey, brand, size)
      .Rel("partsupp", 4, {0, 1})            // (partkey, suppkey, qty, cost)
      .Rel("orders", 4, {0})                 // (orderkey, custkey, status, prio)
      .Rel("lineitem", 5, {0, 1});           // (orderkey, linenum, partkey,
                                             //  suppkey, qty)
  b.Fk("nation", {1}, "region", {0})
      .Fk("supplier", {1}, "nation", {0})
      .Fk("customer", {1}, "nation", {0})
      .Fk("partsupp", {0}, "part", {0})
      .Fk("partsupp", {1}, "supplier", {0})
      .Fk("orders", {1}, "customer", {0})
      .Fk("lineitem", {0}, "orders", {0})
      .Fk("lineitem", {2, 3}, "partsupp", {0, 1});
  return b.Build();
}

/// A JOB/IMDB-shaped join graph: fact-ish link tables (cast_info,
/// movie_companies, movie_keyword) fanning out to entity tables.
Result<SchemaTemplate> MakeJob() {
  TemplateBuilder b("job");
  b.Rel("title", 3, {0})                     // (movie_id, kind, year)
      .Rel("name", 2, {0})                   // (person_id, gender)
      .Rel("company", 2, {0})                // (company_id, country)
      .Rel("keyword", 2, {0})                // (keyword_id, phrase)
      .Rel("cast_info", 4, {0})              // (ci_id, person_id, movie_id, role)
      .Rel("movie_companies", 3)             // (movie_id, company_id, note)
      .Rel("movie_keyword", 2);              // (movie_id, keyword_id)
  b.Fk("cast_info", {1}, "name", {0})
      .Fk("cast_info", {2}, "title", {0})
      .Fk("movie_companies", {0}, "title", {0})
      .Fk("movie_companies", {1}, "company", {0})
      .Fk("movie_keyword", {0}, "title", {0})
      .Fk("movie_keyword", {1}, "keyword", {0});
  return b.Build();
}

/// A star-schema warehouse: one fact keyed on its first column, four
/// dimensions, one FK per dimension — the smallest template, and the
/// default for smoke runs.
Result<SchemaTemplate> MakeWarehouse() {
  TemplateBuilder b("warehouse");
  b.Rel("fact", 6, {0})                      // (id, d1, d2, d3, d4, measure)
      .Rel("dim_time", 2, {0})
      .Rel("dim_cust", 3, {0})
      .Rel("dim_prod", 3, {0})
      .Rel("dim_geo", 2, {0});
  b.Fk("fact", {1}, "dim_time", {0})
      .Fk("fact", {2}, "dim_cust", {0})
      .Fk("fact", {3}, "dim_prod", {0})
      .Fk("fact", {4}, "dim_geo", {0});
  return b.Build();
}

}  // namespace

std::vector<std::string> KnownSchemaTemplates() {
  return {"warehouse", "tpch", "job"};
}

Result<SchemaTemplate> MakeSchemaTemplate(std::string_view name) {
  if (name == "tpch") return MakeTpch();
  if (name == "job") return MakeJob();
  if (name == "warehouse") return MakeWarehouse();
  std::string known;
  for (const std::string& t : KnownSchemaTemplates()) {
    if (!known.empty()) known += ", ";
    known += t;
  }
  return Status::InvalidArgument("unknown schema template '" +
                                 std::string(name) + "' (known: " + known +
                                 ")");
}

}  // namespace workload
}  // namespace sqleq
