// Deterministic, seed-driven CQ workload synthesis over a schema template
// (docs/workload.md). Two query populations interleave:
//
//  - base queries: random FK-join walks over the template's FK graph —
//    atoms joined on FK columns, optional constants on free positions,
//    heads drawn from the body variables;
//  - variants: with probability `overlap_rate`, the next query is instead a
//    Σ-equivalent rewrite of an earlier BASE query, produced by composing
//    equivalence-preserving transforms (variable renaming, atom
//    reordering, FK-join folding/unfolding, key-implied self-join
//    expansion/collapse).
//
// Every query carries the index of its base class, so the Σ-equivalence
// structure of the corpus — and therefore the ideal semantic-cache hit
// rate — is known BY CONSTRUCTION: a fresh cache replay should hit exactly
// on the variants (their base was admitted earlier) and miss on first-seen
// bases. Base queries are deduplicated by canonical key at generation time
// so accidental isomorphic collisions cannot inflate the measured rate.
//
// All transforms preserve Σ-equivalence under SET semantics (the chase
// adds exactly the atoms unfold/expand introduce; fold/collapse remove
// chase-redundant atoms), so generated workloads are set-semantics
// corpora. Determinism: a (template, options) pair with the same seed
// yields byte-identical queries on every platform — std::mt19937_64
// through util/rng.h, no iteration-order dependence.
#ifndef SQLEQ_WORKLOAD_GENERATOR_H_
#define SQLEQ_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/query.h"
#include "util/status.h"
#include "workload/schema_templates.h"

namespace sqleq {
namespace workload {

struct WorkloadOptions {
  /// A name MakeSchemaTemplate accepts: "warehouse", "tpch", or "job".
  std::string schema_template = "warehouse";
  uint64_t seed = 1;
  size_t num_queries = 100;
  /// Fraction of queries generated as Σ-equivalent variants of earlier base
  /// queries, in [0, 1]. The first query is always a base.
  double overlap_rate = 0.5;
  /// Body atoms of a base query are drawn uniformly from [min, max].
  size_t min_join_depth = 1;
  size_t max_join_depth = 4;
  /// Head arity is drawn uniformly from [1, max_width] (clamped to the
  /// number of body variables).
  size_t max_width = 3;
  /// Probability that a non-join body position binds an integer constant
  /// instead of a fresh variable.
  double constant_density = 0.25;
  /// Distinct integer constants the generator draws from. Small domains
  /// create constant-heavy queries that differ only in constant values —
  /// the exact shape the signature property tests guard.
  int constant_domain = 16;
  /// Transforms composed per variant, drawn uniformly from [1, max].
  size_t max_transforms_per_variant = 2;
};

struct WorkloadQuery {
  ConjunctiveQuery query;
  /// Ground-truth Σ-equivalence class: the index (into Workload::queries)
  /// of the base query this one is equivalent to. Bases point at
  /// themselves.
  size_t class_id = 0;
  /// True when the query was generated as a variant of an earlier base.
  bool is_variant = false;
  /// "base" or the '+'-joined transform chain ("rename+fk-unfold", ...).
  std::string transform;
};

struct Workload {
  SchemaTemplate schema;
  std::vector<WorkloadQuery> queries;
  /// Number of distinct base queries (= ground-truth equivalence classes).
  size_t num_classes = 0;

  /// The hit rate an ideal semantic cache achieves on a cold replay in
  /// generation order: variants hit (their base is already admitted),
  /// first-seen bases miss. Equals variants / total.
  double GroundTruthHitRate() const;
};

/// Generates the workload. Fails on an unknown template, overlap/density
/// outside [0, 1], zero queries, or min_join_depth > max_join_depth.
Result<Workload> GenerateWorkload(const WorkloadOptions& options);

}  // namespace workload
}  // namespace sqleq

#endif  // SQLEQ_WORKLOAD_GENERATOR_H_
