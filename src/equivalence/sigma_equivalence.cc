#include "equivalence/sigma_equivalence.h"

#include "chase/sound_chase.h"
#include "equivalence/containment.h"

namespace sqleq {

Result<bool> SetContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                               const DependencySet& sigma, const ChaseOptions& options) {
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome c1, SetChase(q1, sigma, options));
  if (c1.failed) return true;  // Q1 is empty on every D |= Σ.
  return SetContained(c1.result, q2);
}

}  // namespace sqleq
