// The implementation always builds the legacy symbols so binaries compiled
// against the gated declarations keep linking; only the header visibility is
// behind the macro.
#define SQLEQ_LEGACY_API
#include "equivalence/sigma_equivalence.h"

#include "chase/sound_chase.h"
#include "equivalence/containment.h"
#include "equivalence/engine.h"

namespace sqleq {
namespace {

/// Shared body of the deprecated wrappers, so they need not call each other
/// (which would trip -Wdeprecated-declarations under -Werror).
Result<bool> EquivalentUnderImpl(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                                 const DependencySet& sigma, Semantics semantics,
                                 const Schema& schema, const ChaseOptions& options) {
  EquivalenceEngine engine;
  EquivRequest request{semantics, sigma, schema, options};
  request.context.budget = options.budget;
  SQLEQ_ASSIGN_OR_RETURN(EquivVerdict verdict,
                         engine.Equivalent(q1, q2, request));
  return VerdictToBool(verdict);
}

}  // namespace

Result<bool> EquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                             const DependencySet& sigma, Semantics semantics,
                             const Schema& schema, const ChaseOptions& options) {
  return EquivalentUnderImpl(q1, q2, sigma, semantics, schema, options);
}

Result<bool> SetEquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                                const DependencySet& sigma, const ChaseOptions& options) {
  return EquivalentUnderImpl(q1, q2, sigma, Semantics::kSet, Schema(), options);
}

Result<bool> BagEquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                                const DependencySet& sigma, const Schema& schema,
                                const ChaseOptions& options) {
  return EquivalentUnderImpl(q1, q2, sigma, Semantics::kBag, schema, options);
}

Result<bool> BagSetEquivalentUnder(const ConjunctiveQuery& q1,
                                   const ConjunctiveQuery& q2,
                                   const DependencySet& sigma,
                                   const ChaseOptions& options) {
  return EquivalentUnderImpl(q1, q2, sigma, Semantics::kBagSet, Schema(), options);
}

Result<bool> SetContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                               const DependencySet& sigma, const ChaseOptions& options) {
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome c1, SetChase(q1, sigma, options));
  if (c1.failed) return true;  // Q1 is empty on every D |= Σ.
  return SetContained(c1.result, q2);
}

}  // namespace sqleq
