#include "equivalence/sigma_equivalence.h"

#include "chase/sound_chase.h"
#include "equivalence/bag_equivalence.h"
#include "equivalence/bag_set_equivalence.h"
#include "equivalence/containment.h"

namespace sqleq {

Result<bool> EquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                             const DependencySet& sigma, Semantics semantics,
                             const Schema& schema, const ChaseOptions& options) {
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome c1, SoundChase(q1, sigma, semantics, schema, options));
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome c2, SoundChase(q2, sigma, semantics, schema, options));
  if (c1.failed || c2.failed) {
    // A failed chase means the query returns the empty answer on every
    // instance satisfying Σ; two queries are then equivalent iff both fail.
    return c1.failed == c2.failed;
  }
  switch (semantics) {
    case Semantics::kSet:
      return SetEquivalent(c1.result, c2.result);
    case Semantics::kBag:
      return BagEquivalentModuloSetRelations(c1.result, c2.result, schema);
    case Semantics::kBagSet:
      return BagSetEquivalent(c1.result, c2.result);
  }
  return Status::Internal("unknown semantics");
}

Result<bool> SetEquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                                const DependencySet& sigma, const ChaseOptions& options) {
  return EquivalentUnder(q1, q2, sigma, Semantics::kSet, Schema(), options);
}

Result<bool> BagEquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                                const DependencySet& sigma, const Schema& schema,
                                const ChaseOptions& options) {
  return EquivalentUnder(q1, q2, sigma, Semantics::kBag, schema, options);
}

Result<bool> BagSetEquivalentUnder(const ConjunctiveQuery& q1,
                                   const ConjunctiveQuery& q2,
                                   const DependencySet& sigma,
                                   const ChaseOptions& options) {
  return EquivalentUnder(q1, q2, sigma, Semantics::kBagSet, Schema(), options);
}

Result<bool> SetContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                               const DependencySet& sigma, const ChaseOptions& options) {
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome c1, SetChase(q1, sigma, options));
  if (c1.failed) return true;  // Q1 is empty on every D |= Σ.
  return SetContained(c1.result, q2);
}

}  // namespace sqleq
