// Equivalence of CQ queries in the presence of embedded dependencies — the
// paper's headline tests:
//   * Theorem 2.2 (set):     Q ≡Σ,S Q′  iff (Q)Σ,S ≡S (Q′)Σ,S.
//   * Theorem 6.1 (bag):     Q ≡Σ,B Q′  iff (Q)Σ,B ≡B (Q′)Σ,B modulo the
//     set-enforcing dependencies (Thm 4.2 isomorphism test).
//   * Theorem 6.2 (bag-set): Q ≡Σ,BS Q′ iff (Q)Σ,BS ≡BS (Q′)Σ,BS.
// All three are conditioned on termination of set chase on the inputs; the
// step budget in ChaseOptions is the practical proxy.
//
// DEPRECATED entry points: the equivalence functions below are kept as thin
// wrappers over equivalence/engine.h's EquivalenceEngine, which unifies the
// call shape, memoizes chases across calls, and returns the full evidence
// (chase traces + witness). New code should use the engine directly. The
// wrappers are visible only under -DSQLEQ_LEGACY_API (the symbols stay in
// the library either way), so their removal in a future release is a
// macro flip for stragglers rather than a source break discovered at link
// time. SetContainedUnder is not deprecated and remains unconditional.
#ifndef SQLEQ_EQUIVALENCE_SIGMA_EQUIVALENCE_H_
#define SQLEQ_EQUIVALENCE_SIGMA_EQUIVALENCE_H_

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

#ifdef SQLEQ_LEGACY_API

/// Q1 ≡Σ,X Q2 for X = `semantics`. `schema` supplies set-valued flags
/// (consulted only under kBag).
[[deprecated("use EquivalenceEngine::Equivalent (equivalence/engine.h)")]]
Result<bool> EquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                             const DependencySet& sigma, Semantics semantics,
                             const Schema& schema, const ChaseOptions& options = {});

/// Theorem 2.2 specialization.
[[deprecated("use EquivalenceEngine::Equivalent with Semantics::kSet")]]
Result<bool> SetEquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                                const DependencySet& sigma,
                                const ChaseOptions& options = {});

/// Theorem 6.1 specialization.
[[deprecated("use EquivalenceEngine::Equivalent with Semantics::kBag")]]
Result<bool> BagEquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                                const DependencySet& sigma, const Schema& schema,
                                const ChaseOptions& options = {});

/// Theorem 6.2 specialization.
[[deprecated("use EquivalenceEngine::Equivalent with Semantics::kBagSet")]]
Result<bool> BagSetEquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                                   const DependencySet& sigma,
                                   const ChaseOptions& options = {});

#endif  // SQLEQ_LEGACY_API

/// Q1 ⊑Σ,S Q2: set containment under dependencies, via chase of Q1 and a
/// containment mapping from Q2 (the standard reduction).
Result<bool> SetContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                               const DependencySet& sigma,
                               const ChaseOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_SIGMA_EQUIVALENCE_H_
