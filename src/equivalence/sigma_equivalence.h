// Equivalence of CQ queries in the presence of embedded dependencies — the
// paper's headline tests:
//   * Theorem 2.2 (set):     Q ≡Σ,S Q′  iff (Q)Σ,S ≡S (Q′)Σ,S.
//   * Theorem 6.1 (bag):     Q ≡Σ,B Q′  iff (Q)Σ,B ≡B (Q′)Σ,B modulo the
//     set-enforcing dependencies (Thm 4.2 isomorphism test).
//   * Theorem 6.2 (bag-set): Q ≡Σ,BS Q′ iff (Q)Σ,BS ≡BS (Q′)Σ,BS.
// All three are conditioned on termination of set chase on the inputs; the
// step budget in ChaseOptions is the practical proxy.
//
// Equivalence testing lives in equivalence/engine.h's EquivalenceEngine,
// which unifies the call shape, memoizes chases across calls, and returns
// the full evidence (chase traces + witness). The deprecated free-function
// wrappers (EquivalentUnder and friends) that used to sit here behind a
// legacy-API macro have been removed — see docs/compiled_chase.md for the
// migration mapping. SetContainedUnder was never deprecated and remains.
#ifndef SQLEQ_EQUIVALENCE_SIGMA_EQUIVALENCE_H_
#define SQLEQ_EQUIVALENCE_SIGMA_EQUIVALENCE_H_

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// Q1 ⊑Σ,S Q2: set containment under dependencies, via chase of Q1 and a
/// containment mapping from Q2 (the standard reduction).
Result<bool> SetContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                               const DependencySet& sigma,
                               const ChaseOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_SIGMA_EQUIVALENCE_H_
