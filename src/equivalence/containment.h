// Chandra–Merlin set containment and equivalence of CQ queries (§2.1):
// Q1 ⊑S Q2 iff a containment mapping Q2 → Q1 exists. NP-complete; the
// homomorphism search in src/chase does the heavy lifting.
#ifndef SQLEQ_EQUIVALENCE_CONTAINMENT_H_
#define SQLEQ_EQUIVALENCE_CONTAINMENT_H_

#include "ir/query.h"

namespace sqleq {

/// Q1 ⊑S Q2 (set containment, no dependencies).
bool SetContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Q1 ≡S Q2 (set equivalence, no dependencies): containment both ways.
bool SetEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_CONTAINMENT_H_
