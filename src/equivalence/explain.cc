#include "equivalence/explain.h"

#include "chase/homomorphism.h"
#include "chase/sound_chase.h"
#include "db/satisfaction.h"
#include "equivalence/isomorphism.h"
#include "ir/printer.h"

namespace sqleq {
namespace {

/// Best-effort separating database: evaluate both queries on the canonical
/// database of each chase result; report the first disagreement.
Result<std::optional<std::string>> FindCounterexample(const ConjunctiveQuery& q1,
                                                      const ConjunctiveQuery& q2,
                                                      Semantics semantics,
                                                      const Schema& schema) {
  for (const ConjunctiveQuery* source : {&q1, &q2}) {
    Result<CanonicalDatabase> canon = BuildCanonicalDatabase(*source, schema);
    if (!canon.ok()) continue;  // predicates outside the schema — skip
    std::vector<Database> attempts{canon->database};
    if (semantics == Semantics::kBag) {
      // Lemma D.1-style amplification: duplicate every tuple of every
      // bag-valued relation so multiplicity differences become visible.
      Database amplified(canon->database.schema());
      bool ok = true;
      for (const RelationInfo& info : canon->database.schema().Relations()) {
        Result<RelationInstance> rel = canon->database.GetRelation(info.name);
        if (!rel.ok()) continue;
        uint64_t copies = schema.IsSetValued(info.name) ? 1 : 2;
        for (const auto& [tuple, count] : rel->bag().counts()) {
          if (!amplified.Insert(info.name, tuple, count * copies).ok()) ok = false;
        }
      }
      if (ok) attempts.push_back(std::move(amplified));
    }
    for (const Database& db : attempts) {
      Result<Bag> a1 = Evaluate(q1, db, semantics);
      Result<Bag> a2 = Evaluate(q2, db, semantics);
      if (!a1.ok() || !a2.ok()) continue;
      if (*a1 != *a2) {
        std::string text = "on D(" + source->name() + "):\n";
        text += db.ToString();
        text += "  " + q1.name() + "(D," + SemanticsToString(semantics) +
                ") = " + a1->ToString() + "\n";
        text += "  " + q2.name() + "(D," + SemanticsToString(semantics) +
                ") = " + a2->ToString();
        return std::optional<std::string>(std::move(text));
      }
    }
  }
  return std::optional<std::string>();
}

}  // namespace

std::string EquivalenceExplanation::ToString() const {
  std::string out;
  out += "decision: ";
  out += equivalent ? "EQUIVALENT" : "NOT equivalent";
  out += " under ";
  out += SemanticsToString(semantics);
  out += " semantics\n";
  auto render_side = [&out](const char* label, const ConjunctiveQuery& chased,
                            const std::vector<ChaseStepRecord>& trace, bool failed) {
    out += label;
    out += failed ? " chase FAILED (unsatisfiable under Sigma)\n"
                  : " chased to: " + chased.ToString() + "\n";
    for (const ChaseStepRecord& step : trace) {
      out += "    [" + step.dep_label + "] -> " + step.result + "\n";
    }
  };
  render_side("  Q1", chased_q1, trace_q1, q1_failed);
  render_side("  Q2", chased_q2, trace_q2, q2_failed);
  if (witness_forward.has_value()) {
    out += "  witness: " + TermMapToString(*witness_forward) + "\n";
  }
  if (witness_backward.has_value()) {
    out += "  witness (reverse): " + TermMapToString(*witness_backward) + "\n";
  }
  if (counterexample.has_value()) {
    out += "  counterexample " + *counterexample + "\n";
  }
  return out;
}

Result<EquivalenceExplanation> ExplainEquivalence(const ConjunctiveQuery& q1,
                                                  const ConjunctiveQuery& q2,
                                                  const DependencySet& sigma,
                                                  Semantics semantics,
                                                  const Schema& schema,
                                                  const ChaseOptions& options) {
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome c1, SoundChase(q1, sigma, semantics, schema, options));
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome c2, SoundChase(q2, sigma, semantics, schema, options));

  EquivalenceExplanation out{semantics, false,          c1.result,    c2.result,
                             c1.trace,  c2.trace,       c1.failed,    c2.failed,
                             {},        {},             {}};
  if (c1.failed || c2.failed) {
    out.equivalent = c1.failed == c2.failed;
    return out;
  }

  switch (semantics) {
    case Semantics::kSet: {
      ConjunctiveQuery renamed2 = c2.result.RenameApart();
      std::optional<TermMap> fwd = FindContainmentMapping(renamed2, c1.result);
      ConjunctiveQuery renamed1 = c1.result.RenameApart();
      std::optional<TermMap> bwd = FindContainmentMapping(renamed1, c2.result);
      out.equivalent = fwd.has_value() && bwd.has_value();
      out.witness_forward = fwd;
      out.witness_backward = bwd;
      break;
    }
    case Semantics::kBag: {
      ConjunctiveQuery n1 = NormalizeForBag(c1.result, schema);
      ConjunctiveQuery n2 = NormalizeForBag(c2.result, schema);
      std::optional<TermMap> iso = FindIsomorphism(n1, n2);
      out.equivalent = iso.has_value();
      out.witness_forward = iso;
      break;
    }
    case Semantics::kBagSet: {
      std::optional<TermMap> iso = FindIsomorphism(c1.result.CanonicalRepresentation(),
                                                   c2.result.CanonicalRepresentation());
      out.equivalent = iso.has_value();
      out.witness_forward = iso;
      break;
    }
  }

  if (!out.equivalent) {
    // The chase results witness the difference more often than the inputs
    // (their canonical databases satisfy most of Σ).
    SQLEQ_ASSIGN_OR_RETURN(
        out.counterexample,
        FindCounterexample(c1.result, c2.result, semantics, schema));
  }
  return out;
}

}  // namespace sqleq
