// Explainable equivalence: the same decisions as sigma_equivalence.h, but
// returning the full evidence — chase traces for both queries, the terminal
// chase results, and the isomorphism / containment-mapping witnesses — as a
// structured object with a human-readable rendering. Built for debugging
// "why are these two SQL queries (not) equivalent under my constraints?".
#ifndef SQLEQ_EQUIVALENCE_EXPLAIN_H_
#define SQLEQ_EQUIVALENCE_EXPLAIN_H_

#include <optional>
#include <string>

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// Evidence for one equivalence decision.
struct EquivalenceExplanation {
  Semantics semantics = Semantics::kSet;
  bool equivalent = false;

  /// Sound chase evidence for each input.
  ConjunctiveQuery chased_q1;
  ConjunctiveQuery chased_q2;
  std::vector<ChaseStepRecord> trace_q1;
  std::vector<ChaseStepRecord> trace_q2;
  bool q1_failed = false;
  bool q2_failed = false;

  /// Present when equivalent: the witness map between the (normalized)
  /// chase results — an isomorphism under B/BS, the Q2→Q1 containment
  /// mapping under S.
  std::optional<TermMap> witness_forward;
  /// Set semantics only: the Q1→Q2 direction.
  std::optional<TermMap> witness_backward;

  /// When NOT equivalent and the semantics is B or BS, a separating
  /// counterexample database built from the canonical database of one chase
  /// result (amplified for B per Lemma D.1's construction), together with
  /// the two differing answers.
  std::optional<std::string> counterexample;

  /// Multi-line human-readable rendering of all of the above.
  std::string ToString() const;
};

/// Decides Q1 ≡Σ,X Q2 and assembles the evidence. Same preconditions as
/// EquivalenceEngine::Equivalent (set chase must terminate within the step
/// budget).
Result<EquivalenceExplanation> ExplainEquivalence(const ConjunctiveQuery& q1,
                                                  const ConjunctiveQuery& q2,
                                                  const DependencySet& sigma,
                                                  Semantics semantics,
                                                  const Schema& schema,
                                                  const ChaseOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_EXPLAIN_H_
