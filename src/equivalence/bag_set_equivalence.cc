#include "equivalence/bag_set_equivalence.h"

#include "equivalence/isomorphism.h"

namespace sqleq {

bool BagSetEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return AreIsomorphic(q1.CanonicalRepresentation(), q2.CanonicalRepresentation());
}

}  // namespace sqleq
