#include "equivalence/bag_set_equivalence.h"

#include "equivalence/engine.h"

namespace sqleq {

bool BagSetEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  // Routed through the facade (Σ = ∅, so the chase is a no-op and the test
  // degenerates to Theorem 2.1(2)'s canonical-representation isomorphism).
  EquivalenceEngine engine;
  Result<EquivVerdict> verdict =
      engine.Equivalent(q1, q2, EquivRequest{Semantics::kBagSet, {}, Schema(), {}});
  return verdict.ok() && verdict->equivalent;
}

}  // namespace sqleq
