// EquivalenceEngine — the unified front door for Σ-equivalence testing.
// One call shape covers the paper's headline theorems:
//
//   EquivalenceEngine engine;
//   SQLEQ_ASSIGN_OR_RETURN(EquivVerdict v,
//       engine.Equivalent(q1, q2, {Semantics::kBag, sigma, schema}));
//   if (v.equivalent) { ... v.witness_forward ... }
//
// The engine owns a chase memo per (Σ, semantics, schema, chase-knob)
// context, so repeated calls against the same constraint theory — the
// common shape in minimization and rewriting loops — chase each distinct
// query once. Each memo chases through a per-context compiled ChasePlan
// (chase/chase_plan.h), so the Σ kernels are compiled once per context,
// not once per call.
#ifndef SQLEQ_EQUIVALENCE_ENGINE_H_
#define SQLEQ_EQUIVALENCE_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "chase/chase_cache.h"
#include "chase/checkpoint.h"
#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "equivalence/run_options.h"
#include "util/engine_context.h"
#include "util/resource_budget.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// Everything one equivalence decision depends on. Defaults: set semantics,
/// no dependencies, empty schema, default ChaseOptions, and a default
/// EngineContext (whose ResourceBudget bounds the chases and supplies the
/// optional deadline). The per-call environment (`context`), chase strategy
/// (`chase`), and Σ-lint pre-flight (`analyze`) are the shared RunOptions
/// base (equivalence/run_options.h).
struct EquivRequest : RunOptions {
  Semantics semantics = Semantics::kSet;
  DependencySet sigma;
  Schema schema;
  /// Anytime hook (docs/robustness.md): a chase checkpoint to resume from.
  /// The checkpoint is subject-stamped with its query's canonical key, so it
  /// is applied only to the chase it belongs to (the other query starts
  /// cold). Fault injection and cancellation live in `context`.
  const ChaseCheckpoint* resume = nullptr;

  EquivRequest() = default;
  /// Positional shorthand matching the historical aggregate field order, so
  /// `EquivRequest{semantics, sigma, schema, chase}` keeps working now that
  /// the shared fields live in the base.
  EquivRequest(Semantics semantics_in, DependencySet sigma_in = {},
               Schema schema_in = {}, ChaseOptions chase_in = {})
      : semantics(semantics_in),
        sigma(std::move(sigma_in)),
        schema(std::move(schema_in)) {
    chase = std::move(chase_in);
  }
};

/// The decision plus its evidence: sound-chase results for both inputs
/// (remapped onto the callers' variables), the chase traces (rendered in
/// the memo's canonical variable space), and — when equivalent — the
/// witness mapping between the chase results (isomorphism under B/BS, the
/// Q2→Q1 containment mapping under S, with witness_backward the Q1→Q2
/// direction).
struct EquivVerdict {
  bool equivalent;
  Semantics semantics;

  // ConjunctiveQuery has no default constructor, so EquivVerdict is built
  // by aggregate initialization (trailing members below carry defaults).
  ConjunctiveQuery chased_q1;
  ConjunctiveQuery chased_q2;
  std::vector<ChaseStepRecord> trace_q1;
  std::vector<ChaseStepRecord> trace_q2;
  bool q1_failed;
  bool q2_failed;

  std::optional<TermMap> witness_forward;
  std::optional<TermMap> witness_backward;

  /// Three-valued outcome. kUnknown means an anytime condition (budget,
  /// deadline, cancellation, injected fault) stopped a chase before the
  /// decision: `equivalent` is then false-but-meaningless, chased_q1/q2 echo
  /// the inputs, `exhaustion` says what tripped, and `checkpoint` (when a
  /// chase got far enough to capture one) resumes the interrupted chase via
  /// EquivRequest::resume.
  Verdict verdict = Verdict::kNotEquivalent;
  std::optional<ExhaustionInfo> exhaustion;
  std::optional<ChaseCheckpoint> checkpoint;
};

/// Collapses a three-valued verdict onto the legacy boolean contract: a
/// kUnknown verdict becomes the anytime Status it replaced (kCancelled for
/// cancellation, kResourceExhausted otherwise). For Result<bool> APIs that
/// predate the anytime contract.
inline Result<bool> VerdictToBool(const EquivVerdict& v) {
  if (v.verdict != Verdict::kUnknown) return v.equivalent;
  std::string msg = v.exhaustion.has_value() ? v.exhaustion->ToString()
                                             : "equivalence undecided";
  if (v.exhaustion.has_value() && v.exhaustion->limit == "cancelled") {
    return Status::Cancelled(std::move(msg));
  }
  return Status::ResourceExhausted(std::move(msg));
}

/// The post-chase equivalence primitive the facade, C&B, and the view
/// rewriter all share: are the (already chased) queries equivalent under
/// `semantics`? (Thm 2.2's ≡S via containment mappings, Thm 6.1's ≡B modulo
/// the schema's set-enforcing dependencies, Thm 6.2's ≡BS via canonical
/// representations.) Isomorphism-invariant in both arguments.
bool ChasedEquivalent(const ConjunctiveQuery& c1, const ConjunctiveQuery& c2,
                      Semantics semantics, const Schema& schema);

class EquivalenceEngine {
 public:
  EquivalenceEngine() = default;
  EquivalenceEngine(const EquivalenceEngine&) = delete;
  EquivalenceEngine& operator=(const EquivalenceEngine&) = delete;

  /// Decides q1 ≡Σ,X q2 per the request and assembles the evidence.
  /// Anytime contract (docs/robustness.md): when a chase trips the budget,
  /// the deadline, cancellation, or an injected fault, the call returns OK
  /// with verdict = kUnknown (plus exhaustion and, usually, a resumable
  /// checkpoint) instead of an error. Non-anytime failures (bad inputs,
  /// Σ-lint rejections) remain errors. Thread-safe; concurrent calls share
  /// the memo caches.
  Result<EquivVerdict> Equivalent(const ConjunctiveQuery& q1,
                                  const ConjunctiveQuery& q2,
                                  const EquivRequest& request);

  /// Equivalent() under an escalating-budget retry policy: attempt 0 runs
  /// with request.context.budget; each kUnknown attempt is resumed from its
  /// checkpoint under a budget scaled by `policy` until the verdict is
  /// decided or policy.max_attempts is spent. The final (possibly still
  /// kUnknown) verdict is returned; errors propagate immediately.
  Result<EquivVerdict> EquivalentWithRetry(const ConjunctiveQuery& q1,
                                           const ConjunctiveQuery& q2,
                                           const EquivRequest& request,
                                           const EscalatingBudget& policy);

  struct CacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    size_t contexts = 0;
    /// Compiled step kernels (tgd + egd) across the contexts' ChasePlans,
    /// and the pattern atoms they precompiled — zero when every context runs
    /// with use_compiled_kernels = false.
    size_t compiled_kernels = 0;
    size_t pattern_atoms = 0;
  };
  /// Chase-memo counters aggregated over every context this engine has
  /// served.
  CacheStats cache_stats() const;

  /// Bounds every chase memo this engine owns (existing and future) to
  /// `bytes` of retained outcomes, LRU-evicted — see ChaseMemo. Required
  /// for process-lifetime engines (the sqleqd server); 0 removes the bound.
  /// The limit is per memo context, not summed across contexts.
  void set_memo_byte_limit(size_t bytes);

  /// Attaches a tier-2 on-disk memo store (chase/memo_store.h) to every
  /// chase memo this engine owns, existing and future. Each memo's records
  /// are namespaced by its context key, so one store serves all contexts
  /// (and survives engine resets — the sqleqd server re-attaches the same
  /// store to a fresh engine). nullptr detaches.
  void set_memo_store(std::shared_ptr<MemoStore> store);

  /// Attaches the fleet's peer memo tier (chase/chase_cache.h) to every
  /// chase memo this engine owns, existing and future: local misses fetch
  /// from the owning shard before chasing, fresh outcomes are offered to
  /// their owner. nullptr detaches.
  void set_memo_peer_tier(std::shared_ptr<const MemoPeerTier> peer);

  /// The serving side of the memo_fetch verb: the serialized outcome body
  /// for `disk_key` (context prefix + canonical key) from whichever memo
  /// context matches the prefix, falling back to the attached MemoStore.
  /// Read-only — never chases. nullopt when nothing holds the record.
  std::optional<std::string> ExportMemoRecord(const std::string& disk_key);

  /// The accepting side of the memo_offer verb: promotes `body` into the
  /// matching memo context's memory tier (write-through to disk when
  /// attached), or straight into the MemoStore when no context matches yet.
  /// Returns whether the record was kept. Malformed bodies are dropped.
  bool ImportMemoRecord(const std::string& disk_key, const std::string& body);

 private:
  /// The memo for the request's chase context, under the resolved chase
  /// options (context budget already folded in). Deadlines are deliberately
  /// not part of the context key (and are stripped from the memo's options):
  /// Equivalent() enforces them per call, so calls differing only in
  /// deadline share cached chases.
  std::shared_ptr<ChaseMemo> MemoFor(const EquivRequest& request,
                                     const ChaseOptions& chase);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ChaseMemo>> memos_;
  size_t memo_byte_limit_ = 0;
  std::shared_ptr<MemoStore> memo_store_;
  std::shared_ptr<const MemoPeerTier> memo_peer_;
};

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_ENGINE_H_
