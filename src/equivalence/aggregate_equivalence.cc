#include "equivalence/aggregate_equivalence.h"

#include "equivalence/bag_set_equivalence.h"
#include "equivalence/containment.h"
#include "equivalence/engine.h"

namespace sqleq {
namespace {

bool UsesSetReduction(AggregateFunction f) {
  return f == AggregateFunction::kMax || f == AggregateFunction::kMin;
}

}  // namespace

bool AggregateEquivalent(const AggregateQuery& q1, const AggregateQuery& q2) {
  if (!q1.CompatibleWith(q2)) return false;
  ConjunctiveQuery c1 = q1.Core();
  ConjunctiveQuery c2 = q2.Core();
  if (UsesSetReduction(q1.function())) return SetEquivalent(c1, c2);
  return BagSetEquivalent(c1, c2);
}

Result<bool> AggregateEquivalentUnder(const AggregateQuery& q1, const AggregateQuery& q2,
                                      const DependencySet& sigma,
                                      const ChaseOptions& options) {
  if (!q1.CompatibleWith(q2)) return false;
  ConjunctiveQuery c1 = q1.Core();
  ConjunctiveQuery c2 = q2.Core();
  Semantics semantics =
      UsesSetReduction(q1.function()) ? Semantics::kSet : Semantics::kBagSet;
  EquivalenceEngine engine;
  EquivRequest request{semantics, sigma, Schema(), options};
  request.context.budget = options.budget;
  SQLEQ_ASSIGN_OR_RETURN(EquivVerdict verdict,
                         engine.Equivalent(c1, c2, request));
  return VerdictToBool(verdict);
}

}  // namespace sqleq
