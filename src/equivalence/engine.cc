#include "equivalence/engine.h"

#include "chase/homomorphism.h"
#include "chase/memo_store.h"
#include "chase/sound_chase.h"
#include "equivalence/bag_equivalence.h"
#include "equivalence/containment.h"
#include "equivalence/isomorphism.h"

namespace sqleq {
namespace {

/// Context fingerprint for memo sharing: everything a chase outcome depends
/// on. Deadline, thread count, and the budget caps are excluded on purpose:
/// a budget-exhausted chase is a Status (never memoized), so every cached
/// outcome is a completed chase whose result is budget-independent — which
/// lets a narrowed-budget request (the degraded admission lane, a client
/// that lowered max_chase_steps) still hit entries warmed at full budget.
std::string ContextKey(const EquivRequest& request, const ChaseOptions& chase) {
  std::string key = SemanticsToString(request.semantics);
  key += '\n';
  key += SigmaToString(request.sigma);
  key += '\n';
  key += request.schema.ToString();
  key += '\n';
  key += chase.egds_first ? "E" : "e";
  key += chase.key_based_fast_path ? "K" : "k";
  key += chase.use_compiled_kernels ? "C" : "c";
  key += chase.use_sigma_slicing ? "S" : "s";
  return key;
}

}  // namespace

bool ChasedEquivalent(const ConjunctiveQuery& c1, const ConjunctiveQuery& c2,
                      Semantics semantics, const Schema& schema) {
  switch (semantics) {
    case Semantics::kSet:
      return SetEquivalent(c1, c2);
    case Semantics::kBag:
      return BagEquivalentModuloSetRelations(c1, c2, schema);
    case Semantics::kBagSet:
      return AreIsomorphic(c1.CanonicalRepresentation(), c2.CanonicalRepresentation());
  }
  return false;
}

std::shared_ptr<ChaseMemo> EquivalenceEngine::MemoFor(const EquivRequest& request,
                                                      const ChaseOptions& chase) {
  std::string key = ContextKey(request, chase);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memos_.find(key);
  if (it != memos_.end()) return it->second;
  ChaseOptions memo_options = chase;
  // The budget is per call (ChaseRuntime::budget), never per memo: the memo
  // keyed by ContextKey outlives any one request's limits, so the baked
  // options carry neutral defaults only.
  memo_options.budget = ResourceBudget{};
  auto memo = std::make_shared<ChaseMemo>(request.sigma, request.semantics,
                                          request.schema, memo_options,
                                          memo_byte_limit_);
  if (memo_store_ != nullptr) memo->AttachStore(memo_store_, key);
  if (memo_peer_ != nullptr) memo->AttachPeerTier(memo_peer_, key);
  memos_.emplace(std::move(key), memo);
  return memo;
}

void EquivalenceEngine::set_memo_byte_limit(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  memo_byte_limit_ = bytes;
  for (auto& [key, memo] : memos_) memo->set_byte_limit(bytes);
}

void EquivalenceEngine::set_memo_store(std::shared_ptr<MemoStore> store) {
  std::lock_guard<std::mutex> lock(mu_);
  memo_store_ = std::move(store);
  for (auto& [key, memo] : memos_) memo->AttachStore(memo_store_, key);
}

void EquivalenceEngine::set_memo_peer_tier(
    std::shared_ptr<const MemoPeerTier> peer) {
  std::lock_guard<std::mutex> lock(mu_);
  memo_peer_ = std::move(peer);
  for (auto& [key, memo] : memos_) memo->AttachPeerTier(memo_peer_, key);
}

std::optional<std::string> EquivalenceEngine::ExportMemoRecord(
    const std::string& disk_key) {
  std::vector<std::shared_ptr<ChaseMemo>> memos;
  std::shared_ptr<MemoStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    memos.reserve(memos_.size());
    for (auto& [key, memo] : memos_) memos.push_back(memo);
    store = memo_store_;
  }
  // The prefix embedded in disk_key selects the matching context; memos of
  // other contexts reject it, so probing each is correct (and cheap — a
  // prefix compare per non-matching memo).
  for (const auto& memo : memos) {
    if (std::optional<std::string> body = memo->ExportRecord(disk_key);
        body.has_value()) {
      return body;
    }
  }
  if (store != nullptr) {
    Result<std::optional<std::string>> body = store->Get(disk_key);
    if (body.ok() && body->has_value()) return **body;
  }
  return std::nullopt;
}

bool EquivalenceEngine::ImportMemoRecord(const std::string& disk_key,
                                         const std::string& body) {
  std::vector<std::shared_ptr<ChaseMemo>> memos;
  std::shared_ptr<MemoStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    memos.reserve(memos_.size());
    for (auto& [key, memo] : memos_) memos.push_back(memo);
    store = memo_store_;
  }
  for (const auto& memo : memos) {
    if (memo->ImportRecord(disk_key, body)) return true;
  }
  // No live memo context matches (the owner may not have served this
  // context yet); keep the record durably so a future context warms from
  // disk. Validate first — never persist an unparsable body.
  if (store != nullptr && ParseChaseOutcomeBody(body).ok()) {
    return store->Put(disk_key, body).ok();
  }
  return false;
}

Result<EquivVerdict> EquivalenceEngine::Equivalent(const ConjunctiveQuery& q1,
                                                   const ConjunctiveQuery& q2,
                                                   const EquivRequest& request) {
  const EngineContext& ctx = request.context;
  TraceSpan engine_span(ctx.trace, "engine.equivalent");
  if (ctx.metrics != nullptr) {
    ctx.metrics->counter(metric::kEngineEquivCalls).Add();
  }
  // Stamp the resolved verdict counter on every exit path.
  auto counted = [&](EquivVerdict v) -> EquivVerdict {
    if (ctx.metrics != nullptr) {
      const char* name = v.verdict == Verdict::kEquivalent
                             ? metric::kEngineEquivEquivalent
                         : v.verdict == Verdict::kNotEquivalent
                             ? metric::kEngineEquivNotEquivalent
                             : metric::kEngineEquivUnknown;
      ctx.metrics->counter(name).Add();
    }
    return v;
  };
  if (request.analyze.enabled) {
    AnalyzeOptions analyze = request.analyze;
    if (analyze.budget == ResourceBudget{}) analyze.budget = ctx.budget;
    if (analyze.metrics == nullptr) analyze.metrics = ctx.metrics;
    SQLEQ_RETURN_IF_ERROR(ReportToStatus(
        AnalyzeProgram(request.schema, request.sigma, {q1, q2}, analyze)));
  }
  // One budget governs the call, threaded per-run (ChaseRuntime::budget)
  // rather than baked into the memo's plan — so calls with different budgets
  // share one memo and its compiled kernels (see ContextKey above).
  std::shared_ptr<ChaseMemo> memo = MemoFor(request, request.chase);
  ChaseRuntime runtime;
  runtime.budget = &ctx.budget;
  runtime.faults = ctx.faults;
  runtime.cancel = ctx.cancel;
  runtime.metrics = ctx.metrics;
  runtime.trace = ctx.trace;
  runtime.resume = request.resume;  // subject-stamped: applied to its own query only
  std::optional<ChaseCheckpoint> checkpoint;
  runtime.checkpoint_out = &checkpoint;

  // Anytime conversion: a chase stopped by budget/deadline/cancellation/
  // fault yields a kUnknown verdict echoing the inputs, not an error.
  auto unknown = [&](const Status& status, std::string phase) -> EquivVerdict {
    EquivVerdict out{/*equivalent=*/false, request.semantics,
                     q1,                   q2,
                     {},                   {},
                     /*q1_failed=*/false,  /*q2_failed=*/false,
                     std::nullopt,         std::nullopt,
                     Verdict::kUnknown,    std::nullopt,
                     std::nullopt};
    out.exhaustion = InferExhaustion(status, std::move(phase));
    out.checkpoint = std::move(checkpoint);
    return out;
  };

  Status guard = ctx.budget.CheckDeadline("equivalence chase of Q1");
  if (!guard.ok()) return counted(unknown(guard, "chase of Q1"));
  Result<ChaseOutcome> c1_result = memo->Chase(q1, runtime);
  if (!c1_result.ok()) {
    if (!IsAnytimeStop(c1_result.status())) return c1_result.status();
    return counted(unknown(c1_result.status(), "chase of Q1"));
  }
  ChaseOutcome c1 = std::move(*c1_result);
  guard = ctx.budget.CheckDeadline("equivalence chase of Q2");
  if (!guard.ok()) return counted(unknown(guard, "chase of Q2"));
  Result<ChaseOutcome> c2_result = memo->Chase(q2, runtime);
  if (!c2_result.ok()) {
    if (!IsAnytimeStop(c2_result.status())) return c2_result.status();
    return counted(unknown(c2_result.status(), "chase of Q2"));
  }
  ChaseOutcome c2 = std::move(*c2_result);

  EquivVerdict out{/*equivalent=*/false,   request.semantics,
                   c1.result,              c2.result,
                   std::move(c1.trace),    std::move(c2.trace),
                   c1.failed,              c2.failed,
                   std::nullopt,           std::nullopt,
                   Verdict::kNotEquivalent, std::nullopt,
                   std::nullopt};
  if (c1.failed || c2.failed) {
    // A failed chase means the query is empty on every instance of Σ; two
    // queries are then equivalent iff both fail.
    out.equivalent = c1.failed == c2.failed;
    out.verdict = out.equivalent ? Verdict::kEquivalent : Verdict::kNotEquivalent;
    return counted(std::move(out));
  }

  switch (request.semantics) {
    case Semantics::kSet: {
      ConjunctiveQuery renamed2 = c2.result.RenameApart();
      out.witness_forward = FindContainmentMapping(renamed2, c1.result);
      ConjunctiveQuery renamed1 = c1.result.RenameApart();
      out.witness_backward = FindContainmentMapping(renamed1, c2.result);
      out.equivalent =
          out.witness_forward.has_value() && out.witness_backward.has_value();
      break;
    }
    case Semantics::kBag: {
      ConjunctiveQuery n1 = NormalizeForBag(c1.result, request.schema);
      ConjunctiveQuery n2 = NormalizeForBag(c2.result, request.schema);
      out.witness_forward = FindIsomorphism(n1, n2);
      out.equivalent = out.witness_forward.has_value();
      break;
    }
    case Semantics::kBagSet: {
      out.witness_forward = FindIsomorphism(c1.result.CanonicalRepresentation(),
                                            c2.result.CanonicalRepresentation());
      out.equivalent = out.witness_forward.has_value();
      break;
    }
  }
  out.verdict = out.equivalent ? Verdict::kEquivalent : Verdict::kNotEquivalent;
  return counted(std::move(out));
}

Result<EquivVerdict> EquivalenceEngine::EquivalentWithRetry(
    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
    const EquivRequest& request, const EscalatingBudget& policy) {
  const size_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  const ResourceBudget base_budget = request.context.budget;
  EquivRequest attempt_request = request;
  std::optional<ChaseCheckpoint> carried;
  Result<EquivVerdict> result =
      Status::Internal("retry loop did not run");  // overwritten below
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    attempt_request.context.budget = policy.Escalate(base_budget, attempt);
    attempt_request.resume = carried.has_value() ? &*carried : request.resume;
    result = Equivalent(q1, q2, attempt_request);
    if (!result.ok() || result->verdict != Verdict::kUnknown ||
        !result->checkpoint.has_value()) {
      return result;
    }
    carried = *result->checkpoint;
  }
  return result;
}

EquivalenceEngine::CacheStats EquivalenceEngine::cache_stats() const {
  CacheStats out;
  std::lock_guard<std::mutex> lock(mu_);
  out.contexts = memos_.size();
  for (const auto& [key, memo] : memos_) {
    ChaseMemo::Stats s = memo->stats();
    out.hits += s.hits;
    out.misses += s.misses;
    out.entries += s.entries;
    ChasePlan::Stats plan = memo->plan().stats();
    if (plan.compiled_path) {
      out.compiled_kernels += plan.kernels.tgd_kernels + plan.kernels.egd_kernels;
      out.pattern_atoms += plan.kernels.pattern_atoms;
    }
  }
  return out;
}

}  // namespace sqleq
