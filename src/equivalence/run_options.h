// RunOptions — the per-call base every long-running entry point shares.
//
// EquivRequest (equivalence/engine.h), CandBOptions (reformulation/candb.h),
// and RewriteOptions (reformulation/views.h) used to each carry their own
// copies of the environment/strategy/pre-flight trio; they now inherit this
// base, so the fields compose identically everywhere:
//
//   * `context` — the per-call environment (util/engine_context.h):
//     ResourceBudget plus optional metrics, trace, fault-injection, and
//     cancellation facilities. The embedded `chase.budget` is overwritten by
//     `context.budget` for the chases a call runs, so there is exactly one
//     budget knob per call.
//   * `chase`   — chase strategy configuration (chase/set_chase.h):
//     egds_first, key_based_fast_path, use_compiled_kernels.
//   * `analyze` — Σ-lint pre-flight (src/analysis): inputs are analyzed
//     before any chase runs and kError findings are rejected as
//     FailedPrecondition instead of burning the chase budget. Set
//     analyze.enabled = false to skip, warnings_as_errors = true to refuse
//     what the engines would merely auto-correct.
//
// Migration mapping (one release of deprecation notice, now settled):
//   EquivRequest::{context,chase,analyze}   -> inherited, same names
//   CandBOptions::{context,chase,analyze}   -> inherited, same names
//   RewriteOptions::candb.<field>           -> RewriteOptions::<field>
//     (RewriteOptions now IS-A CandBOptions instead of wrapping one; drop
//     the `.candb` path segment at every use site.)
// The `resume` checkpoint pointers stay on the concrete structs — their
// types differ per entry point (ChaseCheckpoint vs CandBCheckpoint).
#ifndef SQLEQ_EQUIVALENCE_RUN_OPTIONS_H_
#define SQLEQ_EQUIVALENCE_RUN_OPTIONS_H_

#include "analysis/analyzer.h"
#include "chase/set_chase.h"
#include "util/engine_context.h"

namespace sqleq {

struct RunOptions {
  EngineContext context;
  ChaseOptions chase;
  AnalyzeOptions analyze = AnalyzeOptions::Preflight();
};

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_RUN_OPTIONS_H_
