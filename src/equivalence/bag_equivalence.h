// Bag equivalence of CQ queries in the absence of dependencies:
//   * Theorem 2.1(1) [Chaudhuri–Vardi]: Q ≡B Q′ iff Q and Q′ are isomorphic.
//   * Theorem 4.2 (this paper): when some relations are set valued in all
//     instances, Q1 ≡B Q2 modulo those set-enforcing constraints iff the
//     queries are isomorphic after dropping duplicate subgoals over the
//     set-valued relations.
#ifndef SQLEQ_EQUIVALENCE_BAG_EQUIVALENCE_H_
#define SQLEQ_EQUIVALENCE_BAG_EQUIVALENCE_H_

#include "ir/query.h"
#include "ir/schema.h"

namespace sqleq {

/// Theorem 2.1(1): isomorphism test. DEPRECATED: thin wrapper over
/// EquivalenceEngine (equivalence/engine.h) with Σ = ∅; use the engine for
/// the verdict's evidence and Result-based error reporting.
bool BagEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Theorem 4.2: bag equivalence on all instances satisfying only the
/// set-enforcing dependencies of `schema` (its set_valued flags).
bool BagEquivalentModuloSetRelations(const ConjunctiveQuery& q1,
                                     const ConjunctiveQuery& q2, const Schema& schema);

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_BAG_EQUIVALENCE_H_
