// Equivalence of aggregate CQ queries (§2.5, §6.2):
//   * Theorem 2.3 [Cohen–Nutt–Sagiv/Serebrenik; Nutt–Sagiv–Shurin]:
//     sum/count-query equivalence reduces to bag-set equivalence of cores;
//     max/min-query equivalence reduces to set equivalence of cores.
//   * Theorem 6.3 lifts both reductions under embedded dependencies via the
//     corresponding chased cores.
#ifndef SQLEQ_EQUIVALENCE_AGGREGATE_EQUIVALENCE_H_
#define SQLEQ_EQUIVALENCE_AGGREGATE_EQUIVALENCE_H_

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "ir/query.h"
#include "util/status.h"

namespace sqleq {

/// Theorem 2.3: dependency-free equivalence of compatible aggregate queries.
/// Incompatible queries (different function, grouping arity, or argument
/// shape) are reported non-equivalent.
bool AggregateEquivalent(const AggregateQuery& q1, const AggregateQuery& q2);

/// Theorem 6.3: equivalence under Σ, via chased cores. Conditioned on set
/// chase terminating on the cores.
Result<bool> AggregateEquivalentUnder(const AggregateQuery& q1, const AggregateQuery& q2,
                                      const DependencySet& sigma,
                                      const ChaseOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_AGGREGATE_EQUIVALENCE_H_
