#include "equivalence/isomorphism.h"

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace sqleq {
namespace {

/// Backtracking bijective matcher between the two bodies.
class IsomorphismSearch {
 public:
  IsomorphismSearch(const ConjunctiveQuery& a, const ConjunctiveQuery& b)
      : a_(a), b_(b) {
    for (size_t j = 0; j < b_.body().size(); ++j) {
      targets_[b_.body()[j].predicate()].push_back(j);
    }
  }

  std::optional<TermMap> Run() {
    // Quick rejects: sizes and per-predicate counts must agree.
    if (a_.body().size() != b_.body().size()) return std::nullopt;
    if (a_.head().size() != b_.head().size()) return std::nullopt;
    std::map<std::string, size_t> ca, cb;
    for (const Atom& x : a_.body()) ++ca[x.predicate()];
    for (const Atom& x : b_.body()) ++cb[x.predicate()];
    if (ca != cb) return std::nullopt;

    // Seed the map with the head correspondence.
    for (size_t i = 0; i < a_.head().size(); ++i) {
      if (!Bind(a_.head()[i], b_.head()[i])) return std::nullopt;
    }
    taken_.assign(b_.body().size(), false);
    if (Recurse(0)) return map_;
    return std::nullopt;
  }

 private:
  bool Bind(Term from, Term to) {
    if (from.IsConstant() || to.IsConstant()) return from == to;
    auto it = map_.find(from);
    if (it != map_.end()) return it->second == to;
    if (images_.count(to) > 0) return false;  // injectivity
    map_.emplace(from, to);
    images_.insert(to);
    bound_stack_.push_back(from);
    return true;
  }

  void RollbackTo(size_t mark) {
    while (bound_stack_.size() > mark) {
      Term v = bound_stack_.back();
      bound_stack_.pop_back();
      images_.erase(map_.at(v));
      map_.erase(v);
    }
  }

  bool Recurse(size_t i) {
    if (i == a_.body().size()) return true;
    const Atom& atom = a_.body()[i];
    auto it = targets_.find(atom.predicate());
    if (it == targets_.end()) return false;
    for (size_t j : it->second) {
      if (taken_[j]) continue;
      const Atom& target = b_.body()[j];
      if (target.arity() != atom.arity()) continue;
      size_t mark = bound_stack_.size();
      bool ok = true;
      for (size_t k = 0; k < atom.arity(); ++k) {
        if (!Bind(atom.args()[k], target.args()[k])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        taken_[j] = true;
        if (Recurse(i + 1)) return true;
        taken_[j] = false;
      }
      RollbackTo(mark);
    }
    return false;
  }

  const ConjunctiveQuery& a_;
  const ConjunctiveQuery& b_;
  TermMap map_;
  std::unordered_set<Term, TermHash> images_;
  std::vector<Term> bound_stack_;
  std::vector<bool> taken_;
  std::unordered_map<std::string, std::vector<size_t>> targets_;
};

}  // namespace

std::optional<TermMap> FindIsomorphism(const ConjunctiveQuery& a,
                                       const ConjunctiveQuery& b) {
  IsomorphismSearch search(a, b);
  return search.Run();
}

bool AreIsomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return FindIsomorphism(a, b).has_value();
}

}  // namespace sqleq
