// Bag-set equivalence in the absence of dependencies, Theorem 2.1(2)
// [Chaudhuri–Vardi]: Q ≡BS Q′ iff the canonical representations (duplicate
// atoms removed) are isomorphic.
#ifndef SQLEQ_EQUIVALENCE_BAG_SET_EQUIVALENCE_H_
#define SQLEQ_EQUIVALENCE_BAG_SET_EQUIVALENCE_H_

#include "ir/query.h"

namespace sqleq {

/// Theorem 2.1(2). DEPRECATED: thin wrapper over EquivalenceEngine
/// (equivalence/engine.h) with Σ = ∅; use the engine for the verdict's
/// evidence and Result-based error reporting.
bool BagSetEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_BAG_SET_EQUIVALENCE_H_
