// CQ isomorphism: a bijective variable renaming mapping one query onto the
// other — head position-wise, body bijectively as bags of atoms. This is
// exactly bag equivalence in the absence of dependencies (Theorem 2.1(1)).
#ifndef SQLEQ_EQUIVALENCE_ISOMORPHISM_H_
#define SQLEQ_EQUIVALENCE_ISOMORPHISM_H_

#include <optional>

#include "ir/query.h"

namespace sqleq {

/// Finds an isomorphism from `a` to `b`: an injective variable→variable map
/// (constants fixed) sending head to head position-wise and inducing a
/// bijection between the bodies as bags of atoms. Returns nullopt if none.
std::optional<TermMap> FindIsomorphism(const ConjunctiveQuery& a,
                                       const ConjunctiveQuery& b);

bool AreIsomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

}  // namespace sqleq

#endif  // SQLEQ_EQUIVALENCE_ISOMORPHISM_H_
