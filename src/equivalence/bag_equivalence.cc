#include "equivalence/bag_equivalence.h"

#include "chase/sound_chase.h"
#include "equivalence/isomorphism.h"

namespace sqleq {

bool BagEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return AreIsomorphic(q1, q2);
}

bool BagEquivalentModuloSetRelations(const ConjunctiveQuery& q1,
                                     const ConjunctiveQuery& q2, const Schema& schema) {
  return AreIsomorphic(NormalizeForBag(q1, schema), NormalizeForBag(q2, schema));
}

}  // namespace sqleq
