#include "equivalence/bag_equivalence.h"

#include "chase/sound_chase.h"
#include "equivalence/engine.h"
#include "equivalence/isomorphism.h"

namespace sqleq {

bool BagEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  // Routed through the facade (Σ = ∅, so the chase is a no-op and the test
  // degenerates to Theorem 2.1(1)'s isomorphism check).
  EquivalenceEngine engine;
  Result<EquivVerdict> verdict =
      engine.Equivalent(q1, q2, EquivRequest{Semantics::kBag, {}, Schema(), {}});
  return verdict.ok() && verdict->equivalent;
}

bool BagEquivalentModuloSetRelations(const ConjunctiveQuery& q1,
                                     const ConjunctiveQuery& q2, const Schema& schema) {
  return AreIsomorphic(NormalizeForBag(q1, schema), NormalizeForBag(q2, schema));
}

}  // namespace sqleq
