#include "equivalence/containment.h"

#include "chase/homomorphism.h"

namespace sqleq {

bool SetContained(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  // Rename apart so shared variable names between the two queries cannot
  // confuse the mapping search.
  ConjunctiveQuery from = q2.RenameApart();
  return ContainmentMappingExists(from, q1);
}

bool SetEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return SetContained(q1, q2) && SetContained(q2, q1);
}

}  // namespace sqleq
