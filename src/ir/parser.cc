#include "ir/parser.h"

#include <cctype>
#include <optional>
#include <string>

#include "util/string_util.h"

namespace sqleq {
namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kColonDash,  // :-
  kArrow,      // ->
  kEquals,
  kColon,
  kStar,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      size_t pos = i_;
      if (i_ >= input_.size()) {
        out.push_back({TokKind::kEnd, "", pos});
        return out;
      }
      char c = input_[i_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i_;
        while (i_ < input_.size() && (std::isalnum(static_cast<unsigned char>(input_[i_])) ||
                                      input_[i_] == '_' || input_[i_] == '#')) {
          ++i_;
        }
        out.push_back({TokKind::kIdent, std::string(input_.substr(start, i_ - start)), pos});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[i_ + 1])))) {
        size_t start = i_;
        if (c == '-') ++i_;
        while (i_ < input_.size() && std::isdigit(static_cast<unsigned char>(input_[i_]))) {
          ++i_;
        }
        out.push_back({TokKind::kNumber, std::string(input_.substr(start, i_ - start)), pos});
      } else if (c == '\'') {
        ++i_;
        size_t start = i_;
        while (i_ < input_.size() && input_[i_] != '\'') ++i_;
        if (i_ >= input_.size()) {
          return Status::InvalidArgument("unterminated string literal at offset " +
                                         std::to_string(pos));
        }
        out.push_back({TokKind::kString, std::string(input_.substr(start, i_ - start)), pos});
        ++i_;
      } else if (c == '(') {
        ++i_;
        out.push_back({TokKind::kLParen, "(", pos});
      } else if (c == ')') {
        ++i_;
        out.push_back({TokKind::kRParen, ")", pos});
      } else if (c == ',') {
        ++i_;
        out.push_back({TokKind::kComma, ",", pos});
      } else if (c == '.') {
        ++i_;
        out.push_back({TokKind::kPeriod, ".", pos});
      } else if (c == '*') {
        ++i_;
        out.push_back({TokKind::kStar, "*", pos});
      } else if (c == '=') {
        ++i_;
        out.push_back({TokKind::kEquals, "=", pos});
      } else if (c == ':') {
        if (i_ + 1 < input_.size() && input_[i_ + 1] == '-') {
          i_ += 2;
          out.push_back({TokKind::kColonDash, ":-", pos});
        } else {
          ++i_;
          out.push_back({TokKind::kColon, ":", pos});
        }
      } else if (c == '-') {
        if (i_ + 1 < input_.size() && input_[i_ + 1] == '>') {
          i_ += 2;
          out.push_back({TokKind::kArrow, "->", pos});
        } else {
          return Status::InvalidArgument("unexpected '-' at offset " + std::to_string(pos));
        }
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") + c +
                                       "' at offset " + std::to_string(pos));
      }
    }
  }

 private:
  void SkipSpace() {
    while (i_ < input_.size() && std::isspace(static_cast<unsigned char>(input_[i_]))) ++i_;
  }

  std::string_view input_;
  size_t i_ = 0;
};

bool IsVariableName(const std::string& ident) {
  return !ident.empty() && (std::isupper(static_cast<unsigned char>(ident[0])) ||
                            ident[0] == '_');
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[i_]; }
  const Token& Next() { return tokens_[i_++]; }
  bool At(TokKind k) const { return Peek().kind == k; }

  bool AtKeyword(std::string_view kw) const {
    return At(TokKind::kIdent) && EqualsIgnoreCase(Peek().text, kw);
  }

  Status Expect(TokKind k, std::string_view what) {
    if (!At(k)) {
      return Status::InvalidArgument("expected " + std::string(what) + " near offset " +
                                     std::to_string(Peek().pos));
    }
    Next();
    return Status::OK();
  }

  /// term := IDENT | NUMBER | STRING
  Result<Term> ParseOneTerm() {
    const Token& t = Peek();
    if (t.kind == TokKind::kIdent) {
      Next();
      if (IsVariableName(t.text)) return Term::Var(t.text);
      return Term::Str(t.text);
    }
    if (t.kind == TokKind::kNumber) {
      Next();
      return Term::Int(std::stoll(t.text));
    }
    if (t.kind == TokKind::kString) {
      Next();
      return Term::Str(t.text);
    }
    return Status::InvalidArgument("expected a term near offset " + std::to_string(t.pos));
  }

  /// atom := IDENT '(' term (',' term)* ')'
  Result<Atom> ParseOneAtom() {
    if (!At(TokKind::kIdent)) {
      return Status::InvalidArgument("expected a predicate name near offset " +
                                     std::to_string(Peek().pos));
    }
    std::string pred = Next().text;
    SQLEQ_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    std::vector<Term> args;
    while (true) {
      SQLEQ_ASSIGN_OR_RETURN(Term t, ParseOneTerm());
      args.push_back(t);
      if (At(TokKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    SQLEQ_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return Atom(std::move(pred), std::move(args));
  }

  /// Skips an optional "EXISTS V1, V2, ... :" or "EXISTS V1 V2" prefix.
  Status SkipExistsPrefix() {
    if (!AtKeyword("EXISTS")) return Status::OK();
    Next();
    bool saw_var = false;
    while (At(TokKind::kIdent) && IsVariableName(Peek().text)) {
      Next();
      saw_var = true;
      if (At(TokKind::kComma)) Next();
    }
    if (!saw_var) {
      return Status::InvalidArgument("EXISTS must be followed by variables");
    }
    if (At(TokKind::kColon)) Next();
    return Status::OK();
  }

  /// conjunction := atom ((',' | AND) atom)*
  Result<std::vector<Atom>> ParseConjunction() {
    std::vector<Atom> atoms;
    while (true) {
      SQLEQ_ASSIGN_OR_RETURN(Atom a, ParseOneAtom());
      atoms.push_back(std::move(a));
      if (At(TokKind::kComma) || AtKeyword("AND")) {
        Next();
        continue;
      }
      break;
    }
    return atoms;
  }

  size_t i_ = 0;
  std::vector<Token> tokens_;
};

struct HeadItem {
  // Either a plain term, or an aggregate term alpha(Y) / count(*).
  std::optional<Term> term;
  std::optional<AggregateFunction> agg;
  std::optional<Term> agg_arg;
};

Result<std::optional<AggregateFunction>> AggregateFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "sum")) return std::optional(AggregateFunction::kSum);
  if (EqualsIgnoreCase(name, "count")) return std::optional(AggregateFunction::kCount);
  if (EqualsIgnoreCase(name, "max")) return std::optional(AggregateFunction::kMax);
  if (EqualsIgnoreCase(name, "min")) return std::optional(AggregateFunction::kMin);
  return std::optional<AggregateFunction>();
}

/// head := IDENT '(' head_item (',' head_item)* ')'
/// head_item := term | aggfn '(' term ')' | count '(' '*' ')'
Result<std::pair<std::string, std::vector<HeadItem>>> ParseHead(Parser* p) {
  if (!p->At(TokKind::kIdent)) {
    return Status::InvalidArgument("expected a query name");
  }
  std::string name = p->Next().text;
  SQLEQ_RETURN_IF_ERROR(p->Expect(TokKind::kLParen, "'(' after query name"));
  std::vector<HeadItem> items;
  while (true) {
    HeadItem item;
    if (p->At(TokKind::kIdent)) {
      std::string ident = p->Peek().text;
      SQLEQ_ASSIGN_OR_RETURN(std::optional<AggregateFunction> agg,
                             AggregateFromName(ident));
      // Lookahead: "sum(" is an aggregate term; a bare "sum" is a constant.
      if (agg.has_value() && p->tokens_[p->i_ + 1].kind == TokKind::kLParen) {
        p->Next();  // function name
        p->Next();  // '('
        if (p->At(TokKind::kStar)) {
          if (*agg != AggregateFunction::kCount) {
            return Status::InvalidArgument("only count may take '*'");
          }
          p->Next();
          item.agg = AggregateFunction::kCountStar;
        } else {
          SQLEQ_ASSIGN_OR_RETURN(Term t, p->ParseOneTerm());
          item.agg = *agg;
          item.agg_arg = t;
        }
        SQLEQ_RETURN_IF_ERROR(p->Expect(TokKind::kRParen, "')' after aggregate argument"));
        items.push_back(item);
        if (p->At(TokKind::kComma)) {
          p->Next();
          continue;
        }
        break;
      }
    }
    SQLEQ_ASSIGN_OR_RETURN(Term t, p->ParseOneTerm());
    item.term = t;
    items.push_back(item);
    if (p->At(TokKind::kComma)) {
      p->Next();
      continue;
    }
    break;
  }
  SQLEQ_RETURN_IF_ERROR(p->Expect(TokKind::kRParen, "')' after query head"));
  return std::make_pair(std::move(name), std::move(items));
}

Status FinishStatement(Parser* p) {
  if (p->At(TokKind::kPeriod)) p->Next();
  if (!p->At(TokKind::kEnd)) {
    return Status::InvalidArgument("trailing input near offset " +
                                   std::to_string(p->Peek().pos));
  }
  return Status::OK();
}

}  // namespace

Result<ParsedQueryParts> ParseQueryParts(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  Parser p(std::move(tokens));
  SQLEQ_ASSIGN_OR_RETURN(auto head, ParseHead(&p));
  ParsedQueryParts parts;
  parts.name = std::move(head.first);
  for (const HeadItem& item : head.second) {
    if (item.agg.has_value()) {
      return Status::InvalidArgument(
          "aggregate term in a plain CQ head; use ParseAggregateQuery");
    }
    parts.head.push_back(*item.term);
  }
  SQLEQ_RETURN_IF_ERROR(p.Expect(TokKind::kColonDash, "':-'"));
  SQLEQ_ASSIGN_OR_RETURN(parts.body, p.ParseConjunction());
  SQLEQ_RETURN_IF_ERROR(FinishStatement(&p));
  return parts;
}

Result<ConjunctiveQuery> ParseQuery(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(ParsedQueryParts parts, ParseQueryParts(text));
  return ConjunctiveQuery::Create(std::move(parts.name), std::move(parts.head),
                                  std::move(parts.body));
}

Result<AggregateQuery> ParseAggregateQuery(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  Parser p(std::move(tokens));
  SQLEQ_ASSIGN_OR_RETURN(auto head, ParseHead(&p));
  std::vector<Term> grouping;
  std::optional<AggregateFunction> fn;
  std::optional<Term> agg_arg;
  for (size_t i = 0; i < head.second.size(); ++i) {
    const HeadItem& item = head.second[i];
    if (item.agg.has_value()) {
      if (i + 1 != head.second.size()) {
        return Status::InvalidArgument("the aggregate term must be last in the head");
      }
      fn = item.agg;
      agg_arg = item.agg_arg;
    } else {
      grouping.push_back(*item.term);
    }
  }
  if (!fn.has_value()) {
    return Status::InvalidArgument("aggregate query must have exactly one aggregate term");
  }
  SQLEQ_RETURN_IF_ERROR(p.Expect(TokKind::kColonDash, "':-'"));
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Atom> body, p.ParseConjunction());
  SQLEQ_RETURN_IF_ERROR(FinishStatement(&p));
  return AggregateQuery::Create(std::move(head.first), std::move(grouping), *fn, agg_arg,
                                std::move(body));
}

Result<ParsedDependency> ParseDependencyText(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  Parser p(std::move(tokens));
  ParsedDependency dep;
  SQLEQ_ASSIGN_OR_RETURN(dep.body, p.ParseConjunction());
  SQLEQ_RETURN_IF_ERROR(p.Expect(TokKind::kArrow, "'->'"));
  SQLEQ_RETURN_IF_ERROR(p.SkipExistsPrefix());
  // The conclusion is either equations (egd) or atoms (tgd). Disambiguate by
  // looking for '=' after the first item.
  while (true) {
    // Try an equation first: term '=' term.
    size_t save = p.i_;
    bool parsed_equation = false;
    {
      Result<Term> lhs = p.ParseOneTerm();
      if (lhs.ok() && p.At(TokKind::kEquals)) {
        p.Next();
        SQLEQ_ASSIGN_OR_RETURN(Term rhs, p.ParseOneTerm());
        dep.equations.emplace_back(*lhs, rhs);
        parsed_equation = true;
      } else {
        p.i_ = save;
      }
    }
    if (!parsed_equation) {
      SQLEQ_ASSIGN_OR_RETURN(Atom a, p.ParseOneAtom());
      dep.head_atoms.push_back(std::move(a));
    }
    if (p.At(TokKind::kComma) || p.AtKeyword("AND")) {
      p.Next();
      continue;
    }
    break;
  }
  if (!dep.equations.empty() && !dep.head_atoms.empty()) {
    return Status::InvalidArgument(
        "dependency conclusion mixes atoms and equations; split Σ into tgds and egds");
  }
  SQLEQ_RETURN_IF_ERROR(FinishStatement(&p));
  return dep;
}

Result<std::vector<Atom>> ParseAtoms(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  Parser p(std::move(tokens));
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Atom> atoms, p.ParseConjunction());
  SQLEQ_RETURN_IF_ERROR(FinishStatement(&p));
  return atoms;
}

Result<Term> ParseTerm(std::string_view text) {
  SQLEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(text).Tokenize());
  Parser p(std::move(tokens));
  SQLEQ_ASSIGN_OR_RETURN(Term t, p.ParseOneTerm());
  SQLEQ_RETURN_IF_ERROR(FinishStatement(&p));
  return t;
}

}  // namespace sqleq
