// Interned predicate symbols. Atom keeps its predicate as an owned string
// (readable, stable ABI for the IR); the data-oriented chase core
// (chase/flat_db.h) keys its struct-of-arrays storage and indexes on dense
// int32 ids instead, so the hot loop never hashes or compares strings.
// Interning is process-wide, append-only, and thread-safe, mirroring the
// Term tables in ir/term.cc.
#ifndef SQLEQ_IR_PREDICATE_H_
#define SQLEQ_IR_PREDICATE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sqleq {

/// Dense id of an interned predicate symbol. Ids are handed out in first-
/// intern order and stay stable for the process lifetime.
using PredicateId = int32_t;

/// Interns (or looks up) `name`, returning its stable id.
PredicateId InternPredicate(std::string_view name);

/// The interned name for `id`; reference stays valid for the process
/// lifetime. Requires an id previously returned by InternPredicate.
const std::string& PredicateName(PredicateId id);

/// Number of predicates interned so far (ids are 0..count-1).
size_t InternedPredicateCount();

}  // namespace sqleq

#endif  // SQLEQ_IR_PREDICATE_H_
