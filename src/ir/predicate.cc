#include "ir/predicate.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace sqleq {
namespace {

// Mirrors the Term interning tables (ir/term.cc): deque keeps name addresses
// stable across later interning; the mutex guards both structures.
struct PredTable {
  std::mutex mu;
  std::deque<std::string> names;
  std::unordered_map<std::string_view, PredicateId> index;
};

PredTable& Table() {
  static PredTable* t = new PredTable();
  return *t;
}

}  // namespace

PredicateId InternPredicate(std::string_view name) {
  // One-entry memo: interning runs per atom in the chase inner loop, and
  // consecutive atoms overwhelmingly share a predicate, so a short string
  // compare usually replaces the lock + hash below. Thread-local, so no
  // synchronization; ids are stable once assigned.
  thread_local std::string last_name;
  thread_local PredicateId last_id = -1;
  if (last_id >= 0 && name == last_name) return last_id;
  PredTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.index.find(name);
  PredicateId id;
  if (it != t.index.end()) {
    id = it->second;
  } else {
    id = static_cast<PredicateId>(t.names.size());
    t.names.emplace_back(name);
    t.index.emplace(t.names.back(), id);
  }
  last_name.assign(name);
  last_id = id;
  return id;
}

const std::string& PredicateName(PredicateId id) {
  PredTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  assert(id >= 0 && static_cast<size_t>(id) < t.names.size());
  return t.names[static_cast<size_t>(id)];
}

size_t InternedPredicateCount() {
  PredTable& t = Table();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.names.size();
}

}  // namespace sqleq
