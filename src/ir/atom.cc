#include "ir/atom.h"

#include <unordered_set>

namespace sqleq {

bool Atom::IsGround() const {
  for (Term t : args_) {
    if (t.IsVariable()) return false;
  }
  return true;
}

void Atom::CollectVariables(std::vector<Term>* out) const {
  for (Term t : args_) {
    if (t.IsVariable()) out->push_back(t);
  }
}

std::string Atom::ToString() const {
  std::string out = predicate_;
  out += '(';
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ')';
  return out;
}

size_t Atom::Hash() const {
  size_t h = std::hash<std::string>()(predicate_);
  for (Term t : args_) {
    h = h * 1000003u + t.Hash();
  }
  return h;
}

std::string AtomsToString(const std::vector<Atom>& atoms) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].ToString();
  }
  return out;
}

std::vector<Term> DistinctVariables(const std::vector<Atom>& atoms) {
  std::vector<Term> out;
  std::unordered_set<Term, TermHash> seen;
  for (const Atom& a : atoms) {
    for (Term t : a.args()) {
      if (t.IsVariable() && seen.insert(t).second) out.push_back(t);
    }
  }
  return out;
}

}  // namespace sqleq
