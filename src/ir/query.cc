#include "ir/query.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace sqleq {

Term ApplyTermMap(const TermMap& map, Term t) {
  auto it = map.find(t);
  return it == map.end() ? t : it->second;
}

Atom ApplyTermMap(const TermMap& map, const Atom& atom) {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (Term t : atom.args()) args.push_back(ApplyTermMap(map, t));
  return Atom(atom.predicate(), std::move(args));
}

std::vector<Atom> ApplyTermMap(const TermMap& map, const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(ApplyTermMap(map, a));
  return out;
}

Result<ConjunctiveQuery> ConjunctiveQuery::Create(std::string name,
                                                  std::vector<Term> head,
                                                  std::vector<Atom> body) {
  if (body.empty()) {
    return Status::InvalidArgument("query '" + name + "' has an empty body");
  }
  std::unordered_set<Term, TermHash> body_vars;
  for (const Atom& a : body) {
    for (Term t : a.args()) {
      if (t.IsVariable()) body_vars.insert(t);
    }
  }
  for (Term t : head) {
    if (t.IsVariable() && body_vars.find(t) == body_vars.end()) {
      return Status::InvalidArgument("query '" + name + "' is unsafe: head variable " +
                                     t.ToString() + " does not occur in the body");
    }
  }
  return ConjunctiveQuery(std::move(name), std::move(head), std::move(body));
}

ConjunctiveQuery ConjunctiveQuery::Make(std::string name, std::vector<Term> head,
                                        std::vector<Atom> body) {
  Result<ConjunctiveQuery> r = Create(std::move(name), std::move(head), std::move(body));
  assert(r.ok() && "ConjunctiveQuery::Make on invalid query");
  return std::move(r).value();
}

std::vector<Term> ConjunctiveQuery::HeadVariables() const {
  std::vector<Term> out;
  std::unordered_set<Term, TermHash> seen;
  for (Term t : head_) {
    if (t.IsVariable() && seen.insert(t).second) out.push_back(t);
  }
  return out;
}

std::vector<Term> ConjunctiveQuery::BodyVariables() const {
  return DistinctVariables(body_);
}

ConjunctiveQuery ConjunctiveQuery::CanonicalRepresentation() const {
  std::vector<Atom> body;
  std::unordered_set<Atom, AtomHash> seen;
  for (const Atom& a : body_) {
    if (seen.insert(a).second) body.push_back(a);
  }
  return ConjunctiveQuery(name_, head_, std::move(body));
}

bool ConjunctiveQuery::SameUpToAtomOrder(const ConjunctiveQuery& other) const {
  if (head_ != other.head_) return false;
  if (body_.size() != other.body_.size()) return false;
  std::vector<Atom> a = body_;
  std::vector<Atom> b = other.body_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

ConjunctiveQuery ConjunctiveQuery::Substitute(const TermMap& map) const {
  std::vector<Term> head;
  head.reserve(head_.size());
  for (Term t : head_) head.push_back(ApplyTermMap(map, t));
  return ConjunctiveQuery(name_, std::move(head), ApplyTermMap(map, body_));
}

ConjunctiveQuery ConjunctiveQuery::RenameApart(TermMap* out_renaming) const {
  TermMap renaming;
  for (Term v : BodyVariables()) {
    renaming.emplace(v, Term::FreshVar(std::string(v.name())));
  }
  ConjunctiveQuery renamed = Substitute(renaming);
  if (out_renaming != nullptr) *out_renaming = std::move(renaming);
  return renamed;
}

ConjunctiveQuery ConjunctiveQuery::WithBody(std::vector<Atom> body) const {
  return ConjunctiveQuery(name_, head_, std::move(body));
}

ConjunctiveQuery ConjunctiveQuery::WithName(std::string name) const {
  return ConjunctiveQuery(std::move(name), head_, body_);
}

std::unordered_map<std::string, size_t> ConjunctiveQuery::PredicateCounts() const {
  std::unordered_map<std::string, size_t> out;
  for (const Atom& a : body_) ++out[a.predicate()];
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = name_;
  out += '(';
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_[i].ToString();
  }
  out += ") :- ";
  out += AtomsToString(body_);
  out += '.';
  return out;
}

const char* AggregateFunctionToString(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kCount:
      return "count";
    case AggregateFunction::kCountStar:
      return "count(*)";
    case AggregateFunction::kMax:
      return "max";
    case AggregateFunction::kMin:
      return "min";
  }
  return "?";
}

Result<AggregateQuery> AggregateQuery::Create(std::string name,
                                              std::vector<Term> grouping,
                                              AggregateFunction function,
                                              std::optional<Term> agg_arg,
                                              std::vector<Atom> body) {
  if (body.empty()) {
    return Status::InvalidArgument("aggregate query '" + name + "' has an empty body");
  }
  bool needs_arg = function != AggregateFunction::kCountStar;
  if (needs_arg && !agg_arg.has_value()) {
    return Status::InvalidArgument("aggregate query '" + name +
                                   "': aggregate function requires an argument");
  }
  if (!needs_arg && agg_arg.has_value()) {
    return Status::InvalidArgument("aggregate query '" + name +
                                   "': count(*) takes no argument");
  }
  std::unordered_set<Term, TermHash> body_vars;
  for (const Atom& a : body) {
    for (Term t : a.args()) {
      if (t.IsVariable()) body_vars.insert(t);
    }
  }
  for (Term t : grouping) {
    if (t.IsVariable() && body_vars.find(t) == body_vars.end()) {
      return Status::InvalidArgument("aggregate query '" + name +
                                     "' is unsafe: grouping variable " + t.ToString() +
                                     " does not occur in the body");
    }
  }
  if (agg_arg.has_value()) {
    if (!agg_arg->IsVariable()) {
      return Status::InvalidArgument("aggregate query '" + name +
                                     "': aggregate argument must be a variable");
    }
    if (body_vars.find(*agg_arg) == body_vars.end()) {
      return Status::InvalidArgument("aggregate query '" + name +
                                     "' is unsafe: aggregate argument " +
                                     agg_arg->ToString() +
                                     " does not occur in the body");
    }
    for (Term t : grouping) {
      if (t == *agg_arg) {
        return Status::InvalidArgument("aggregate query '" + name +
                                       "': aggregate argument " + agg_arg->ToString() +
                                       " may not also be a grouping term (§2.5)");
      }
    }
  }
  return AggregateQuery(std::move(name), std::move(grouping), function, agg_arg,
                        std::move(body));
}

AggregateQuery AggregateQuery::Make(std::string name, std::vector<Term> grouping,
                                    AggregateFunction function,
                                    std::optional<Term> agg_arg,
                                    std::vector<Atom> body) {
  Result<AggregateQuery> r =
      Create(std::move(name), std::move(grouping), function, agg_arg, std::move(body));
  assert(r.ok() && "AggregateQuery::Make on invalid query");
  return std::move(r).value();
}

ConjunctiveQuery AggregateQuery::Core() const {
  std::vector<Term> head = grouping_;
  if (agg_arg_.has_value()) head.push_back(*agg_arg_);
  // The core of a safe aggregate query is safe by construction.
  return ConjunctiveQuery::Make(name_ + "_core", std::move(head), body_);
}

bool AggregateQuery::CompatibleWith(const AggregateQuery& other) const {
  return grouping_.size() == other.grouping_.size() && function_ == other.function_ &&
         agg_arg_.has_value() == other.agg_arg_.has_value();
}

std::string AggregateQuery::ToString() const {
  std::string out = name_;
  out += '(';
  for (size_t i = 0; i < grouping_.size(); ++i) {
    if (i > 0) out += ", ";
    out += grouping_[i].ToString();
  }
  if (!grouping_.empty()) out += ", ";
  if (function_ == AggregateFunction::kCountStar) {
    out += "count(*)";
  } else {
    out += AggregateFunctionToString(function_);
    out += '(';
    out += agg_arg_->ToString();
    out += ')';
  }
  out += ") :- ";
  out += AtomsToString(body_);
  out += '.';
  return out;
}

}  // namespace sqleq
