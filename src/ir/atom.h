// Atom: a relational atom p(t1, ..., tn) over interned terms.
#ifndef SQLEQ_IR_ATOM_H_
#define SQLEQ_IR_ATOM_H_

#include <string>
#include <string_view>
#include <vector>

#include "ir/term.h"

namespace sqleq {

/// A relational atom: predicate symbol applied to a vector of terms.
/// Predicates are interned via Term::Var's table indirectly — we keep the
/// predicate as an owned string for clarity; atom comparisons hash it once.
class Atom {
 public:
  Atom() = default;
  Atom(std::string predicate, std::vector<Term> args)
      : predicate_(std::move(predicate)), args_(std::move(args)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>& mutable_args() { return args_; }
  size_t arity() const { return args_.size(); }

  /// True if every argument is a constant.
  bool IsGround() const;

  /// Appends this atom's variables (with duplicates) to `out`.
  void CollectVariables(std::vector<Term>* out) const;

  /// "p(X, 1, 'a')".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate_ == b.predicate_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate_ != b.predicate_) return a.predicate_ < b.predicate_;
    return a.args_ < b.args_;
  }

 private:
  std::string predicate_;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// Renders a conjunction "p(X), q(X, Y)".
std::string AtomsToString(const std::vector<Atom>& atoms);

/// All distinct variables of `atoms` in first-occurrence order.
std::vector<Term> DistinctVariables(const std::vector<Atom>& atoms);

}  // namespace sqleq

#endif  // SQLEQ_IR_ATOM_H_
