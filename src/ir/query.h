// ConjunctiveQuery and AggregateQuery: the query IR of sqleq.
//
// A conjunctive query (CQ, §2.1 of the paper) is Q(X̄) :- φ(X̄, Ȳ) where φ is
// a nonempty conjunction of relational atoms and every head variable occurs
// in the body (safety). An aggregate query (§2.5) is a CQ core plus an
// aggregate term in the head.
#ifndef SQLEQ_IR_QUERY_H_
#define SQLEQ_IR_QUERY_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/atom.h"
#include "ir/term.h"
#include "util/status.h"

namespace sqleq {

/// A finite mapping of terms to terms. Used for homomorphisms, assignments,
/// and variable renamings. Constants always map to themselves implicitly.
using TermMap = std::unordered_map<Term, Term, TermHash>;

/// Applies `map` to `t`: mapped variables are replaced, everything else
/// (constants, unmapped variables) passes through.
Term ApplyTermMap(const TermMap& map, Term t);

/// Applies `map` to every argument of `atom`.
Atom ApplyTermMap(const TermMap& map, const Atom& atom);

/// Applies `map` to every atom.
std::vector<Atom> ApplyTermMap(const TermMap& map, const std::vector<Atom>& atoms);

/// A safe conjunctive query.
class ConjunctiveQuery {
 public:
  /// Validates safety (nonempty body; every head variable occurs in the
  /// body) and constructs the query.
  static Result<ConjunctiveQuery> Create(std::string name, std::vector<Term> head,
                                         std::vector<Atom> body);

  /// Create() that asserts success; for statically well-formed queries.
  static ConjunctiveQuery Make(std::string name, std::vector<Term> head,
                               std::vector<Atom> body);

  const std::string& name() const { return name_; }
  const std::vector<Term>& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }

  /// Distinct head variables, first-occurrence order.
  std::vector<Term> HeadVariables() const;

  /// Distinct body variables, first-occurrence order.
  std::vector<Term> BodyVariables() const;

  /// Number of body atoms.
  size_t size() const { return body_.size(); }

  /// The canonical representation Qc (§2.3): duplicate body atoms removed,
  /// first occurrences kept.
  ConjunctiveQuery CanonicalRepresentation() const;

  /// True if the two queries have identical heads and identical bodies as
  /// *bags* of atoms (order-insensitive, multiplicity-sensitive).
  bool SameUpToAtomOrder(const ConjunctiveQuery& other) const;

  /// Applies `map` to head and body.
  ConjunctiveQuery Substitute(const TermMap& map) const;

  /// Returns a copy whose variables are replaced by globally fresh ones
  /// (head variables renamed consistently with the body). `out_renaming`,
  /// if non-null, receives the old→new variable map.
  ConjunctiveQuery RenameApart(TermMap* out_renaming = nullptr) const;

  /// Returns a copy with the given body (same name/head). The caller must
  /// preserve safety; violated safety is reported by Create() paths only.
  ConjunctiveQuery WithBody(std::vector<Atom> body) const;

  /// Returns a copy with a different name.
  ConjunctiveQuery WithName(std::string name) const;

  /// Counts body atoms per predicate.
  std::unordered_map<std::string, size_t> PredicateCounts() const;

  /// "Q(X) :- p(X, Y), t(X, Y, W)."
  std::string ToString() const;

 private:
  ConjunctiveQuery(std::string name, std::vector<Term> head, std::vector<Atom> body)
      : name_(std::move(name)), head_(std::move(head)), body_(std::move(body)) {}

  std::string name_;
  std::vector<Term> head_;
  std::vector<Atom> body_;
};

/// Aggregate functions supported by the paper's framework (§2.5).
enum class AggregateFunction { kSum, kCount, kCountStar, kMax, kMin };

/// "sum", "count", "count(*)", "max", "min".
const char* AggregateFunctionToString(AggregateFunction f);

/// A CQ with grouping and one aggregate term in the head:
///   Q(S̄, α(y)) :- A(S̄, y, Z̄).
class AggregateQuery {
 public:
  /// Validates safety: grouping variables and the aggregate argument occur
  /// in the body, and the aggregate argument is not a grouping variable.
  /// `agg_arg` must be nullopt iff `function` is kCountStar.
  static Result<AggregateQuery> Create(std::string name, std::vector<Term> grouping,
                                       AggregateFunction function,
                                       std::optional<Term> agg_arg,
                                       std::vector<Atom> body);

  /// Create() that asserts success.
  static AggregateQuery Make(std::string name, std::vector<Term> grouping,
                             AggregateFunction function, std::optional<Term> agg_arg,
                             std::vector<Atom> body);

  const std::string& name() const { return name_; }
  const std::vector<Term>& grouping() const { return grouping_; }
  AggregateFunction function() const { return function_; }
  const std::optional<Term>& agg_arg() const { return agg_arg_; }
  const std::vector<Atom>& body() const { return body_; }

  /// The CQ core Q̆ (§2.5): head is the grouping terms followed by the
  /// aggregate argument (if any).
  ConjunctiveQuery Core() const;

  /// Two aggregate queries are compatible (Def 2.1 context) if they have the
  /// same grouping arity and the same aggregate term shape.
  bool CompatibleWith(const AggregateQuery& other) const;

  /// "Q(S, sum(Y)) :- p(S, Y)."
  std::string ToString() const;

 private:
  AggregateQuery(std::string name, std::vector<Term> grouping,
                 AggregateFunction function, std::optional<Term> agg_arg,
                 std::vector<Atom> body)
      : name_(std::move(name)),
        grouping_(std::move(grouping)),
        function_(function),
        agg_arg_(agg_arg),
        body_(std::move(body)) {}

  std::string name_;
  std::vector<Term> grouping_;
  AggregateFunction function_;
  std::optional<Term> agg_arg_;
  std::vector<Atom> body_;
};

}  // namespace sqleq

#endif  // SQLEQ_IR_QUERY_H_
