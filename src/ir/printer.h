// Pretty-printing helpers shared by examples, tests, and benches.
#ifndef SQLEQ_IR_PRINTER_H_
#define SQLEQ_IR_PRINTER_H_

#include <string>
#include <vector>

#include "ir/query.h"

namespace sqleq {

/// "{X -> a, Y -> Z}" with entries sorted for determinism.
std::string TermMapToString(const TermMap& map);

/// One query per line.
std::string QueriesToString(const std::vector<ConjunctiveQuery>& queries);

/// Renders a list of strings as an aligned two-column table: each row is
/// "  <label><padding>  <value>".
std::string AlignedTable(const std::vector<std::pair<std::string, std::string>>& rows);

}  // namespace sqleq

#endif  // SQLEQ_IR_PRINTER_H_
