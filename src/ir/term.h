// Term: an interned variable or constant, the leaf of the query IR.
//
// Terms are 8-byte value types. Variable names and constant values live in
// process-wide interning tables, so equality, hashing, and copies are cheap —
// the chase (src/chase) manipulates large conjunctions of atoms and relies on
// this. Interning is append-only and thread-safe.
#ifndef SQLEQ_IR_TERM_H_
#define SQLEQ_IR_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>

namespace sqleq {

/// A constant value: the database domain is 64-bit integers and strings.
using Value = std::variant<int64_t, std::string>;

/// Renders a Value as a literal: integers bare, strings single-quoted.
std::string ValueToString(const Value& v);

/// An interned variable or constant.
class Term {
 public:
  enum class Kind : uint8_t { kVariable = 0, kConstant = 1 };

  /// Default-constructed Term is the variable "_" (placeholder); avoid
  /// relying on it except as a pre-assignment slot.
  Term() : Term(Var("_")) {}

  /// Interns (or looks up) the variable named `name`.
  static Term Var(std::string_view name);

  /// Interns an integer constant.
  static Term Int(int64_t v);

  /// Interns a string constant.
  static Term Str(std::string_view s);

  /// Interns an arbitrary Value constant.
  static Term Const(const Value& v);

  /// Returns a variable guaranteed distinct from every Term interned so far,
  /// named "<prefix>#<n>" for a process-unique n.
  static Term FreshVar(std::string_view prefix = "v");

  /// Rewinds the FreshVar counter so two runs allocate identical names.
  /// Only for differential tests that replay the same chase twice and
  /// compare traces byte-for-byte; never call this in library code — it
  /// forfeits the distinct-from-everything guarantee above.
  static void ResetFreshCounterForTesting(uint64_t value = 0);

  /// Current FreshVar counter value; pairs with the reset above so a test
  /// can mark the counter at a checkpoint and replay resumes from it.
  static uint64_t FreshCounterForTesting();

  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsConstant() const { return kind_ == Kind::kConstant; }
  Kind kind() const { return kind_; }

  /// Variable name; requires IsVariable().
  std::string_view name() const;

  /// Constant value; requires IsConstant().
  const Value& value() const;

  /// Variable name or constant literal.
  std::string ToString() const;

  friend bool operator==(Term a, Term b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend bool operator!=(Term a, Term b) { return !(a == b); }
  friend bool operator<(Term a, Term b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.id_ < b.id_;
  }

  /// Stable hash suitable for unordered containers.
  size_t Hash() const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(kind_) << 32) |
                                 static_cast<uint32_t>(id_));
  }

 private:
  Term(Kind kind, int32_t id) : kind_(kind), id_(id) {}

  Kind kind_;
  int32_t id_;
};

struct TermHash {
  size_t operator()(Term t) const { return t.Hash(); }
};

}  // namespace sqleq

#endif  // SQLEQ_IR_TERM_H_
