#include "ir/printer.h"

#include <algorithm>

namespace sqleq {

std::string TermMapToString(const TermMap& map) {
  std::vector<std::string> entries;
  entries.reserve(map.size());
  for (const auto& [from, to] : map) {
    entries.push_back(from.ToString() + " -> " + to.ToString());
  }
  std::sort(entries.begin(), entries.end());
  std::string out = "{";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ", ";
    out += entries[i];
  }
  out += "}";
  return out;
}

std::string QueriesToString(const std::vector<ConjunctiveQuery>& queries) {
  std::string out;
  for (const ConjunctiveQuery& q : queries) {
    out += q.ToString();
    out += '\n';
  }
  return out;
}

std::string AlignedTable(const std::vector<std::pair<std::string, std::string>>& rows) {
  size_t width = 0;
  for (const auto& [label, _] : rows) width = std::max(width, label.size());
  std::string out;
  for (const auto& [label, value] : rows) {
    out += "  ";
    out += label;
    out.append(width - label.size() + 2, ' ');
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace sqleq
