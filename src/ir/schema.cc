#include "ir/schema.h"

#include <cassert>

namespace sqleq {

Status Schema::AddRelation(const std::string& name, size_t arity,
                           std::vector<std::string> attributes, bool set_valued) {
  if (name.empty()) return Status::InvalidArgument("relation name may not be empty");
  if (arity == 0) {
    return Status::InvalidArgument("relation '" + name + "' must have arity >= 1");
  }
  if (relations_.count(name) > 0) {
    return Status::InvalidArgument("duplicate relation '" + name + "'");
  }
  if (!attributes.empty() && attributes.size() != arity) {
    return Status::InvalidArgument("relation '" + name + "': " +
                                   std::to_string(attributes.size()) +
                                   " attribute names for arity " + std::to_string(arity));
  }
  RelationInfo info;
  info.name = name;
  info.arity = arity;
  if (attributes.empty()) {
    for (size_t i = 0; i < arity; ++i) info.attributes.push_back("c" + std::to_string(i));
  } else {
    info.attributes = std::move(attributes);
  }
  info.set_valued = set_valued;
  relations_.emplace(name, std::move(info));
  return Status::OK();
}

Schema& Schema::Relation(const std::string& name, size_t arity, bool set_valued) {
  Status s = AddRelation(name, arity, {}, set_valued);
  assert(s.ok() && "Schema::Relation on invalid input");
  (void)s;
  return *this;
}

Status Schema::SetSetValued(const std::string& name, bool set_valued) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  it->second.set_valued = set_valued;
  return Status::OK();
}

Status Schema::DeclareKey(const std::string& name, std::vector<size_t> positions) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  if (positions.empty()) {
    return Status::InvalidArgument("key of '" + name + "' may not be empty");
  }
  for (size_t p : positions) {
    if (p >= it->second.arity) {
      return Status::InvalidArgument("key position " + std::to_string(p) +
                                     " out of range for '" + name + "'");
    }
  }
  it->second.declared_keys.push_back(std::move(positions));
  return Status::OK();
}

bool Schema::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

Result<RelationInfo> Schema::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  return it->second;
}

size_t Schema::ArityOf(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? 0 : it->second.arity;
}

bool Schema::IsSetValued(const std::string& name) const {
  auto it = relations_.find(name);
  return it != relations_.end() && it->second.set_valued;
}

std::vector<RelationInfo> Schema::Relations() const {
  std::vector<RelationInfo> out;
  out.reserve(relations_.size());
  for (const auto& [_, info] : relations_) out.push_back(info);
  return out;
}

std::vector<std::string> Schema::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, _] : relations_) out.push_back(name);
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (const auto& [_, info] : relations_) {
    out += info.name;
    out += '(';
    for (size_t i = 0; i < info.attributes.size(); ++i) {
      if (i > 0) out += ", ";
      out += info.attributes[i];
    }
    out += ')';
    if (info.set_valued) out += " [set]";
    for (const auto& key : info.declared_keys) {
      out += " key(";
      for (size_t i = 0; i < key.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(key[i]);
      }
      out += ')';
    }
    out += '\n';
  }
  return out;
}

}  // namespace sqleq
