// Text syntax for queries and dependencies, close to the paper's notation:
//
//   Q(X) :- p(X, Y), t(X, Y, W).
//   Q2(X, sum(Y)) :- p(X, Y), s(X, Z).
//   p(X, Y) -> EXISTS Z, W: s(X, Z), t(Z, Y).        (tgd)
//   r(X, Y), r(X, Z) -> Y = Z.                        (egd)
//
// Conventions: identifiers starting with an uppercase letter or '_' are
// variables; lowercase identifiers are string constants; digit sequences are
// integer constants; single-quoted text is a string constant. "AND" may be
// used instead of ','. The EXISTS prefix is optional documentation — the
// existential variables of a tgd are exactly the head variables absent from
// the body.
#ifndef SQLEQ_IR_PARSER_H_
#define SQLEQ_IR_PARSER_H_

#include <string_view>
#include <utility>
#include <vector>

#include "ir/query.h"
#include "util/status.h"

namespace sqleq {

/// Parses a conjunctive query. Fails on aggregate heads.
Result<ConjunctiveQuery> ParseQuery(std::string_view text);

/// A syntactically parsed CQ before semantic validation. Unlike
/// ConjunctiveQuery, this may be unsafe (head variables missing from the
/// body) or have an empty body — the Σ-lint analyzer diagnoses such inputs
/// instead of rejecting them at parse time.
struct ParsedQueryParts {
  std::string name;
  std::vector<Term> head;
  std::vector<Atom> body;
};

/// Parses a CQ without the safety validation ConjunctiveQuery::Create
/// enforces. Fails only on syntax errors (and aggregate heads).
Result<ParsedQueryParts> ParseQueryParts(std::string_view text);

/// Parses an aggregate query; the head must contain exactly one aggregate
/// term, in the last position.
Result<AggregateQuery> ParseAggregateQuery(std::string_view text);

/// A parsed dependency before classification by the constraints layer.
struct ParsedDependency {
  std::vector<Atom> body;
  /// Tgd conclusion atoms (empty for an egd).
  std::vector<Atom> head_atoms;
  /// Egd conclusion equations (empty for a tgd).
  std::vector<std::pair<Term, Term>> equations;
  bool is_egd() const { return !equations.empty(); }
};

/// Parses "body -> head" where head is either a conjunction of relational
/// atoms (tgd) or a conjunction of equations (egd). Mixing atoms and
/// equations in one conclusion is rejected (normalize Σ into tgds + egds
/// first, as the paper assumes).
Result<ParsedDependency> ParseDependencyText(std::string_view text);

/// Parses a conjunction of atoms "p(X), q(X, Y)".
Result<std::vector<Atom>> ParseAtoms(std::string_view text);

/// Parses a single term: variable, integer, or string constant.
Result<Term> ParseTerm(std::string_view text);

}  // namespace sqleq

#endif  // SQLEQ_IR_PARSER_H_
