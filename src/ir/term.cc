#include "ir/term.h"

#include <atomic>
#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace sqleq {
namespace {

// Process-wide interning tables. Append-only: ids handed out are stable for
// the lifetime of the process. Guarded by a mutex; reads take the lock too
// (entries are small, contention is negligible for this workload). Deques
// keep element addresses stable, so name()/value() references stay valid
// across later interning.
struct VarTable {
  std::mutex mu;
  std::deque<std::string> names;
  std::unordered_map<std::string, int32_t> index;
};

struct ConstTable {
  std::mutex mu;
  std::deque<Value> values;
  std::unordered_map<std::string, int32_t> index;  // keyed by rendered literal
};

VarTable& Vars() {
  static VarTable* t = new VarTable();
  return *t;
}

ConstTable& Consts() {
  static ConstTable* t = new ConstTable();
  return *t;
}

std::atomic<uint64_t> g_fresh_counter{0};

}  // namespace

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  std::string out = "'";
  out += std::get<std::string>(v);
  out += "'";
  return out;
}

Term Term::Var(std::string_view name) {
  assert(!name.empty());
  VarTable& t = Vars();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.index.find(std::string(name));
  if (it != t.index.end()) return Term(Kind::kVariable, it->second);
  int32_t id = static_cast<int32_t>(t.names.size());
  t.names.emplace_back(name);
  t.index.emplace(t.names.back(), id);
  return Term(Kind::kVariable, id);
}

Term Term::Const(const Value& v) {
  ConstTable& t = Consts();
  std::string key = ValueToString(v);
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.index.find(key);
  if (it != t.index.end()) return Term(Kind::kConstant, it->second);
  int32_t id = static_cast<int32_t>(t.values.size());
  t.values.push_back(v);
  t.index.emplace(std::move(key), id);
  return Term(Kind::kConstant, id);
}

Term Term::Int(int64_t v) { return Const(Value(v)); }

Term Term::Str(std::string_view s) { return Const(Value(std::string(s))); }

void Term::ResetFreshCounterForTesting(uint64_t value) {
  g_fresh_counter.store(value);
}

uint64_t Term::FreshCounterForTesting() { return g_fresh_counter.load(); }

Term Term::FreshVar(std::string_view prefix) {
  uint64_t n = g_fresh_counter.fetch_add(1);
  std::string name(prefix);
  name += '#';
  name += std::to_string(n);
  return Var(name);
}

std::string_view Term::name() const {
  assert(IsVariable());
  VarTable& t = Vars();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.names[static_cast<size_t>(id_)];
}

const Value& Term::value() const {
  assert(IsConstant());
  ConstTable& t = Consts();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.values[static_cast<size_t>(id_)];
}

std::string Term::ToString() const {
  if (IsVariable()) return std::string(name());
  return ValueToString(value());
}

}  // namespace sqleq
