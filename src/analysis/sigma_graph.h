// Static Σ-interaction analysis: query-aware dependency slicing and
// machine-checkable chase-termination certificates.
//
// Thm 5.2 makes the chase polynomial in |Q| only for *fixed* Σ — so every
// dependency carried along that can provably never fire is pure waste, both
// in kernel compilation and in per-step applicability probes. SigmaGraph
// precomputes, once per (Schema, Σ), the constant-aware may-match relation
// between the atoms each dependency *writes* (tgd heads, egd-rewritten
// bodies) and the atoms each dependency *reads* (its body). From a query's
// body atoms, a monotone fixpoint then yields a sound Σ-slice: a dependency
// is kept iff EVERY one of its body atoms may-match some atom of the
// growing pool (query atoms plus the written atoms of already-kept
// dependencies). Anything outside the slice cannot find a homomorphism at
// any point of the chase of Q's canonical database — and, because backchase
// candidates are sub-conjunctions of the universal plan, at any point of a
// whole C&B run either. The abstraction is the one weak_acyclicity.h
// already uses: variables are wildcards, egd rewrites are full wildcards,
// only clashing constants sever a match.
//
// From the same graph the analysis derives a TerminationCertificate: the
// stratification order (topologically sorted firing-graph components), a
// per-stratum weak-acyclicity verdict, the maximum special-edge rank, and a
// coarse static chase-step bound for a query of given size. Certificates
// are advisory — engines never silently change budgets — but EXPLAIN
// SLICE, the Σ-lint analyzer, and the shell's SET BUDGET AUTO surface them.
#ifndef SQLEQ_ANALYSIS_SIGMA_GRAPH_H_
#define SQLEQ_ANALYSIS_SIGMA_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "constraints/dependency.h"
#include "constraints/weak_acyclicity.h"
#include "ir/query.h"
#include "ir/schema.h"

namespace sqleq {

/// The result of slicing Σ for one query body. Indices refer to the Σ the
/// owning SigmaGraph was built from.
struct SigmaSlice {
  /// in_slice[i] — dependency i can possibly fire while chasing the query.
  std::vector<bool> in_slice;
  /// Indices of the kept dependencies, ascending.
  std::vector<size_t> kept;
  /// For every pruned dependency: the first body atom (rendered) that no
  /// available atom may-match — the missing reachability link. Left empty
  /// when the slice was computed with `render_pruned = false`.
  struct Pruned {
    size_t index = 0;
    std::string blocked_atom;
  };
  std::vector<Pruned> pruned;

  size_t total() const { return in_slice.size(); }
  bool IsFull() const { return kept.size() == in_slice.size(); }

  /// "kept/total:hexmask" — stable identity of the slice, suitable for
  /// memo-key suffixes. Bit i of the mask is dependency i, 64 bits per hex
  /// word, low word first. Precomputed by SigmaGraph::SliceFor so hot paths
  /// (memo keys, subset lookups) never re-serialize the mask.
  const std::string& Signature() const { return signature; }
  std::string signature;
};

/// Machine-checkable chase-termination evidence derived from (Schema, Σ).
/// `Verify` re-derives the certificate and compares, so a stored or
/// transmitted certificate can be checked against the Σ it claims to cover.
struct TerminationCertificate {
  /// Σ as a whole is weakly acyclic (implies `stratified`).
  bool weakly_acyclic = false;
  /// Every firing stratum is weakly acyclic: the set chase terminates on
  /// every input.
  bool stratified = false;

  /// One firing-graph component, in topological firing order (a stratum
  /// only reads atoms written by itself or earlier strata).
  struct Stratum {
    std::vector<size_t> members;  ///< dependency indices, ascending
    bool weakly_acyclic = false;  ///< the stratum in isolation
    size_t max_rank = 0;          ///< special-edge depth of its position graph
  };
  std::vector<Stratum> strata;

  /// Max special-edge rank: over the whole position graph when Σ is weakly
  /// acyclic, else the per-stratum maximum. Bounds how many "generations"
  /// of fresh nulls the chase can create.
  size_t max_rank = 0;

  /// When not stratified: a special-edge cycle refuting termination.
  std::optional<SpecialCycle> witness;

  /// True iff the set chase provably terminates on every input.
  bool terminates() const { return stratified; }

  /// A static upper bound on the number of chase steps for a query with
  /// `query_atoms` body atoms over `query_terms` distinct terms, or 0 when
  /// no finite bound is certified. Deliberately coarse (saturating
  /// arithmetic; astronomically large bounds cap at kBoundCap) — use it to
  /// pick safe budgets, never to predict runtimes.
  static constexpr uint64_t kBoundCap = uint64_t{1} << 62;
  uint64_t StepBound(size_t query_atoms, size_t query_terms) const;

  /// "weakly acyclic, 3 strata, max rank 2" / "not stratified: <witness>".
  std::string ToString() const;

  // Inputs StepBound needs, recorded at build time.
  uint64_t existentials = 0;   ///< total existential variables across tgds
  uint64_t max_body_vars = 0;  ///< max distinct body variables of any tgd
  std::vector<uint64_t> head_arities;  ///< arity of each relation Σ can write
};

/// The per-Σ analysis object. Build once, slice many queries. Immutable
/// after construction; safe to share across threads by const reference.
///
/// Build() is deliberately cheap (it only tabulates each dependency's
/// written atoms and indexes its body reads by predicate) so per-call
/// adapters like the free SoundChase can slice without paying for
/// certificate derivation; DeriveCertificate() is the expensive part and is
/// computed on demand (ChasePlan caches it).
class SigmaGraph {
 public:
  /// Tabulates the written atoms of every dependency. `schema` is advisory
  /// (arity bookkeeping only); dependencies over relations the schema lacks
  /// are still analyzed soundly.
  static SigmaGraph Build(DependencySet sigma, const Schema& schema = {});

  // writes_ points into sigma_'s elements: moving transfers the vector's
  // heap buffer (pointers stay valid), copying would leave them dangling.
  SigmaGraph(SigmaGraph&&) = default;
  SigmaGraph& operator=(SigmaGraph&&) = default;
  SigmaGraph(const SigmaGraph&) = delete;
  SigmaGraph& operator=(const SigmaGraph&) = delete;

  /// The sound Σ-slice for a query body: dependency i is kept iff every
  /// atom of its body may-match an available atom, where the available pool
  /// starts at `body` and grows by the written atoms of kept dependencies
  /// until fixpoint. Deterministic. A counting worklist over the prebuilt
  /// reader index makes this O(available atoms × same-predicate reads), not
  /// O(|Σ|²) — it runs once per backchase candidate, so it must stay cheap
  /// for large Σ. `render_pruned = false` skips rendering each pruned
  /// dependency's blocked atom (diagnostics-only strings) for callers that
  /// just chase or count.
  SigmaSlice SliceFor(const std::vector<Atom>& body,
                      bool render_pruned = true) const;

  /// Stratification order, per-stratum weak-acyclicity, ranks, and the
  /// StepBound inputs — the full termination analysis of this Σ.
  TerminationCertificate DeriveCertificate() const;

  /// Checks `cert` against this graph's Σ by re-derivation. True iff every
  /// field matches the freshly computed certificate.
  bool Verify(const TerminationCertificate& cert) const;

  const DependencySet& sigma() const { return sigma_; }

  /// True iff some dependency body atom carries a constant. Only then can a
  /// query constant affect coverage (MayMatchAtom severs solely on
  /// constant-vs-constant clashes against body reads) — when false, slices
  /// are constant-invariant and callers may cache them per variable-blind
  /// body shape (ChasePlan does).
  bool body_reads_constants() const { return body_reads_constants_; }

 private:
  SigmaGraph() = default;

  DependencySet sigma_;
  /// writes_[i]: atoms dependency i can add or rewrite (borrow from sigma_).
  std::vector<std::vector<WrittenAtomView>> writes_;

  /// One body-atom read: `atom`-th atom of dependency `dep`'s body.
  struct Reader {
    uint32_t dep = 0;
    uint32_t atom = 0;
  };
  /// predicate → every body-atom read of that relation across Σ. SliceFor's
  /// worklist consults only the bucket of each newly available atom.
  std::unordered_map<std::string, std::vector<Reader>> readers_;
  /// body_offset_[i] is the start of dependency i's atoms in SliceFor's
  /// flat covered bitmap; body_offset_[sigma_.size()] is the total.
  std::vector<uint32_t> body_offset_;
  bool body_reads_constants_ = false;
};

}  // namespace sqleq

#endif  // SQLEQ_ANALYSIS_SIGMA_GRAPH_H_
