// Structured diagnostics for the Σ-lint static analyzer (src/analysis).
//
// A Diagnostic is one finding about a (Schema, Σ, queries) triple; an
// AnalysisReport is the ordered list of findings from one analyzer run.
// Analyzers never fail — inputs they cannot judge produce an
// `analysis-incomplete` note instead of an error Status.
#ifndef SQLEQ_ANALYSIS_DIAGNOSTIC_H_
#define SQLEQ_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace sqleq {

enum class Severity {
  kInfo,     ///< Observation; never blocks anything.
  kWarning,  ///< Suspicious but executable (the engines auto-correct or cope).
  kError,    ///< Executing this input would be unsound or non-terminating.
};

const char* SeverityToString(Severity s);  // "info" / "warning" / "error"

/// One finding. `code` is a stable kebab-case identifier (catalogued in
/// docs/diagnostics.md); `subject` names what the finding is about
/// ("dependency sigma2", "query Q1"); `fix_hint` is optional advice.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  std::string message;
  std::string subject;
  std::string fix_hint;

  /// "error[chase-nontermination] dependency sigma2: <message> (fix: ...)".
  std::string ToString() const;
};

/// The findings of one analyzer run, in emission order (errors are not
/// sorted to the front; use FirstError).
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  bool HasErrors() const;
  size_t CountOf(Severity s) const;

  /// First kError diagnostic, or nullptr.
  const Diagnostic* FirstError() const;

  /// Appends all of `other`'s diagnostics.
  void Merge(AnalysisReport other);

  /// One diagnostic per line; "no findings" when empty.
  std::string ToString() const;
};

/// OK when the report has no errors; otherwise FailedPrecondition naming the
/// first error — the shape the engine pre-flights surface to callers:
/// "rejected by sigma-lint: error[...] ...".
Status ReportToStatus(const AnalysisReport& report);

/// Every diagnostic code the analyzer (src/analysis/analyzer.cc) and the
/// script linter (src/shell/lint.cc) can emit, sorted ascending. The single
/// source of truth the catalogue-sync test checks docs/diagnostics.md
/// against — add new codes HERE when adding an Emit call, or that test
/// fails by design.
const std::vector<std::string>& KnownDiagnosticCodes();

}  // namespace sqleq

#endif  // SQLEQ_ANALYSIS_DIAGNOSTIC_H_
