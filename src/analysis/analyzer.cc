#include "analysis/analyzer.h"

#include <set>
#include <unordered_set>

#include "analysis/sigma_graph.h"
#include "chase/homomorphism.h"
#include "chase/set_chase.h"
#include "constraints/regularize.h"
#include "constraints/weak_acyclicity.h"
#include "util/telemetry.h"

namespace sqleq {
namespace {

/// Appends a diagnostic, applying the warnings_as_errors escalation and
/// bumping the per-code analysis.diag.<code> counter when a registry is
/// wired up.
void Emit(AnalysisReport& report, const AnalyzeOptions& opts, std::string code,
          Severity severity, std::string subject, std::string message,
          std::string fix_hint = "") {
  if (severity == Severity::kWarning && opts.warnings_as_errors) {
    severity = Severity::kError;
  }
  if (opts.metrics != nullptr) {
    opts.metrics->counter(metric::kAnalysisDiagPrefix + code).Add();
  }
  report.diagnostics.push_back(Diagnostic{std::move(code), severity,
                                          std::move(message), std::move(subject),
                                          std::move(fix_hint)});
}

std::string DependencySubject(const Dependency& dep, size_t index) {
  if (!dep.label().empty()) return "dependency " + dep.label();
  return "dependency #" + std::to_string(index + 1);
}

/// Names the dependencies of `indices` for the nontermination message.
std::string ComponentNames(const DependencySet& sigma,
                           const std::vector<size_t>& indices) {
  std::string out;
  for (size_t i : indices) {
    if (!out.empty()) out += ", ";
    out += sigma[i].label().empty() ? "#" + std::to_string(i + 1) : sigma[i].label();
  }
  return out;
}

void CheckTermination(AnalysisReport& report, const AnalyzeOptions& opts,
                      const DependencySet& sigma) {
  StratificationResult strat = CheckStratification(sigma);
  if (strat.weakly_acyclic) return;
  if (!strat.stratified) {
    std::string message = "the set chase may not terminate: sigma is neither "
                          "weakly acyclic nor stratified";
    if (strat.witness.has_value()) {
      message += "; special-edge cycle " + strat.witness->ToString();
    }
    if (!strat.offending_component.empty()) {
      message += " within firing component {" +
                 ComponentNames(sigma, strat.offending_component) + "}";
    }
    Emit(report, opts, "chase-nontermination", Severity::kError, "sigma", message,
         "break the special-edge cycle (drop an existential variable or an "
         "offending dependency), or raise budget.max_chase_steps and accept "
         "possible non-termination");
    return;
  }
  std::string message = "sigma is not weakly acyclic but every firing "
                        "component is (stratified): the set chase still "
                        "terminates on every input";
  if (strat.witness.has_value()) {
    message += "; global special-edge cycle " + strat.witness->ToString();
  }
  Emit(report, opts, "sigma-not-weakly-acyclic", Severity::kInfo, "sigma", message);
}

/// Schema checks over one atom list; `seen` deduplicates per (subject,
/// predicate) so a relation misspelled five times reports once.
void CheckAtomsAgainstSchema(AnalysisReport& report, const AnalyzeOptions& opts,
                             const Schema& schema, const std::vector<Atom>& atoms,
                             const std::string& subject,
                             std::set<std::string>* seen) {
  for (const Atom& atom : atoms) {
    if (!seen->insert(atom.predicate()).second) continue;
    if (!schema.HasRelation(atom.predicate())) {
      Emit(report, opts, "unknown-relation", Severity::kError, subject,
           "atom over '" + atom.predicate() + "' which is not in the schema",
           "CREATE the relation or fix the predicate name");
      continue;
    }
    size_t expected = schema.ArityOf(atom.predicate());
    if (atom.arity() != expected) {
      Emit(report, opts, "arity-mismatch", Severity::kError, subject,
           "atom '" + atom.predicate() + "' has arity " +
               std::to_string(atom.arity()) + " but the schema declares " +
               std::to_string(expected));
    }
  }
}

void CheckDependencyAgainstSchema(AnalysisReport& report, const AnalyzeOptions& opts,
                                  const Schema& schema, const Dependency& dep,
                                  size_t index) {
  std::string subject = DependencySubject(dep, index);
  std::set<std::string> seen;
  CheckAtomsAgainstSchema(report, opts, schema, dep.body(), subject, &seen);
  if (dep.IsTgd()) {
    CheckAtomsAgainstSchema(report, opts, schema, dep.tgd().head(), subject, &seen);
  }
}

void CheckRegularization(AnalysisReport& report, const AnalyzeOptions& opts,
                         const Dependency& dep, size_t index) {
  if (!dep.IsTgd() || IsRegularized(dep.tgd())) return;
  size_t components = RegularizeTgd(dep.tgd()).size();
  Emit(report, opts, "tgd-unregularized", Severity::kWarning,
       DependencySubject(dep, index),
       "head admits a nonshared partition (Def 4.1): it splits into " +
           std::to_string(components) +
           " components connected only through universal variables; chasing "
           "with it as-is is unsound under bag/bag-set semantics",
       "split the head into one tgd per component (RegularizeSigma does this "
       "automatically inside the sound chase)");
}

void CheckEgdSatisfiability(AnalysisReport& report, const AnalyzeOptions& opts,
                            const Dependency& dep, size_t index) {
  if (!dep.IsEgd()) return;
  const Egd& egd = dep.egd();
  if (egd.left().IsVariable() || egd.right().IsVariable()) return;
  // Egd::Create rejects syntactically identical sides, so two constants here
  // are distinct: the egd can only fire to fail.
  Emit(report, opts, "egd-constant-contradiction", Severity::kWarning,
       DependencySubject(dep, index),
       "equates distinct constants " + egd.left().ToString() + " and " +
           egd.right().ToString() +
           ": every instance matching the body violates sigma, and any query "
           "whose chase triggers it returns the empty answer",
       "drop the dependency or fix one side to a variable");
}

/// Chase-based implication test: chase σ's frozen body with Σ \ {σ} and ask
/// whether σ's conclusion already holds in the result.
void CheckImplication(AnalysisReport& report, const AnalyzeOptions& opts,
                      const DependencySet& sigma, size_t index) {
  const Dependency& dep = sigma[index];
  std::string subject = DependencySubject(dep, index);
  DependencySet rest;
  rest.reserve(sigma.size() - 1);
  for (size_t i = 0; i < sigma.size(); ++i) {
    if (i != index) rest.push_back(sigma[i]);
  }
  if (rest.empty()) return;

  // Freeze the body into a query whose head tracks the terms the conclusion
  // talks about: the frontier for a tgd, both sides for an egd.
  std::vector<Term> head;
  if (dep.IsTgd()) {
    head = dep.tgd().FrontierVariables();
  } else {
    head = {dep.egd().left(), dep.egd().right()};
  }
  Result<ConjunctiveQuery> frozen =
      ConjunctiveQuery::Create("frozen_body", head, dep.body());
  if (!frozen.ok()) return;  // cannot happen for valid dependencies

  ChaseOptions chase_opts;
  chase_opts.budget = opts.budget;
  Result<ChaseOutcome> chased = SetChase(*frozen, rest, chase_opts);
  if (!chased.ok()) {
    Emit(report, opts, "analysis-incomplete", Severity::kInfo, subject,
         "implication check gave up: " + chased.status().message());
    return;
  }
  if (chased->failed) {
    Emit(report, opts, "dependency-unsatisfiable-body", Severity::kWarning, subject,
         "the body is unsatisfiable under the rest of sigma (its chase fails), "
         "so the dependency is vacuous",
         "drop the dependency");
    return;
  }

  const ConjunctiveQuery& result = chased->result;
  bool implied = false;
  if (dep.IsTgd()) {
    // ∃Z̄ ψ holds in the chased body iff ψ maps into it with the frontier
    // pinned to the chased images of the frozen head.
    TermMap fixed;
    for (size_t i = 0; i < head.size(); ++i) {
      fixed[head[i]] = result.head()[i];
    }
    implied = FindHomomorphism(dep.tgd().head(), result.body(), fixed).has_value();
  } else {
    implied = result.head()[0] == result.head()[1];
  }
  if (implied) {
    Emit(report, opts, "dependency-implied", Severity::kWarning, subject,
         "already implied by the rest of sigma: chasing its frozen body with "
         "the other dependencies derives its conclusion",
         "drop the dependency; it only adds chase work");
  }
}

}  // namespace

AnalysisReport AnalyzeDependencies(const Schema& schema, const DependencySet& sigma,
                                   const AnalyzeOptions& opts) {
  AnalysisReport report;
  if (opts.check_termination) CheckTermination(report, opts, sigma);
  for (size_t i = 0; i < sigma.size(); ++i) {
    if (opts.check_schema && schema.size() > 0) {
      CheckDependencyAgainstSchema(report, opts, schema, sigma[i], i);
    }
    if (opts.check_regularization) CheckRegularization(report, opts, sigma[i], i);
    if (opts.check_satisfiability) CheckEgdSatisfiability(report, opts, sigma[i], i);
  }
  if (opts.check_implication) {
    for (size_t i = 0; i < sigma.size(); ++i) CheckImplication(report, opts, sigma, i);
  }
  return report;
}

AnalysisReport AnalyzeQueryParts(const Schema& schema, const std::string& name,
                                 const std::vector<Term>& head,
                                 const std::vector<Atom>& body,
                                 const AnalyzeOptions& opts) {
  AnalysisReport report;
  std::string subject = "query " + name;
  if (body.empty()) {
    Emit(report, opts, "query-empty-body", Severity::kError, subject,
         "conjunctive queries need at least one body atom");
    return report;
  }
  if (opts.check_safety) {
    std::unordered_set<Term, TermHash> body_vars;
    for (const Atom& atom : body) {
      for (Term t : atom.args()) {
        if (t.IsVariable()) body_vars.insert(t);
      }
    }
    std::string uncovered;
    std::unordered_set<Term, TermHash> reported;
    for (Term t : head) {
      if (!t.IsVariable() || body_vars.count(t) > 0) continue;
      if (!reported.insert(t).second) continue;
      if (!uncovered.empty()) uncovered += ", ";
      uncovered += t.ToString();
    }
    if (!uncovered.empty()) {
      Emit(report, opts, "query-unsafe-head", Severity::kError, subject,
           "head variable(s) " + uncovered +
               " do not occur in the body (range-unrestricted)",
           "add a body atom binding them or drop them from the head");
    }
  }
  if (opts.check_schema && schema.size() > 0) {
    std::set<std::string> seen;
    CheckAtomsAgainstSchema(report, opts, schema, body, subject, &seen);
  }
  return report;
}

AnalysisReport AnalyzeQuery(const Schema& schema, const ConjunctiveQuery& query,
                            const AnalyzeOptions& opts) {
  return AnalyzeQueryParts(schema, query.name(), query.head(), query.body(), opts);
}

AnalysisReport AnalyzeSigmaSlicing(const Schema& schema, const DependencySet& sigma,
                                   const std::vector<QueryBodyRef>& queries,
                                   const AnalyzeOptions& opts) {
  AnalysisReport report;
  if (sigma.empty()) return report;
  SigmaGraph graph = SigmaGraph::Build(sigma, schema);

  TerminationCertificate cert = graph.DeriveCertificate();
  if (cert.terminates()) {
    std::string message = "chase termination certificate: " + cert.ToString();
    // The static step bound is query-dependent; report it for the largest
    // query of the batch, the one that dominates any shared budget.
    const QueryBodyRef* largest = nullptr;
    size_t largest_atoms = 0, largest_terms = 0;
    for (const QueryBodyRef& q : queries) {
      std::unordered_set<Term, TermHash> terms;
      for (const Atom& a : q.body) {
        for (Term t : a.args()) terms.insert(t);
      }
      if (largest == nullptr ||
          q.body.size() + terms.size() > largest_atoms + largest_terms) {
        largest = &q;
        largest_atoms = q.body.size();
        largest_terms = terms.size();
      }
    }
    if (largest != nullptr) {
      uint64_t bound = cert.StepBound(largest_atoms, largest_terms);
      message += "; static chase-step bound for query '" + largest->name + "': ";
      message += bound >= TerminationCertificate::kBoundCap
                     ? ">=2^62 (finite but astronomically large)"
                     : std::to_string(bound);
    }
    Emit(report, opts, "termination-certificate", Severity::kInfo, "sigma",
         message);
  }

  for (const QueryBodyRef& q : queries) {
    SigmaSlice slice = graph.SliceFor(q.body);
    Emit(report, opts, "sigma-slice-summary", Severity::kInfo, "query " + q.name,
         "sigma slice keeps " + std::to_string(slice.kept.size()) + " of " +
             std::to_string(slice.total()) + " dependencies (" +
             std::to_string(slice.pruned.size()) + " pruned) [" +
             slice.Signature() + "]");
    for (const SigmaSlice::Pruned& p : slice.pruned) {
      Emit(report, opts, "dependency-unreachable-for-query", Severity::kInfo,
           DependencySubject(sigma[p.index], p.index),
           "can never fire while chasing query '" + q.name + "': body atom " +
               p.blocked_atom +
               " matches neither the query's atoms nor anything a reachable "
               "dependency writes",
           "no action needed; the engines skip it automatically "
           "(ChaseOptions::use_sigma_slicing)");
    }
  }
  return report;
}

AnalysisReport AnalyzeProgram(const Schema& schema, const DependencySet& sigma,
                              const std::vector<ConjunctiveQuery>& queries,
                              const AnalyzeOptions& opts) {
  AnalysisReport report = AnalyzeDependencies(schema, sigma, opts);
  for (const ConjunctiveQuery& q : queries) {
    report.Merge(AnalyzeQuery(schema, q, opts));
  }
  if (opts.check_slicing) {
    std::vector<QueryBodyRef> bodies;
    bodies.reserve(queries.size());
    for (const ConjunctiveQuery& q : queries) {
      bodies.push_back(QueryBodyRef{q.name(), q.body()});
    }
    report.Merge(AnalyzeSigmaSlicing(schema, sigma, bodies, opts));
  }
  return report;
}

}  // namespace sqleq
