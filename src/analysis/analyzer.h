// Σ-lint: static analysis of a (Schema, Σ, queries) triple before any
// engine runs. Cheap syntactic checks (safety, schema drift, regularization,
// constant clashes) plus the chase-termination test always run; the
// chase-based redundancy checks (dependency implication, dead bodies) are
// opt-in because they chase frozen bodies — bounded by opts.budget.
//
// Checks and their codes (docs/diagnostics.md has the catalogue):
//   chase-nontermination        error    Σ not stratified; witness cycle
//   sigma-not-weakly-acyclic    info     stratified but not weakly acyclic
//   query-unsafe-head           error    head variable absent from body
//   query-empty-body            error    CQ with no body atoms
//   unknown-relation            error    atom over a relation not in Schema
//   arity-mismatch              error    atom arity disagrees with Schema
//   egd-constant-contradiction  warning  egd equating two distinct constants
//   tgd-unregularized           warning  Def 4.1 nonshared partition exists
//   dependency-implied          warning  σ follows from Σ \ {σ}
//   dependency-unsatisfiable-body warning σ's body dies under Σ \ {σ}
//   analysis-incomplete         info     a chase-based check hit its budget
//   termination-certificate     info     Σ terminates; strata/rank/step bound
//   sigma-slice-summary         info     per query: kept/pruned Σ-slice sizes
//   dependency-unreachable-for-query info σ can never fire on this query
//
// Severity policy: errors are conditions under which the engines are
// unsound or non-terminating; warnings are conditions they survive
// (SoundChase regularizes Σ itself, an implied dependency only wastes
// work). AnalyzeOptions::warnings_as_errors escalates for strict callers.
#ifndef SQLEQ_ANALYSIS_ANALYZER_H_
#define SQLEQ_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "constraints/dependency.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/resource_budget.h"

namespace sqleq {

class MetricsRegistry;

/// Which checks run, and how strictly.
struct AnalyzeOptions {
  /// Master switch for the engine pre-flights (EquivRequest / CandBOptions);
  /// the Analyze* functions themselves ignore it.
  bool enabled = true;

  bool check_termination = true;     ///< stratification / weak acyclicity
  bool check_safety = true;          ///< query head coverage
  bool check_schema = true;          ///< unknown relations, arity drift
  bool check_regularization = true;  ///< Def 4.1 partitions
  bool check_satisfiability = true;  ///< syntactic egd constant clashes
  bool check_implication = false;    ///< chase-based redundancy + dead bodies
  bool check_slicing = false;        ///< Σ-slices + termination certificates

  /// Escalate kWarning findings to kError at emission time. Strict mode for
  /// callers that refuse anything the engines would merely auto-correct.
  bool warnings_as_errors = false;

  /// Bounds the chases the implication check runs (per dependency). Each σ
  /// gets this budget afresh — one slow check never starves the others.
  ResourceBudget budget;

  /// When non-null, every emitted diagnostic bumps the per-code counter
  /// `analysis.diag.<code>` here (SHOW STATS / Prometheus visibility).
  MetricsRegistry* metrics = nullptr;

  /// Pre-flight preset: every syntactic check, no chasing — the default
  /// gate inside EquivalenceEngine and the reformulation entry points.
  static AnalyzeOptions Preflight() { return AnalyzeOptions{}; }

  /// Everything on, including the chase-based implication check and the
  /// Σ-slicing / termination-certificate report — the LINT command and
  /// sqleq-lint preset.
  static AnalyzeOptions Full() {
    AnalyzeOptions opts;
    opts.check_implication = true;
    opts.check_slicing = true;
    return opts;
  }
};

/// Analyzes Σ against `schema`. Schema checks are skipped when the schema is
/// empty (the library treats an empty Schema as "unspecified").
AnalysisReport AnalyzeDependencies(const Schema& schema, const DependencySet& sigma,
                                   const AnalyzeOptions& opts = {});

/// Analyzes one (possibly unsafe) query given as raw parts — the form the
/// linter uses for inputs ConjunctiveQuery::Create would reject.
AnalysisReport AnalyzeQueryParts(const Schema& schema, const std::string& name,
                                 const std::vector<Term>& head,
                                 const std::vector<Atom>& body,
                                 const AnalyzeOptions& opts = {});

/// Analyzes a constructed query (safety holds by construction unless the
/// caller used WithBody to break it — the check still runs).
AnalysisReport AnalyzeQuery(const Schema& schema, const ConjunctiveQuery& query,
                            const AnalyzeOptions& opts = {});

/// A query body by name — the minimal shape the Σ-slicing report needs, so
/// the script linter can feed it queries ConjunctiveQuery::Create rejects.
struct QueryBodyRef {
  std::string name;
  std::vector<Atom> body;
};

/// The Σ-slicing / termination-certificate report (analysis/sigma_graph.h):
/// one `termination-certificate` info when the chase of Σ provably
/// terminates (with the static step bound for the largest query), and per
/// query a `sigma-slice-summary` info plus one
/// `dependency-unreachable-for-query` info per pruned dependency, naming
/// the body atom nothing reachable can produce. Callers gate on
/// opts.check_slicing (AnalyzeProgram does); the function itself always
/// runs. All findings are informational — slicing never changes verdicts.
AnalysisReport AnalyzeSigmaSlicing(const Schema& schema, const DependencySet& sigma,
                                   const std::vector<QueryBodyRef>& queries,
                                   const AnalyzeOptions& opts = {});

/// The whole triple: AnalyzeDependencies plus AnalyzeQuery per query, plus
/// AnalyzeSigmaSlicing when opts.check_slicing is on.
AnalysisReport AnalyzeProgram(const Schema& schema, const DependencySet& sigma,
                              const std::vector<ConjunctiveQuery>& queries,
                              const AnalyzeOptions& opts = {});

}  // namespace sqleq

#endif  // SQLEQ_ANALYSIS_ANALYZER_H_
