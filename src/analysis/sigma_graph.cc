#include "analysis/sigma_graph.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_set>

#include "ir/term.h"

namespace sqleq {
namespace {

// ---- Saturating arithmetic for StepBound -------------------------------

constexpr uint64_t kCap = TerminationCertificate::kBoundCap;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a >= kCap || b >= kCap || a + b >= kCap) return kCap;
  return a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a >= kCap || b >= kCap || a > kCap / b) return kCap;
  return a * b;
}

uint64_t SatPow(uint64_t base, uint64_t exp) {
  uint64_t out = 1;
  for (uint64_t i = 0; i < exp; ++i) {
    out = SatMul(out, base);
    if (out >= kCap) return kCap;
  }
  return out;
}

// ---- Position-graph ranks ----------------------------------------------

/// Max number of special edges on any path of `edges`, or nullopt when some
/// special edge lies on a cycle (rank unbounded — Σ not weakly acyclic).
/// Iterative Tarjan over the position graph, then a longest-path DP over
/// the condensation counting special edges.
std::optional<size_t> MaxSpecialRank(const std::vector<PositionEdge>& edges) {
  if (edges.empty()) return 0;

  std::map<Position, size_t> ids;
  auto id_of = [&ids](const Position& p) {
    return ids.emplace(p, ids.size()).first->second;
  };
  struct E {
    size_t to;
    bool special;
  };
  std::vector<std::vector<E>> succ;
  std::vector<std::pair<size_t, size_t>> raw;  // (from, to) per edge
  raw.reserve(edges.size());
  for (const PositionEdge& e : edges) {
    size_t u = id_of(e.from);
    size_t v = id_of(e.to);
    if (succ.size() < ids.size()) succ.resize(ids.size());
    succ[u].push_back({v, e.special});
    raw.push_back({u, v});
  }
  size_t n = ids.size();
  succ.resize(n);

  // Tarjan SCC over positions.
  constexpr size_t kUnvisited = static_cast<size_t>(-1);
  std::vector<size_t> index(n, kUnvisited), lowlink(n, 0), scc(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  size_t next_index = 0, scc_count = 0;
  struct Frame {
    size_t v;
    size_t child = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> frames{{root}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < succ[f.v].size()) {
        size_t w = succ[f.v][f.child++].to;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          size_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = scc_count;
          } while (w != f.v);
          ++scc_count;
        }
        size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }

  // A special edge inside one SCC closes a cycle through itself.
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].special && scc[raw[i].first] == scc[raw[i].second]) {
      return std::nullopt;
    }
  }

  // Tarjan numbers SCCs in reverse topological order: scc id ascending is
  // children-before-parents, so descending order is topological. DP longest
  // special-edge count from sources.
  std::vector<size_t> rank(scc_count, 0);
  std::vector<std::vector<std::pair<size_t, bool>>> cedges(scc_count);
  for (size_t i = 0; i < edges.size(); ++i) {
    size_t cu = scc[raw[i].first];
    size_t cv = scc[raw[i].second];
    if (cu != cv) cedges[cu].push_back({cv, edges[i].special});
  }
  size_t best = 0;
  for (size_t c = scc_count; c-- > 0;) {
    for (const auto& [to, special] : cedges[c]) {
      size_t cand = rank[c] + (special ? 1 : 0);
      rank[to] = std::max(rank[to], cand);
      best = std::max(best, rank[to]);
    }
  }
  return best;
}

DependencySet Subset(const DependencySet& sigma, const std::vector<size_t>& members) {
  DependencySet out;
  out.reserve(members.size());
  for (size_t i : members) out.push_back(sigma[i]);
  return out;
}

}  // namespace

namespace {

std::string ComputeSignature(const SigmaSlice& slice) {
  size_t n = slice.in_slice.size();
  size_t words = (n + 63) / 64;
  std::vector<uint64_t> mask(words == 0 ? 1 : words, 0);
  for (size_t i = 0; i < n; ++i) {
    if (slice.in_slice[i]) mask[i / 64] |= uint64_t{1} << (i % 64);
  }
  std::string hex;
  char buf[32];
  for (size_t w = mask.size(); w-- > 0;) {
    if (hex.empty()) {
      std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(mask[w]));
    } else {
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(mask[w]));
    }
    hex += buf;
  }
  return std::to_string(slice.kept.size()) + "/" + std::to_string(n) + ":" + hex;
}

}  // namespace

uint64_t TerminationCertificate::StepBound(size_t query_atoms,
                                           size_t query_terms) const {
  if (!stratified) return 0;
  // Value universe: starts at the query's terms; each "generation" can add
  // one fresh null per existential per body assignment. The rank bounds how
  // many generations can cascade (per stratum when only stratified).
  uint64_t generations;
  if (weakly_acyclic) {
    generations = static_cast<uint64_t>(max_rank) + 1;
  } else {
    generations = 0;
    for (const Stratum& s : strata) {
      generations = SatAdd(generations, static_cast<uint64_t>(s.max_rank) + 1);
    }
  }
  uint64_t values = query_terms == 0 ? 1 : query_terms;
  if (existentials > 0) {
    for (uint64_t g = 0; g < generations && values < kCap; ++g) {
      values = SatAdd(values, SatMul(existentials, SatPow(values, max_body_vars)));
    }
  }
  // Distinct atoms over the writable relations, plus one egd merge per
  // value, bounds the applicable steps (a set-chase step is only taken when
  // it changes the state).
  uint64_t atoms = query_atoms;
  for (uint64_t arity : head_arities) {
    atoms = SatAdd(atoms, SatPow(values, arity));
  }
  return SatAdd(atoms, values);
}

std::string TerminationCertificate::ToString() const {
  if (!stratified) {
    std::string out = "no termination certificate";
    if (witness.has_value()) out += ": special cycle " + witness->ToString();
    return out;
  }
  std::string out = weakly_acyclic ? "weakly acyclic" : "stratified";
  out += ", " + std::to_string(strata.size()) +
         (strata.size() == 1 ? " stratum" : " strata") + ", max rank " +
         std::to_string(max_rank);
  return out;
}

SigmaGraph SigmaGraph::Build(DependencySet sigma, const Schema& schema) {
  (void)schema;  // arities come from the atoms themselves
  SigmaGraph g;
  g.sigma_ = std::move(sigma);
  g.writes_.reserve(g.sigma_.size());
  for (const Dependency& dep : g.sigma_) {
    g.writes_.push_back(DependencyWrites(dep));
  }
  g.body_offset_.reserve(g.sigma_.size() + 1);
  g.body_offset_.push_back(0);
  for (size_t i = 0; i < g.sigma_.size(); ++i) {
    const std::vector<Atom>& body = g.sigma_[i].body();
    for (size_t j = 0; j < body.size(); ++j) {
      g.readers_[body[j].predicate()].push_back(
          {static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
      for (const Term& t : body[j].args()) {
        if (!t.IsVariable()) g.body_reads_constants_ = true;
      }
    }
    g.body_offset_.push_back(g.body_offset_.back() +
                             static_cast<uint32_t>(body.size()));
  }
  return g;
}

TerminationCertificate SigmaGraph::DeriveCertificate() const {
  TerminationCertificate cert;
  StratificationResult strat = CheckStratification(sigma_);
  cert.weakly_acyclic = strat.weakly_acyclic;
  cert.stratified = strat.stratified;
  cert.witness = strat.witness;

  // Topologically order the firing components: component A precedes B when
  // some dependency of A may fire one of B. Kahn's algorithm, smallest
  // component first among the ready ones, for determinism.
  std::vector<std::vector<size_t>> components = FiringComponents(sigma_);
  size_t m = components.size();
  std::vector<size_t> comp_of(sigma_.size(), 0);
  for (size_t c = 0; c < m; ++c) {
    for (size_t i : components[c]) comp_of[i] = c;
  }
  std::vector<std::set<size_t>> csucc(m);
  std::vector<size_t> indeg(m, 0);
  for (size_t a = 0; a < sigma_.size(); ++a) {
    for (size_t b = 0; b < sigma_.size(); ++b) {
      if (comp_of[a] == comp_of[b]) continue;
      bool fires = false;
      for (const WrittenAtomView& w : writes_[a]) {
        for (const Atom& r : sigma_[b].body()) {
          if (MayMatchAtom(w, r)) {
            fires = true;
            break;
          }
        }
        if (fires) break;
      }
      if (fires && csucc[comp_of[a]].insert(comp_of[b]).second) {
        ++indeg[comp_of[b]];
      }
    }
  }
  std::set<size_t> ready;
  for (size_t c = 0; c < m; ++c) {
    if (indeg[c] == 0) ready.insert(c);
  }
  std::vector<size_t> topo;
  while (!ready.empty()) {
    size_t c = *ready.begin();
    ready.erase(ready.begin());
    topo.push_back(c);
    for (size_t d : csucc[c]) {
      if (--indeg[d] == 0) ready.insert(d);
    }
  }

  size_t stratified_rank = 0;
  for (size_t c : topo) {
    TerminationCertificate::Stratum stratum;
    stratum.members = components[c];
    DependencySet sub = Subset(sigma_, stratum.members);
    std::optional<size_t> rank = MaxSpecialRank(BuildDependencyGraph(sub));
    stratum.weakly_acyclic = rank.has_value();
    stratum.max_rank = rank.value_or(0);
    stratified_rank = std::max(stratified_rank, stratum.max_rank);
    cert.strata.push_back(std::move(stratum));
  }
  if (cert.weakly_acyclic) {
    cert.max_rank = MaxSpecialRank(BuildDependencyGraph(sigma_)).value_or(0);
  } else if (cert.stratified) {
    cert.max_rank = stratified_rank;
  }

  std::set<std::pair<std::string, uint64_t>> writable;
  uint64_t existentials = 0;
  uint64_t max_body_vars = 0;
  for (const Dependency& dep : sigma_) {
    if (!dep.IsTgd()) continue;
    const Tgd& tgd = dep.tgd();
    existentials += tgd.ExistentialVariables().size();
    std::unordered_set<Term, TermHash> body_vars;
    for (const Atom& b : tgd.body()) {
      for (Term t : b.args()) {
        if (t.IsVariable()) body_vars.insert(t);
      }
    }
    max_body_vars = std::max<uint64_t>(max_body_vars, body_vars.size());
    for (const Atom& h : tgd.head()) {
      writable.insert({h.predicate(), h.arity()});
    }
  }
  cert.existentials = existentials;
  cert.max_body_vars = max_body_vars;
  for (const auto& [pred, arity] : writable) {
    (void)pred;
    cert.head_arities.push_back(arity);
  }
  return cert;
}

SigmaSlice SigmaGraph::SliceFor(const std::vector<Atom>& body,
                                bool render_pruned) const {
  size_t n = sigma_.size();
  SigmaSlice slice;
  slice.in_slice.assign(n, false);

  // Counting worklist over the prebuilt reader index. The available pool —
  // the query's own atoms (canonical-database tuples — variables freeze to
  // nulls, which later merges can rename, so variable positions stay
  // wildcards under MayMatchAtom), then the written atoms of every
  // dependency proven reachable — is streamed through add_write, which
  // tests each atom only against the still-uncovered reads of its own
  // predicate (MayMatchAtom never matches across relations). A dependency
  // joins the slice the moment its last body atom is covered; its writes
  // are then streamed in turn, until fixpoint.
  std::vector<char> covered(body_offset_.empty() ? 0 : body_offset_[n], 0);
  std::vector<uint32_t> uncovered(n);
  std::vector<size_t> worklist;
  for (size_t i = 0; i < n; ++i) {
    uncovered[i] = body_offset_[i + 1] - body_offset_[i];
    if (uncovered[i] == 0) worklist.push_back(i);  // empty body: vacuous fire
  }

  auto add_write = [&](const WrittenAtomView& w) {
    auto it = readers_.find(w.atom->predicate());
    if (it == readers_.end()) return;
    for (const Reader& r : it->second) {
      char& flag = covered[body_offset_[r.dep] + r.atom];
      if (flag != 0) continue;
      if (!MayMatchAtom(w, sigma_[r.dep].body()[r.atom])) continue;
      flag = 1;
      if (--uncovered[r.dep] == 0) worklist.push_back(r.dep);
    }
  };
  for (const Atom& a : body) add_write({&a, false});
  while (!worklist.empty()) {
    size_t i = worklist.back();
    worklist.pop_back();
    if (slice.in_slice[i]) continue;
    slice.in_slice[i] = true;
    for (const WrittenAtomView& w : writes_[i]) add_write(w);
  }

  for (size_t i = 0; i < n; ++i) {
    if (slice.in_slice[i]) {
      slice.kept.push_back(i);
      continue;
    }
    // At fixpoint a pruned dependency has at least one uncovered body atom;
    // name the first as the missing reachability link.
    SigmaSlice::Pruned p;
    p.index = i;
    if (render_pruned) {
      const std::vector<Atom>& reads = sigma_[i].body();
      for (size_t j = 0; j < reads.size(); ++j) {
        if (covered[body_offset_[i] + j] == 0) {
          p.blocked_atom = reads[j].ToString();
          break;
        }
      }
    }
    slice.pruned.push_back(std::move(p));
  }
  slice.signature = ComputeSignature(slice);
  return slice;
}

bool SigmaGraph::Verify(const TerminationCertificate& cert) const {
  TerminationCertificate fresh = DeriveCertificate();
  if (cert.weakly_acyclic != fresh.weakly_acyclic ||
      cert.stratified != fresh.stratified || cert.max_rank != fresh.max_rank ||
      cert.existentials != fresh.existentials ||
      cert.max_body_vars != fresh.max_body_vars ||
      cert.head_arities != fresh.head_arities ||
      cert.strata.size() != fresh.strata.size()) {
    return false;
  }
  for (size_t i = 0; i < cert.strata.size(); ++i) {
    if (cert.strata[i].members != fresh.strata[i].members ||
        cert.strata[i].weakly_acyclic != fresh.strata[i].weakly_acyclic ||
        cert.strata[i].max_rank != fresh.strata[i].max_rank) {
      return false;
    }
  }
  if (cert.witness.has_value() != fresh.witness.has_value()) return false;
  if (cert.witness.has_value() &&
      cert.witness->ToString() != fresh.witness->ToString()) {
    return false;
  }
  return true;
}

}  // namespace sqleq
