#include "analysis/diagnostic.h"

namespace sqleq {

const char* SeverityToString(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityToString(severity);
  out += "[";
  out += code;
  out += "]";
  if (!subject.empty()) {
    out += " ";
    out += subject;
  }
  out += ": ";
  out += message;
  if (!fix_hint.empty()) {
    out += " (fix: ";
    out += fix_hint;
    out += ")";
  }
  return out;
}

bool AnalysisReport::HasErrors() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

size_t AnalysisReport::CountOf(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

const Diagnostic* AnalysisReport::FirstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

void AnalysisReport::Merge(AnalysisReport other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
}

std::string AnalysisReport::ToString() const {
  if (diagnostics.empty()) return "no findings";
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

Status ReportToStatus(const AnalysisReport& report) {
  const Diagnostic* first = report.FirstError();
  if (first == nullptr) return Status::OK();
  return Status::FailedPrecondition("rejected by sigma-lint: " + first->ToString());
}

const std::vector<std::string>& KnownDiagnosticCodes() {
  static const std::vector<std::string> codes = {
      "analysis-incomplete",
      "arity-mismatch",
      "chase-nontermination",
      "dependency-implied",
      "dependency-unreachable-for-query",
      "dependency-unsatisfiable-body",
      "egd-constant-contradiction",
      "parse-error",
      "query-empty-body",
      "query-unsafe-head",
      "sigma-not-weakly-acyclic",
      "sigma-slice-summary",
      "termination-certificate",
      "tgd-unregularized",
      "unknown-query",
      "unknown-relation",
  };
  return codes;
}

}  // namespace sqleq
