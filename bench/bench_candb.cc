// B3 (§6.3, Appendix A): the C&B family on the Example 4.1 instance and on
// widened variants (extra independent joins inflate the universal plan and
// the 2^n backchase lattice). Counters: candidates examined, reformulations
// found, universal-plan size. Plus the DESIGN.md ablation: Bag-C&B with the
// key-based fast path on vs off (identical outputs, different latency).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "db/eval.h"
#include "reformulation/candb.h"

namespace sqleq {
namespace {

using bench::Example41Schema;
using bench::Example41Sigma;
using bench::Must;

/// Q1 of Example 4.1 widened with `extra` independent u-joins.
ConjunctiveQuery WidenedQ1(int extra) {
  std::string text = "Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U0)";
  for (int i = 1; i <= extra; ++i) {
    text += ", u(X, U" + std::to_string(i) + ")";
  }
  text += ".";
  return Must(ParseQuery(text));
}

void RunCandB(benchmark::State& state, Semantics sem, bool fast_path) {
  int extra = static_cast<int>(state.range(0));
  ConjunctiveQuery q = WidenedQ1(extra);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  CandBOptions options;
  options.chase.key_based_fast_path = fast_path;
  size_t candidates = 0, outputs = 0, plan = 0;
  for (auto _ : state) {
    CandBResult result = Must(ChaseAndBackchase(q, sigma, sem, schema, options));
    candidates = result.candidates_examined;
    outputs = result.reformulations.size();
    plan = result.universal_plan.body().size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["body"] = static_cast<double>(q.body().size());
  state.counters["plan_atoms"] = static_cast<double>(plan);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["outputs"] = static_cast<double>(outputs);
}

void BM_CandB_Set(benchmark::State& state) {
  RunCandB(state, Semantics::kSet, true);
}
void BM_CandB_Bag(benchmark::State& state) {
  RunCandB(state, Semantics::kBag, true);
}
void BM_CandB_BagSet(benchmark::State& state) {
  RunCandB(state, Semantics::kBagSet, true);
}
void BM_CandB_Bag_NoFastPath(benchmark::State& state) {
  RunCandB(state, Semantics::kBag, false);
}
SQLEQ_BENCHMARK(BM_CandB_Set)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
SQLEQ_BENCHMARK(BM_CandB_Bag)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
SQLEQ_BENCHMARK(BM_CandB_BagSet)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
SQLEQ_BENCHMARK(BM_CandB_Bag_NoFastPath)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

/// The Σ-slicing ablation (docs/compiled_chase.md): Example 4.1's Σ padded
/// with range(0) irrelevant island clusters (3 dependencies each). With
/// slicing on, ChasePlan::SliceFor prunes every island dependency before
/// any candidate is chased; with slicing off, each fixpoint pass of every
/// candidate chase evaluates the island kernels just to find no match.
/// Outputs are identical by construction (the sliced ≡ full property test).
void RunCandBSlicing(benchmark::State& state, bool sliced) {
  int clusters = static_cast<int>(state.range(0));
  ConjunctiveQuery q = WidenedQ1(3);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  bench::AddIrrelevantIslands(&schema, &sigma, clusters);
  CandBOptions options;
  options.chase.use_sigma_slicing = sliced;
  size_t outputs = 0;
  for (auto _ : state) {
    CandBResult result = Must(
        ChaseAndBackchase(q, sigma, Semantics::kSet, schema, options));
    outputs = result.reformulations.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["sigma"] = static_cast<double>(sigma.size());
  state.counters["sliced"] = sliced ? 1 : 0;
  state.counters["outputs"] = static_cast<double>(outputs);
}

void BM_CandB_Set_SlicedSigma(benchmark::State& state) {
  RunCandBSlicing(state, true);
}
void BM_CandB_Set_FullSigma(benchmark::State& state) {
  RunCandBSlicing(state, false);
}
SQLEQ_BENCHMARK(BM_CandB_Set_SlicedSigma)
    ->Arg(0)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
SQLEQ_BENCHMARK(BM_CandB_Set_FullSigma)
    ->Arg(0)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// The parallel memoized sweep: range(0) = extra joins, range(1) = worker
/// threads (1 = serial baseline). Outputs are identical at every thread
/// count; the cache counters show how much of the speedup is memoization
/// (isomorphic candidates chased once) vs concurrency.
void BM_CandB_Set_Threads(benchmark::State& state) {
  int extra = static_cast<int>(state.range(0));
  ConjunctiveQuery q = WidenedQ1(extra);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  CandBOptions options;
  options.context.budget.threads = static_cast<size_t>(state.range(1));
  size_t candidates = 0, hits = 0, misses = 0;
  for (auto _ : state) {
    CandBResult result =
        Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema, options));
    candidates = result.candidates_examined;
    hits = result.chase_cache_hits;
    misses = result.chase_cache_misses;
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(options.context.budget.threads);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
}
SQLEQ_BENCHMARK(BM_CandB_Set_Threads)
    ->ArgsProduct({{2, 4}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqleq
