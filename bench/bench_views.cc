// B9 (§1 application): C&B-with-views rewriting — latency and candidate
// counts as the view library grows. Each extra view adds candidate atoms to
// the backchase pool, so the curve tracks the pool-subset lattice.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "db/eval.h"
#include "reformulation/views.h"

namespace sqleq {
namespace {

using bench::Must;

/// Star-join query: fact(K, A0..A{n-1}) joined to n dims d_i(A_i, B_i);
/// views v_i(K, B_i) precompute each dim join. Σ declares K the key of
/// fact, which is what makes the all-views rewriting v_1 ⋈ ... ⋈ v_n
/// equivalent (without the key, joining the views cross-pairs fact rows).
struct StarFixture {
  Schema schema;
  ConjunctiveQuery query;
  ViewSet views;
  DependencySet sigma;
};

StarFixture MakeStar(int n) {
  StarFixture out{Schema(), Must(ParseQuery("Q(X) :- fact(X, A1).")), ViewSet(), {}};
  out.schema.Relation("fact", static_cast<size_t>(n + 1));
  for (Dependency& d :
       Must(MakeKeyEgds("fact", static_cast<size_t>(n + 1), {0}, "key_fact"))) {
    out.sigma.push_back(std::move(d));
  }
  std::string body = "fact(K";
  for (int i = 1; i <= n; ++i) body += ", A" + std::to_string(i);
  body += ")";
  std::string head = "Q(K";
  for (int i = 1; i <= n; ++i) {
    std::string d = "dim" + std::to_string(i);
    out.schema.Relation(d, 2);
    body += ", " + d + "(A" + std::to_string(i) + ", B" + std::to_string(i) + ")";
    head += ", B" + std::to_string(i);
  }
  head += ")";
  out.query = Must(ParseQuery(head + " :- " + body + "."));
  for (int i = 1; i <= n; ++i) {
    std::string v = "v" + std::to_string(i);
    std::string vbody = "fact(K";
    for (int j = 1; j <= n; ++j) vbody += ", A" + std::to_string(j);
    vbody += "), dim" + std::to_string(i) + "(A" + std::to_string(i) + ", B" +
             std::to_string(i) + ")";
    Status s = out.views.Add(Must(
        ParseQuery(v + "(K, B" + std::to_string(i) + ") :- " + vbody + ".")));
    if (!s.ok()) std::abort();
  }
  return out;
}

void BM_RewriteWithViews_Star(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  StarFixture fixture = MakeStar(n);
  RewriteOptions options;
  options.allow_base_atoms = true;
  size_t candidates = 0, outputs = 0;
  for (auto _ : state) {
    RewriteResult result =
        Must(RewriteWithViews(fixture.query, fixture.views, fixture.sigma,
                              Semantics::kSet, fixture.schema, options));
    candidates = result.candidates_examined;
    outputs = result.rewritings.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["dims"] = n;
  state.counters["views"] = static_cast<double>(fixture.views.size());
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["outputs"] = static_cast<double>(outputs);
}
SQLEQ_BENCHMARK(BM_RewriteWithViews_Star)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

/// Same star-join rewrite under the parallel memoized sweep: range(0) = dims,
/// range(1) = worker threads. The big win here is the chase memo — U is
/// chased once up front and every candidate expansion isomorphic to an
/// earlier one is served from cache instead of re-chasing.
void BM_RewriteWithViews_Star_Threads(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  StarFixture fixture = MakeStar(n);
  RewriteOptions options;
  options.allow_base_atoms = true;
  options.context.budget.threads = static_cast<size_t>(state.range(1));
  size_t candidates = 0, hits = 0, misses = 0;
  for (auto _ : state) {
    RewriteResult result =
        Must(RewriteWithViews(fixture.query, fixture.views, fixture.sigma,
                              Semantics::kSet, fixture.schema, options));
    candidates = result.candidates_examined;
    hits = result.chase_cache_hits;
    misses = result.chase_cache_misses;
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(options.context.budget.threads);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
}
SQLEQ_BENCHMARK(BM_RewriteWithViews_Star_Threads)
    ->ArgsProduct({{3, 4}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_ExpandRewriting(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  StarFixture fixture = MakeStar(n);
  // A rewriting using every view once.
  std::string head = "R(K";
  std::string body;
  for (int i = 1; i <= n; ++i) {
    head += ", B" + std::to_string(i);
    if (i > 1) body += ", ";
    body += "v" + std::to_string(i) + "(K, B" + std::to_string(i) + ")";
  }
  head += ")";
  ConjunctiveQuery r = Must(ParseQuery(head + " :- " + body + "."));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Must(ExpandRewriting(r, fixture.views)));
  }
  state.counters["views_used"] = n;
}
SQLEQ_BENCHMARK(BM_ExpandRewriting)->DenseRange(1, 6);

}  // namespace
}  // namespace sqleq
