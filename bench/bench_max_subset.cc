// B7 (§5.3, Theorem 5.4): Max-Bag-Σ-Subset runtime — one sound chase plus
// one classification pass per dependency, so the curve tracks |Σ| times the
// per-dependency applicability test on the chase result. Swept on the
// Appendix H family (|Σ| grows quadratically in m) and on Example 4.1.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/max_subset.h"
#include "db/eval.h"

namespace sqleq {
namespace {

using bench::MakeAppendixHFamily;
using bench::Must;

void BM_MaxSubset_AppendixH(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  bench::AppendixHFamily family = MakeAppendixHFamily(m);
  ChaseOptions options;
  options.budget.max_chase_steps = 100000;
  size_t kept = 0;
  for (auto _ : state) {
    MaxSubsetResult r = Must(
        MaxBagSigmaSubset(family.query, family.sigma, family.schema, options));
    kept = r.max_subset.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["m"] = m;
  state.counters["sigma_size"] = static_cast<double>(family.sigma.size());
  state.counters["kept"] = static_cast<double>(kept);
}
SQLEQ_BENCHMARK(BM_MaxSubset_AppendixH)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

void BM_MaxSubset_Example41(benchmark::State& state) {
  Schema schema = bench::Example41Schema();
  DependencySet sigma = bench::Example41Sigma();
  ConjunctiveQuery q4 = Must(ParseQuery("Q4(X) :- p(X, Y)."));
  size_t kept_b = 0, kept_bs = 0;
  for (auto _ : state) {
    kept_b = Must(MaxBagSigmaSubset(q4, sigma, schema)).max_subset.size();
    kept_bs = Must(MaxBagSetSigmaSubset(q4, sigma, schema)).max_subset.size();
    benchmark::DoNotOptimize(kept_b + kept_bs);
  }
  state.counters["kept_bag"] = static_cast<double>(kept_b);       // 4 of 6
  state.counters["kept_bag_set"] = static_cast<double>(kept_bs);  // 5 of 6
}
SQLEQ_BENCHMARK(BM_MaxSubset_Example41)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqleq
