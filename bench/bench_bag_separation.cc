// B5 (Lemma D.1, Example D.2): the multiplicity-amplification construction.
// Q7 (two r-subgoals) yields m² copies on the m-fold database while the
// Lemma's Eq. 4 upper bound for Q8 is 4m: measured answer sizes must cross
// at m = 4 and diverge quadratically after, which is exactly the argument
// that separates bag equivalence from bag-set equivalence.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "db/eval.h"

namespace sqleq {
namespace {

using bench::Must;

void BM_BagSeparation(benchmark::State& state) {
  uint64_t m = static_cast<uint64_t>(state.range(0));
  Schema schema;
  schema.Relation("p", 2).Relation("r", 1);
  Database db(schema);
  db.Add("p", {1, 2}).Add("r", {1}, m);
  ConjunctiveQuery q7 = Must(ParseQuery("Q7(X) :- p(X, Y), r(X), r(X)."));
  ConjunctiveQuery q8 = Must(ParseQuery("Q8(X) :- p(X, Y), r(X)."));
  uint64_t a7 = 0, a8 = 0;
  for (auto _ : state) {
    a7 = Must(Evaluate(q7, db, Semantics::kBag)).TotalSize();
    a8 = Must(Evaluate(q8, db, Semantics::kBag)).TotalSize();
    benchmark::DoNotOptimize(a7 + a8);
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["q7_total"] = static_cast<double>(a7);          // m^2
  state.counters["q8_total"] = static_cast<double>(a8);          // m
  state.counters["lemma_bound"] = static_cast<double>(4 * m);    // Eq. 4
  state.counters["separated"] = a7 > 4 * m ? 1 : 0;              // m > 4
}
SQLEQ_BENCHMARK(BM_BagSeparation)->DenseRange(1, 10)->RangeMultiplier(2)->Range(16, 256);

}  // namespace
}  // namespace sqleq
