// Shared fixtures for the sqleq benchmark suite: the Appendix H chase-
// scaling family, chain/star query generators, the Example 4.1 setting, and
// the SQLEQ_BENCHMARK registration macro every bench_*.cc uses. Benchmarks
// registered through SQLEQ_BENCHMARK honor the SQLEQ_BENCH_ITERS environment
// variable, and the shared driver (bench_main.cc) writes each binary's
// results to BENCH_<name>.json — see docs/observability.md.
#ifndef SQLEQ_BENCH_BENCH_UTIL_H_
#define SQLEQ_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "constraints/builders.h"
#include "constraints/dependency.h"
#include "ir/parser.h"
#include "ir/query.h"
#include "ir/schema.h"

namespace sqleq {
namespace bench {

template <typename T>
T Must(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "bench fixture failed: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// The Appendix H family: schema {p1..pm} (arity 2, set valued), tgds
/// σ(1)_{i,j}: pi(X,Y) → ∃Z pj(Z,X) and σ(2)_{i,j}: pi(X,Y) → ∃W pj(Y,W)
/// for all i < j, plus the two fds per relation that make every tgd
/// key-based (Example H.2). Chase of Q(X,Y) :- p1(X,Y) grows exponentially
/// in m under every semantics.
struct AppendixHFamily {
  Schema schema;
  DependencySet sigma;
  ConjunctiveQuery query;
};

inline AppendixHFamily MakeAppendixHFamily(int m) {
  AppendixHFamily out{Schema(), {},
                      Must(ParseQuery("Q(X, Y) :- p1(X, Y)."))};
  for (int i = 1; i <= m; ++i) {
    out.schema.Relation("p" + std::to_string(i), 2, /*set_valued=*/true);
  }
  for (int i = 1; i <= m; ++i) {
    std::string pi = "p" + std::to_string(i);
    for (int j = i + 1; j <= m; ++j) {
      std::string pj = "p" + std::to_string(j);
      for (Dependency& d : Must(ParseDependency(
               pi + "(X, Y) -> " + pj + "(Z, X).",
               "s1_" + std::to_string(i) + "_" + std::to_string(j)))) {
        out.sigma.push_back(std::move(d));
      }
      for (Dependency& d : Must(ParseDependency(
               pi + "(X, Y) -> " + pj + "(Y, W).",
               "s2_" + std::to_string(i) + "_" + std::to_string(j)))) {
        out.sigma.push_back(std::move(d));
      }
    }
    // fds: each attribute determines the other (Example H.2).
    for (Dependency& d : Must(ParseDependency(
             pi + "(X, Y), " + pi + "(X, Z) -> Y = Z.", "fd1_" + std::to_string(i)))) {
      out.sigma.push_back(std::move(d));
    }
    for (Dependency& d : Must(ParseDependency(
             pi + "(Y, X), " + pi + "(Z, X) -> Y = Z.", "fd2_" + std::to_string(i)))) {
      out.sigma.push_back(std::move(d));
    }
  }
  return out;
}

/// Chain query of length n over e/2: head (X0, Xn).
inline ConjunctiveQuery Chain(int n, const std::string& prefix = "X") {
  std::vector<Atom> body;
  for (int i = 0; i < n; ++i) {
    body.emplace_back("e", std::vector<Term>{Term::Var(prefix + std::to_string(i)),
                                             Term::Var(prefix + std::to_string(i + 1))});
  }
  return ConjunctiveQuery::Make(
      "C", {Term::Var(prefix + "0"), Term::Var(prefix + std::to_string(n))},
      std::move(body));
}

/// Star query: center X joined to n rays e(X, Yi).
inline ConjunctiveQuery Star(int n, const std::string& prefix = "Y") {
  std::vector<Atom> body;
  for (int i = 0; i < n; ++i) {
    body.emplace_back("e", std::vector<Term>{Term::Var("X"),
                                             Term::Var(prefix + std::to_string(i))});
  }
  return ConjunctiveQuery::Make("S", {Term::Var("X")}, std::move(body));
}

/// Example 4.1 fixtures (shared with the test suite).
inline Schema Example41Schema() {
  Schema schema;
  schema.Relation("p", 2)
      .Relation("r", 1)
      .Relation("s", 2, /*set_valued=*/true)
      .Relation("t", 3, /*set_valued=*/true)
      .Relation("u", 2);
  return schema;
}

inline DependencySet Example41Sigma() {
  return Must(ParseSigma({
      "p(X, Y) -> s(X, Z), t(X, V, W).",
      "p(X, Y) -> t(X, Y, W).",
      "p(X, Y) -> r(X).",
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  }));
}

/// Pads (schema, Σ) with `clusters` dependency islands no query over the
/// original schema can ever trigger. Each island adds relations ak/bk/ck
/// and three dependencies:
///
///   isl1: anchor(X, Y), ak(Y, Z) → bk(X)   — an FK-style constraint whose
///         second body atom reads ak, which nothing ever writes, so the
///         static Σ-slice prunes it (blocked on ak). A full-Σ chase instead
///         re-joins the populated `anchor` relation against empty ak on
///         every fixpoint pass.
///   isl2: bk(X) → ∃Z ck(X, Z)              — downstream of isl1, pruned
///         transitively once isl1 is out.
///   isl3: key on ck                        — likewise unreachable.
///
/// `anchor` must name a binary relation the chased queries populate (the
/// Example 4.1 fixtures use p). This is the sliced-vs-full ablation fixture
/// shared by bench_candb / bench_equivalence / bench_sigma_slice.
inline void AddIrrelevantIslands(Schema* schema, DependencySet* sigma,
                                 int clusters,
                                 const std::string& anchor = "p") {
  for (int k = 0; k < clusters; ++k) {
    std::string a = "isl_a" + std::to_string(k);
    std::string b = "isl_b" + std::to_string(k);
    std::string c = "isl_c" + std::to_string(k);
    schema->Relation(a, 2).Relation(b, 1).Relation(c, 2);
    for (Dependency& d : Must(ParseDependency(
             anchor + "(X, Y), " + a + "(Y, Z) -> " + b + "(X).",
             "isl1_" + std::to_string(k)))) {
      sigma->push_back(std::move(d));
    }
    for (Dependency& d : Must(ParseDependency(b + "(X) -> " + c + "(X, Z).",
                                              "isl2_" + std::to_string(k)))) {
      sigma->push_back(std::move(d));
    }
    for (Dependency& d : Must(ParseDependency(
             c + "(X, Y), " + c + "(X, Z) -> Y = Z.",
             "isl3_" + std::to_string(k)))) {
      sigma->push_back(std::move(d));
    }
  }
}

/// The shared latency-percentile reporter: p50/p95/p99/mean of the given
/// per-request wall latencies land in the state counters (so they appear in
/// BENCH_<name>.json), and the sample count becomes items_processed. Used
/// by bench_service_throughput and bench_fleet_soak so their numbers read
/// identically. No-op on an empty sample.
inline void ReportLatencyPercentiles(benchmark::State& state,
                                     std::vector<uint64_t> latencies_us) {
  state.SetItemsProcessed(static_cast<int64_t>(latencies_us.size()));
  if (latencies_us.empty()) return;
  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](int p) {
    return static_cast<double>(latencies_us[(latencies_us.size() - 1) * p / 100]);
  };
  uint64_t total = 0;
  for (uint64_t us : latencies_us) total += us;
  state.counters["mean_us"] =
      static_cast<double>(total) / static_cast<double>(latencies_us.size());
  state.counters["p50_us"] = percentile(50);
  state.counters["p95_us"] = percentile(95);
  state.counters["p99_us"] = percentile(99);
}

/// SQLEQ_BENCH_ITERS: when set to a positive integer N, every benchmark
/// registered through SQLEQ_BENCHMARK runs exactly N iterations with no
/// warmup — the contract `tools/ci.sh bench-smoke` relies on for fast,
/// deterministic smoke runs (SQLEQ_BENCH_ITERS=1). Unset or unparsable:
/// Google Benchmark's adaptive iteration counts apply unchanged.
inline benchmark::internal::Benchmark* ConfigureFromEnv(
    benchmark::internal::Benchmark* b) {
  const char* text = std::getenv("SQLEQ_BENCH_ITERS");
  if (text == nullptr) return b;
  char* end = nullptr;
  long iters = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || iters <= 0) return b;
  // Pinned iterations bypass the min-time/warmup logic entirely (and
  // combining them with MinWarmUpTime is a hard error in benchmark 1.7).
  b->Iterations(iters);
  return b;
}

}  // namespace bench
}  // namespace sqleq

/// Drop-in replacement for BENCHMARK() that applies the SQLEQ_BENCH_ITERS
/// environment override at registration; later chained calls (DenseRange,
/// Unit, ...) compose as usual.
#define SQLEQ_BENCHMARK(n)                                  \
  BENCHMARK_PRIVATE_DECLARE(n) =                            \
      (::sqleq::bench::ConfigureFromEnv(                    \
          ::benchmark::internal::RegisterBenchmarkInternal( \
              new ::benchmark::internal::FunctionBenchmark(#n, n))))

#endif  // SQLEQ_BENCH_BENCH_UTIL_H_
