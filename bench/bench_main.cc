// Shared driver for the bench_* binaries, replacing benchmark::benchmark_main:
// unless the caller already passed --benchmark_out, results are additionally
// written as Google Benchmark JSON to BENCH_<name>.json in the working
// directory (<name> = binary basename without the bench_ prefix), the
// machine-readable output `tools/ci.sh bench-smoke` validates with
// check_bench_json. Pinned-iteration runs come from SQLEQ_BENCH_ITERS via
// bench_util.h's SQLEQ_BENCHMARK registration macro.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace {

/// bench/bench_candb -> candb.
std::string BenchName(const char* argv0) {
  std::string name = argv0;
  size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  if (name.empty()) name = "unnamed";
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag;
  std::string format_flag;
  if (!has_out) {
    out_flag = "--benchmark_out=BENCH_" + BenchName(argv[0]) + ".json";
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
