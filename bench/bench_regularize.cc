// B6 (§4.2.1): regularization cost vs head size. The paper sketches an
// O(m² log m) algorithm; ours is union-find over shared existential
// variables — near-linear, so the measured curve must stay at or below the
// claimed shape. Two head shapes: fully disconnected (m components) and a
// chain fully connected through existentials (1 component).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "constraints/regularize.h"

namespace sqleq {
namespace {

using bench::Must;

/// p(X) → q1(X,Z1), ..., qm(X,Zm): every atom its own component.
Tgd DisconnectedHead(int m) {
  std::string text = "p(X) -> q1(X, Z1)";
  for (int i = 2; i <= m; ++i) {
    text += ", q" + std::to_string(i) + "(X, Z" + std::to_string(i) + ")";
  }
  text += ".";
  return Must(ParseDependency(text))[0].tgd();
}

/// p(X) → q1(X,Z1), q2(Z1,Z2), ..., qm(Z{m-1},Zm): one chain component.
Tgd ChainHead(int m) {
  std::string text = "p(X) -> q1(X, Z1)";
  for (int i = 2; i <= m; ++i) {
    text += ", q" + std::to_string(i) + "(Z" + std::to_string(i - 1) + ", Z" +
            std::to_string(i) + ")";
  }
  text += ".";
  return Must(ParseDependency(text))[0].tgd();
}

void BM_Regularize_Disconnected(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  Tgd tgd = DisconnectedHead(m);
  size_t pieces = 0;
  for (auto _ : state) {
    std::vector<Tgd> out = RegularizeTgd(tgd);
    pieces = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["m"] = m;
  state.counters["pieces"] = static_cast<double>(pieces);  // = m
}
SQLEQ_BENCHMARK(BM_Regularize_Disconnected)->RangeMultiplier(2)->Range(2, 256);

void BM_Regularize_Chain(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  Tgd tgd = ChainHead(m);
  size_t pieces = 0;
  for (auto _ : state) {
    std::vector<Tgd> out = RegularizeTgd(tgd);
    pieces = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["m"] = m;
  state.counters["pieces"] = static_cast<double>(pieces);  // = 1
}
SQLEQ_BENCHMARK(BM_Regularize_Chain)->RangeMultiplier(2)->Range(2, 256);

void BM_IsRegularizedCheck(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  Tgd tgd = ChainHead(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsRegularized(tgd));
  }
  state.counters["m"] = m;
}
SQLEQ_BENCHMARK(BM_IsRegularizedCheck)->RangeMultiplier(2)->Range(2, 256);

}  // namespace
}  // namespace sqleq
