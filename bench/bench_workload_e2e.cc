// End-to-end semantic-cache traffic bench (docs/workload.md): a generated
// FK-join workload at overlap 0.5 replayed through the SemanticCache in
// three configurations —
//
//   cold:  every Σ-equivalence decision runs on a fresh EquivalenceEngine
//          (the no-cache baseline: per-check latencies of full EQUIV);
//   warm:  the cache is pre-populated with the whole corpus, then variants
//          are looked up again; only semantic-tier hit latencies are
//          reported, so p95_us is the warm confirm path (hot memo);
//   fleet: the replay confirms through an in-process sqleqd over loopback
//          TCP (the sqleq-replay --port path).
//
// The e2e replay additionally reports hit_rate / ground_truth counters, the
// numbers `tools/ci.sh workload-smoke` gates on (±10%), and the committed
// BENCH_workload_e2e.json is expected to show warm p95_us strictly below
// cold p95_us — the cache earning its keep.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cache/semantic_cache.h"
#include "equivalence/engine.h"
#include "service/connection.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/json.h"
#include "workload/generator.h"

namespace sqleq {
namespace {

using bench::Must;

workload::Workload MakeCorpus() {
  workload::WorkloadOptions options;
  options.schema_template = "warehouse";
  options.seed = 7;
  options.num_queries = 60;
  options.overlap_rate = 0.5;
  return Must(workload::GenerateWorkload(options));
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Cold baseline: each variant is checked against its base query by a fresh
/// engine — what every query would pay without the cache.
void BM_Workload_Equiv_Cold(benchmark::State& state) {
  workload::Workload w = MakeCorpus();
  std::vector<uint64_t> latencies_us;
  for (auto _ : state) {
    for (const workload::WorkloadQuery& wq : w.queries) {
      if (!wq.is_variant) continue;
      EquivalenceEngine engine;
      EquivRequest request(Semantics::kSet, w.schema.catalog.sigma,
                           w.schema.catalog.schema);
      auto start = std::chrono::steady_clock::now();
      EquivVerdict v = Must(engine.Equivalent(
          wq.query, w.queries[wq.class_id].query, request));
      latencies_us.push_back(ElapsedUs(start));
      if (v.verdict != Verdict::kEquivalent) {
        state.SkipWithError("generator produced a non-equivalent variant");
        return;
      }
    }
  }
  bench::ReportLatencyPercentiles(state, std::move(latencies_us));
}
SQLEQ_BENCHMARK(BM_Workload_Equiv_Cold)->Unit(benchmark::kMillisecond);

/// Warm semantic tier: the corpus is admitted once, then every variant is
/// looked up again against the hot cache (engine memo already chased each
/// class). Only semantic-tier hits are timed — exact-tier hits would make
/// the comparison against cold EQUIV flattering.
void BM_Workload_Cache_Warm(benchmark::State& state) {
  workload::Workload w = MakeCorpus();
  cache::SemanticCache cache(w.schema.catalog.sigma, w.schema.catalog.schema);
  for (const workload::WorkloadQuery& wq : w.queries) {
    cache::SemanticCache::Lookup hit = Must(cache.Get(wq.query));
    if (hit.tier == cache::SemanticCache::Tier::kMiss) {
      cache.Admit(wq.query, wq.query.name());
    }
  }
  std::vector<uint64_t> latencies_us;
  size_t semantic_hits = 0;
  for (auto _ : state) {
    for (const workload::WorkloadQuery& wq : w.queries) {
      if (!wq.is_variant) continue;
      auto start = std::chrono::steady_clock::now();
      cache::SemanticCache::Lookup hit = Must(cache.Get(wq.query));
      uint64_t us = ElapsedUs(start);
      if (hit.tier == cache::SemanticCache::Tier::kSemantic) {
        latencies_us.push_back(us);
        ++semantic_hits;
      }
    }
  }
  state.counters["semantic_hits"] = static_cast<double>(semantic_hits);
  bench::ReportLatencyPercentiles(state, std::move(latencies_us));
}
SQLEQ_BENCHMARK(BM_Workload_Cache_Warm)->Unit(benchmark::kMillisecond);

/// The end-to-end cold replay: lookup + admit-on-miss over the whole corpus
/// with a fresh cache per iteration. hit_rate vs ground_truth is the
/// headline pair; every lookup's latency lands in the percentiles.
void BM_Workload_Replay_E2E(benchmark::State& state) {
  workload::Workload w = MakeCorpus();
  std::vector<uint64_t> latencies_us;
  double hit_rate = 0.0;
  for (auto _ : state) {
    cache::SemanticCache cache(w.schema.catalog.sigma,
                               w.schema.catalog.schema);
    for (const workload::WorkloadQuery& wq : w.queries) {
      auto start = std::chrono::steady_clock::now();
      cache::SemanticCache::Lookup hit = Must(cache.Get(wq.query));
      latencies_us.push_back(ElapsedUs(start));
      if (hit.tier == cache::SemanticCache::Tier::kMiss) {
        cache.Admit(wq.query, wq.query.name());
      }
    }
    hit_rate = cache.stats().HitRate();
  }
  state.counters["hit_rate"] = hit_rate;
  state.counters["ground_truth"] = w.GroundTruthHitRate();
  bench::ReportLatencyPercentiles(state, std::move(latencies_us));
}
SQLEQ_BENCHMARK(BM_Workload_Replay_E2E)->Unit(benchmark::kMillisecond);

/// Fleet config: the same replay, but semantic-tier confirms round-trip to
/// an in-process sqleqd over loopback (the sqleq-replay --port path).
void BM_Workload_Replay_Fleet(benchmark::State& state) {
  workload::Workload w = MakeCorpus();
  service::Server server;
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  service::Connection conn =
      Must(service::Connection::Connect("127.0.0.1", server.port()));
  for (const RelationInfo& info : w.schema.catalog.schema.Relations()) {
    Must(conn.Call(service::JsonObject()
                       .Str("cmd", "relation")
                       .Str("name", info.name)
                       .Int("arity", info.arity)
                       .Bool("set_valued", info.set_valued)
                       .Build()));
  }
  for (const Dependency& dep : w.schema.catalog.sigma) {
    Must(conn.Call(
        service::JsonObject()
            .Str("cmd", "dep")
            .Str("text",
                 dep.IsTgd() ? dep.tgd().ToString() : dep.egd().ToString())
            .Str("label", dep.label())
            .Build()));
  }
  auto confirm = [&conn](const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2) -> Result<Verdict> {
    SQLEQ_ASSIGN_OR_RETURN(JsonValue response,
                           conn.Call(service::JsonObject()
                                         .Str("cmd", "check")
                                         .Str("q1", q1.ToString())
                                         .Str("q2", q2.ToString())
                                         .Str("semantics", "set")
                                         .Build()));
    const JsonValue* verdict = response.Find("verdict");
    if (verdict != nullptr && verdict->is_string() &&
        verdict->string == "unknown") {
      return Verdict::kUnknown;
    }
    const JsonValue* equivalent = response.Find("equivalent");
    const bool eq = equivalent != nullptr &&
                    equivalent->kind == JsonValue::Kind::kBool &&
                    equivalent->boolean;
    return eq ? Verdict::kEquivalent : Verdict::kNotEquivalent;
  };

  std::vector<uint64_t> latencies_us;
  double hit_rate = 0.0;
  for (auto _ : state) {
    cache::SemanticCache cache(w.schema.catalog.sigma,
                               w.schema.catalog.schema);
    cache.set_confirmer(confirm);
    for (const workload::WorkloadQuery& wq : w.queries) {
      auto start = std::chrono::steady_clock::now();
      cache::SemanticCache::Lookup hit = Must(cache.Get(wq.query));
      latencies_us.push_back(ElapsedUs(start));
      if (hit.tier == cache::SemanticCache::Tier::kMiss) {
        cache.Admit(wq.query, wq.query.name());
      }
    }
    hit_rate = cache.stats().HitRate();
  }
  state.counters["hit_rate"] = hit_rate;
  state.counters["ground_truth"] = w.GroundTruthHitRate();
  bench::ReportLatencyPercentiles(state, std::move(latencies_us));
  server.Stop();
}
SQLEQ_BENCHMARK(BM_Workload_Replay_Fleet)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sqleq
