// B4 (§2.1–2.2): throughput of the evaluation oracle under the three
// semantics, vs database size and vs query size. The oracle is the
// correctness backstop for every symbolic test, so its scaling matters for
// the property suites.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "db/eval.h"
#include "util/rng.h"

namespace sqleq {
namespace {

using bench::Must;

Database EdgeDatabase(int rows, int domain, int max_mult, uint64_t seed) {
  Schema schema;
  schema.Relation("e", 2);
  Database db(schema);
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    Tuple t{Term::Int(rng.UniformInt(0, domain - 1)),
            Term::Int(rng.UniformInt(0, domain - 1))};
    uint64_t mult = static_cast<uint64_t>(rng.UniformInt(1, max_mult));
    Status s = db.Insert("e", t, mult);
    (void)s;
  }
  return db;
}

void RunEval(benchmark::State& state, Semantics sem) {
  int rows = static_cast<int>(state.range(0));
  Database db = EdgeDatabase(rows, /*domain=*/32, /*max_mult=*/3, /*seed=*/7);
  ConjunctiveQuery q = bench::Chain(3);
  uint64_t total = 0;
  for (auto _ : state) {
    Bag out = Must(Evaluate(q, db, sem));
    total = out.TotalSize();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = rows;
  state.counters["answer_total"] = static_cast<double>(total);
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_Eval_Set(benchmark::State& state) { RunEval(state, Semantics::kSet); }
void BM_Eval_Bag(benchmark::State& state) { RunEval(state, Semantics::kBag); }
void BM_Eval_BagSet(benchmark::State& state) { RunEval(state, Semantics::kBagSet); }
SQLEQ_BENCHMARK(BM_Eval_Set)->RangeMultiplier(2)->Range(64, 512);
SQLEQ_BENCHMARK(BM_Eval_Bag)->RangeMultiplier(2)->Range(64, 256);
SQLEQ_BENCHMARK(BM_Eval_BagSet)->RangeMultiplier(2)->Range(64, 512);

void BM_Eval_QuerySize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = EdgeDatabase(64, /*domain=*/32, /*max_mult=*/2, /*seed=*/11);
  ConjunctiveQuery q = bench::Chain(n);
  for (auto _ : state) {
    Bag out = Must(Evaluate(q, db, Semantics::kBag));
    benchmark::DoNotOptimize(out);
  }
  state.counters["n"] = n;
}
SQLEQ_BENCHMARK(BM_Eval_QuerySize)->DenseRange(1, 5);

}  // namespace
}  // namespace sqleq
