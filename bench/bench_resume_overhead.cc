// Robustness bench (docs/robustness.md): what does interrupting a C&B run
// and resuming it cost over running it straight through? One loop runs the
// uninterrupted Example 4.1 C&B, one splits the same job into an interrupted
// half (candidate budget at ~half the full run) plus a resumed second half,
// and one adds a full serialize/parse round trip of the checkpoint in the
// middle — the park-on-disk shape. Checkpoint text size and candidate
// counts are reported as counters.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "db/eval.h"
#include "reformulation/candb.h"

namespace sqleq {
namespace {

using bench::Example41Schema;
using bench::Example41Sigma;
using bench::Must;

ConjunctiveQuery Example41Q1() {
  return Must(
      ParseQuery("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U)."));
}

/// Candidates the uninterrupted run consumes — measured once so the
/// interrupted runs can cut at half of it.
size_t FullCandidateCount() {
  static const size_t count = [] {
    CandBResult full = Must(ChaseAndBackchase(
        Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema()));
    return full.candidates_examined;
  }();
  return count;
}

void BM_CandB_Uninterrupted(benchmark::State& state) {
  ConjunctiveQuery q = Example41Q1();
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  size_t outputs = 0;
  for (auto _ : state) {
    CandBResult result =
        Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema));
    outputs = result.reformulations.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["candidates"] = static_cast<double>(FullCandidateCount());
  state.counters["outputs"] = static_cast<double>(outputs);
}
SQLEQ_BENCHMARK(BM_CandB_Uninterrupted);

void BM_CandB_InterruptAndResume(benchmark::State& state) {
  ConjunctiveQuery q = Example41Q1();
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  size_t half = FullCandidateCount() / 2;
  if (half == 0) half = 1;
  size_t outputs = 0;
  for (auto _ : state) {
    CandBOptions budgeted;
    budgeted.context.budget.max_candidates = half;
    CandBResult partial =
        Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema, budgeted));
    CandBOptions resumed;
    resumed.resume = &*partial.checkpoint;
    CandBResult finished =
        Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema, resumed));
    outputs = finished.reformulations.size();
    benchmark::DoNotOptimize(finished);
  }
  state.counters["cut_at"] = static_cast<double>(half);
  state.counters["outputs"] = static_cast<double>(outputs);
}
SQLEQ_BENCHMARK(BM_CandB_InterruptAndResume);

void BM_CandB_InterruptParkAndResume(benchmark::State& state) {
  // As above, plus a serialize → text → deserialize round trip of the
  // checkpoint between the halves (the cross-process resume shape).
  ConjunctiveQuery q = Example41Q1();
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  size_t half = FullCandidateCount() / 2;
  if (half == 0) half = 1;
  size_t checkpoint_bytes = 0;
  for (auto _ : state) {
    CandBOptions budgeted;
    budgeted.context.budget.max_candidates = half;
    CandBResult partial =
        Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema, budgeted));
    std::string parked = partial.checkpoint->Serialize();
    checkpoint_bytes = parked.size();
    CandBCheckpoint reloaded = Must(CandBCheckpoint::Deserialize(parked));
    CandBOptions resumed;
    resumed.resume = &reloaded;
    CandBResult finished =
        Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema, resumed));
    benchmark::DoNotOptimize(finished);
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(checkpoint_bytes);
}
SQLEQ_BENCHMARK(BM_CandB_InterruptParkAndResume);

void BM_Checkpoint_RoundTrip(benchmark::State& state) {
  // Serialize + deserialize alone, on a real mid-sweep checkpoint.
  ConjunctiveQuery q = Example41Q1();
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  CandBOptions budgeted;
  budgeted.context.budget.max_candidates = FullCandidateCount() / 2;
  if (budgeted.context.budget.max_candidates == 0) budgeted.context.budget.max_candidates = 1;
  CandBResult partial =
      Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema, budgeted));
  const CandBCheckpoint& checkpoint = *partial.checkpoint;
  for (auto _ : state) {
    std::string text = checkpoint.Serialize();
    CandBCheckpoint reloaded = Must(CandBCheckpoint::Deserialize(text));
    benchmark::DoNotOptimize(reloaded);
  }
  state.counters["bytes"] =
      static_cast<double>(checkpoint.Serialize().size());
}
SQLEQ_BENCHMARK(BM_Checkpoint_RoundTrip);

}  // namespace
}  // namespace sqleq
