// B8: homomorphism-search scaling — the inner loop of every chase step and
// of the Chandra–Merlin containment test (§2.1, §2.4).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/homomorphism.h"
#include "ir/query.h"

namespace sqleq {
namespace {

/// Chain query of length n: C(X0, Xn) :- e(X0,X1), ..., e(X{n-1},Xn).
ConjunctiveQuery Chain(const std::string& name, int n) {
  std::vector<Atom> body;
  for (int i = 0; i < n; ++i) {
    body.emplace_back("e", std::vector<Term>{Term::Var(name + std::to_string(i)),
                                             Term::Var(name + std::to_string(i + 1))});
  }
  return ConjunctiveQuery::Make("C", {Term::Var(name + "0"), Term::Var(name + std::to_string(n))},
                                std::move(body));
}

void BM_ChainSelfHomomorphism(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ConjunctiveQuery from = Chain("X", n);
  ConjunctiveQuery to = Chain("Y", n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HomomorphismExists(from.body(), to.body()));
  }
}
SQLEQ_BENCHMARK(BM_ChainSelfHomomorphism)->DenseRange(2, 14, 2);

}  // namespace
}  // namespace sqleq
