// Cost model of the two-tier durable memo (docs/service.md, "Durability &
// Recovery"): the same equivalence check served three ways — cold (full
// chase), warm-from-disk (server restartish: ResetMemo() drops the memory
// tier, the verdict is promoted back from the MemoStore segments), and
// warm-in-memory (pure ChaseMemo hit) — plus the startup recovery scan
// itself at increasing record counts. The cold/disk/memory latency ladder
// in BENCH_memo_persistence.json is the argument for paying the tier-2
// write-through on the insert path.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <dirent.h>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "chase/memo_store.h"
#include "service/connection.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/telemetry.h"

namespace sqleq {
namespace {

using bench::Must;

/// Fresh scratch directory for one benchmark's segments.
std::string TempMemoDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/sqleq_bench_memo_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = mkdtemp(buf.data());
  if (made == nullptr) {
    std::fprintf(stderr, "mkdtemp failed for %s\n", tmpl.c_str());
    std::abort();
  }
  return made;
}

void RemoveMemoDir(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      unlink((dir + "/" + name).c_str());
    }
    closedir(d);
  }
  rmdir(dir.c_str());
}

std::string CheckLine() {
  return service::JsonObject()
      .Str("cmd", "check")
      .Str("q1", "Q(X) :- r(X, Y), s(X).")
      .Str("q2", "Q(X) :- r(X, Y).")
      .Str("semantics", "set")
      .Build();
}

service::Connection DialAndUpload(const service::Server& server) {
  service::Connection client =
      Must(service::Connection::Connect("127.0.0.1", server.port()));
  Must(client.Call(service::JsonObject()
                       .Str("cmd", "relation")
                       .Str("name", "r")
                       .Int("arity", 2)
                       .Build()));
  Must(client.Call(service::JsonObject()
                       .Str("cmd", "relation")
                       .Str("name", "s")
                       .Int("arity", 1)
                       .Build()));
  Must(client.Call(service::JsonObject()
                       .Str("cmd", "dep")
                       .Str("text", "r(X, Y) -> s(X).")
                       .Str("label", "fk")
                       .Build()));
  return client;
}

/// Cold: every iteration resets the engine (no disk tier configured), so
/// each check pays the full chase. The floor the other two tiers beat.
void BM_MemoPersistence_ColdChase(benchmark::State& state) {
  service::Server server;
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  service::Connection client = DialAndUpload(server);
  const std::string line = CheckLine();
  for (auto _ : state) {
    state.PauseTiming();
    server.ResetMemo();
    state.ResumeTiming();
    Must(client.Call(line));
  }
  server.Stop();
}
SQLEQ_BENCHMARK(BM_MemoPersistence_ColdChase)->Unit(benchmark::kMicrosecond);

/// Warm-from-disk: the disk tier is configured and pre-warmed; every
/// iteration drops the memory tier (what a restart does) and the check is
/// answered by promoting the spilled record — no re-chase.
void BM_MemoPersistence_WarmFromDisk(benchmark::State& state) {
  const std::string dir = TempMemoDir();
  service::ServerOptions options;
  options.memo_dir = dir;
  service::Server server(options);
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  service::Connection client = DialAndUpload(server);
  const std::string line = CheckLine();
  Must(client.Call(line));  // chase once; write-through spills to disk
  for (auto _ : state) {
    state.PauseTiming();
    server.ResetMemo();  // memory tier gone, segments survive
    state.ResumeTiming();
    Must(client.Call(line));
  }
  state.counters["disk_hits"] = static_cast<double>(
      server.metrics().counter(metric::kMemoDiskHits).value());
  server.Stop();
  RemoveMemoDir(dir);
}
SQLEQ_BENCHMARK(BM_MemoPersistence_WarmFromDisk)->Unit(benchmark::kMicrosecond);

/// Warm-in-memory: the steady state — every check after the first is a pure
/// ChaseMemo hit.
void BM_MemoPersistence_WarmInMemory(benchmark::State& state) {
  const std::string dir = TempMemoDir();
  service::ServerOptions options;
  options.memo_dir = dir;
  service::Server server(options);
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  service::Connection client = DialAndUpload(server);
  const std::string line = CheckLine();
  Must(client.Call(line));
  for (auto _ : state) {
    Must(client.Call(line));
  }
  server.Stop();
  RemoveMemoDir(dir);
}
SQLEQ_BENCHMARK(BM_MemoPersistence_WarmInMemory)->Unit(benchmark::kMicrosecond);

/// Startup recovery: MemoStore::Open scanning a segment set of range(0)
/// records (~256B payload each). What a restarted sqleqd pays before it can
/// serve its first warm verdict.
void BM_MemoPersistence_RecoveryScan(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string dir = TempMemoDir();
  {
    MemoStoreOptions options;
    options.dir = dir;
    auto store = Must(MemoStore::Open(options));
    const std::string body(256, 'b');
    for (int i = 0; i < records; ++i) {
      (void)store->Put("bench-key-" + std::to_string(i), body, nullptr);
    }
  }
  for (auto _ : state) {
    MemoStoreOptions options;
    options.dir = dir;
    auto store = Must(MemoStore::Open(options));
    benchmark::DoNotOptimize(store->stats().recovered);
  }
  state.counters["records"] = static_cast<double>(records);
  RemoveMemoDir(dir);
}
SQLEQ_BENCHMARK(BM_MemoPersistence_RecoveryScan)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqleq
