// B2 (§2.1, §2.3): latency of the three dependency-free equivalence tests
// on growing chain and star queries. Set equivalence runs the NP-complete
// containment search; bag equivalence runs the isomorphism matcher; bag-set
// equivalence runs isomorphism on canonical representations. The shape to
// see: all three are fast on these well-structured instances, with the set
// test paying extra on the automorphism-rich stars.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "equivalence/bag_equivalence.h"
#include "equivalence/bag_set_equivalence.h"
#include "equivalence/containment.h"

namespace sqleq {
namespace {

enum class TestKind { kSet, kBag, kBagSet };

template <TestKind kind>
void RunPair(benchmark::State& state, const ConjunctiveQuery& a,
             const ConjunctiveQuery& b) {
  bool verdict = false;
  for (auto _ : state) {
    if constexpr (kind == TestKind::kSet) {
      verdict = SetEquivalent(a, b);
    } else if constexpr (kind == TestKind::kBag) {
      verdict = BagEquivalent(a, b);
    } else {
      verdict = BagSetEquivalent(a, b);
    }
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["equivalent"] = verdict ? 1 : 0;
}

void BM_SetEquivalence_Chain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kSet>(state, bench::Chain(n, "X"), bench::Chain(n, "Y"));
}
void BM_BagEquivalence_Chain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kBag>(state, bench::Chain(n, "X"), bench::Chain(n, "Y"));
}
void BM_BagSetEquivalence_Chain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kBagSet>(state, bench::Chain(n, "X"), bench::Chain(n, "Y"));
}
SQLEQ_BENCHMARK(BM_SetEquivalence_Chain)->DenseRange(2, 14, 2);
SQLEQ_BENCHMARK(BM_BagEquivalence_Chain)->DenseRange(2, 14, 2);
SQLEQ_BENCHMARK(BM_BagSetEquivalence_Chain)->DenseRange(2, 14, 2);

void BM_SetEquivalence_Star(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kSet>(state, bench::Star(n, "Y"), bench::Star(n, "Z"));
}
void BM_BagEquivalence_Star(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kBag>(state, bench::Star(n, "Y"), bench::Star(n, "Z"));
}
SQLEQ_BENCHMARK(BM_SetEquivalence_Star)->DenseRange(2, 14, 2);
SQLEQ_BENCHMARK(BM_BagEquivalence_Star)->DenseRange(2, 14, 2);

// Negative instances: the bag test must reject quickly when per-predicate
// counts differ; the set test must search before rejecting a chain vs a
// chain with one extra edge.
void BM_SetEquivalence_ChainNegative(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kSet>(state, bench::Chain(n, "X"), bench::Chain(n + 1, "Y"));
}
void BM_BagEquivalence_ChainNegative(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kBag>(state, bench::Chain(n, "X"), bench::Chain(n + 1, "Y"));
}
SQLEQ_BENCHMARK(BM_SetEquivalence_ChainNegative)->DenseRange(2, 14, 2);
SQLEQ_BENCHMARK(BM_BagEquivalence_ChainNegative)->DenseRange(2, 14, 2);

}  // namespace
}  // namespace sqleq
