// B2 (§2.1, §2.3): latency of the three dependency-free equivalence tests
// on growing chain and star queries. Set equivalence runs the NP-complete
// containment search; bag equivalence runs the isomorphism matcher; bag-set
// equivalence runs isomorphism on canonical representations. The shape to
// see: all three are fast on these well-structured instances, with the set
// test paying extra on the automorphism-rich stars.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "equivalence/bag_equivalence.h"
#include "equivalence/bag_set_equivalence.h"
#include "equivalence/containment.h"
#include "equivalence/engine.h"
#include "ir/parser.h"

namespace sqleq {
namespace {

enum class TestKind { kSet, kBag, kBagSet };

template <TestKind kind>
void RunPair(benchmark::State& state, const ConjunctiveQuery& a,
             const ConjunctiveQuery& b) {
  bool verdict = false;
  for (auto _ : state) {
    if constexpr (kind == TestKind::kSet) {
      verdict = SetEquivalent(a, b);
    } else if constexpr (kind == TestKind::kBag) {
      verdict = BagEquivalent(a, b);
    } else {
      verdict = BagSetEquivalent(a, b);
    }
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["equivalent"] = verdict ? 1 : 0;
}

void BM_SetEquivalence_Chain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kSet>(state, bench::Chain(n, "X"), bench::Chain(n, "Y"));
}
void BM_BagEquivalence_Chain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kBag>(state, bench::Chain(n, "X"), bench::Chain(n, "Y"));
}
void BM_BagSetEquivalence_Chain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kBagSet>(state, bench::Chain(n, "X"), bench::Chain(n, "Y"));
}
SQLEQ_BENCHMARK(BM_SetEquivalence_Chain)->DenseRange(2, 14, 2);
SQLEQ_BENCHMARK(BM_BagEquivalence_Chain)->DenseRange(2, 14, 2);
SQLEQ_BENCHMARK(BM_BagSetEquivalence_Chain)->DenseRange(2, 14, 2);

void BM_SetEquivalence_Star(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kSet>(state, bench::Star(n, "Y"), bench::Star(n, "Z"));
}
void BM_BagEquivalence_Star(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kBag>(state, bench::Star(n, "Y"), bench::Star(n, "Z"));
}
SQLEQ_BENCHMARK(BM_SetEquivalence_Star)->DenseRange(2, 14, 2);
SQLEQ_BENCHMARK(BM_BagEquivalence_Star)->DenseRange(2, 14, 2);

// Negative instances: the bag test must reject quickly when per-predicate
// counts differ; the set test must search before rejecting a chain vs a
// chain with one extra edge.
void BM_SetEquivalence_ChainNegative(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kSet>(state, bench::Chain(n, "X"), bench::Chain(n + 1, "Y"));
}
void BM_BagEquivalence_ChainNegative(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunPair<TestKind::kBag>(state, bench::Chain(n, "X"), bench::Chain(n + 1, "Y"));
}
SQLEQ_BENCHMARK(BM_SetEquivalence_ChainNegative)->DenseRange(2, 14, 2);
SQLEQ_BENCHMARK(BM_BagEquivalence_ChainNegative)->DenseRange(2, 14, 2);

// Σ-slicing ablation: a Σ-equivalence decision over Example 4.1's Σ padded
// with range(0) irrelevant island clusters. A fresh engine per iteration
// keeps the memo from hiding the chase cost; the island dependencies never
// fire, so the two variants agree on the verdict — the full-Σ run just pays
// for probing them on every fixpoint pass of both chases.
/// One engine (one compiled plan) answering a batch of equivalence calls —
/// the engine-context-reuse shape the docs promise slicing pays off in.
/// The pairs are p-chains of distinct widths, so they canonicalize to
/// distinct memo keys and every call genuinely chases (widths give the
/// chase real work for the islands to tax); the Σ compile and the slice
/// subsets amortize across the batch.
constexpr int kEquivBatch = 8;

void RunSigmaEquivalence(benchmark::State& state, bool sliced) {
  int clusters = static_cast<int>(state.range(0));
  Schema schema = bench::Example41Schema();
  DependencySet sigma = bench::Example41Sigma();
  bench::AddIrrelevantIslands(&schema, &sigma, clusters);
  std::vector<std::pair<ConjunctiveQuery, ConjunctiveQuery>> pairs;
  pairs.reserve(kEquivBatch);
  for (int j = 1; j <= kEquivBatch; ++j) {
    std::string b1 = "Q1(X) :- r(X)";
    std::string b2 = "Q2(X) :- r(X)";
    for (int i = 0; i < j; ++i) {
      b1 += ", p(X, Y" + std::to_string(i) + ")";
      b2 += ", p(X, B" + std::to_string(i) + ")";
    }
    pairs.emplace_back(bench::Must(ParseQuery(b1 + ".")),
                       bench::Must(ParseQuery(b2 + ".")));
  }
  bool verdict = false;
  for (auto _ : state) {
    EquivalenceEngine engine;
    EquivRequest request(Semantics::kSet, sigma, schema);
    request.chase.use_sigma_slicing = sliced;
    for (const auto& [q1, q2] : pairs) {
      EquivVerdict v = bench::Must(engine.Equivalent(q1, q2, request));
      verdict = v.equivalent;
      benchmark::DoNotOptimize(v);
    }
  }
  state.counters["sigma"] = static_cast<double>(sigma.size());
  state.counters["sliced"] = sliced ? 1 : 0;
  state.counters["equivalent"] = verdict ? 1 : 0;
}

void BM_SigmaEquivalence_Sliced(benchmark::State& state) {
  RunSigmaEquivalence(state, true);
}
void BM_SigmaEquivalence_FullSigma(benchmark::State& state) {
  RunSigmaEquivalence(state, false);
}
SQLEQ_BENCHMARK(BM_SigmaEquivalence_Sliced)->Arg(0)->Arg(4)->Arg(16)->Arg(64);
SQLEQ_BENCHMARK(BM_SigmaEquivalence_FullSigma)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace sqleq
