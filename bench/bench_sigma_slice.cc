// The Σ-slicing microbenchmarks (docs/compiled_chase.md, "Σ-slicing"):
//
//   * analysis cost — SigmaGraph::Build, SliceFor, and DeriveCertificate on
//     Σ padded with irrelevant island clusters, so the overhead the static
//     analysis adds to a compiled plan is visible on its own;
//   * chase ablation — ChasePlan::Run on the same padded Σ with
//     use_sigma_slicing on vs off. The island dependencies can never fire,
//     so both variants produce identical traces (the sliced ≡ full property
//     test); the full-Σ run just probes every island kernel on every
//     fixpoint pass.
//
// Emits BENCH_sigma_slice.json via the shared bench_main.cc driver.
#include <benchmark/benchmark.h>

#include "analysis/sigma_graph.h"
#include "bench_util.h"
#include "chase/chase_plan.h"
#include "ir/parser.h"

namespace sqleq {
namespace {

using bench::AddIrrelevantIslands;
using bench::Example41Schema;
using bench::Example41Sigma;
using bench::Must;

struct PaddedSetting {
  Schema schema;
  DependencySet sigma;
  ConjunctiveQuery query;
};

PaddedSetting MakePadded(int clusters) {
  PaddedSetting out{Example41Schema(), Example41Sigma(),
                    Must(ParseQuery("Q(X) :- p(X, Y), s(X, Z), r(X)."))};
  AddIrrelevantIslands(&out.schema, &out.sigma, clusters);
  return out;
}

void BM_SigmaGraph_Build(benchmark::State& state) {
  PaddedSetting setting = MakePadded(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SigmaGraph graph = SigmaGraph::Build(setting.sigma, setting.schema);
    benchmark::DoNotOptimize(graph);
  }
  state.counters["sigma"] = static_cast<double>(setting.sigma.size());
}
SQLEQ_BENCHMARK(BM_SigmaGraph_Build)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_SigmaGraph_SliceFor(benchmark::State& state) {
  PaddedSetting setting = MakePadded(static_cast<int>(state.range(0)));
  SigmaGraph graph = SigmaGraph::Build(setting.sigma, setting.schema);
  size_t kept = 0;
  for (auto _ : state) {
    SigmaSlice slice = graph.SliceFor(setting.query.body());
    kept = slice.kept.size();
    benchmark::DoNotOptimize(slice);
  }
  state.counters["sigma"] = static_cast<double>(setting.sigma.size());
  state.counters["kept"] = static_cast<double>(kept);
}
SQLEQ_BENCHMARK(BM_SigmaGraph_SliceFor)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_SigmaGraph_DeriveCertificate(benchmark::State& state) {
  PaddedSetting setting = MakePadded(static_cast<int>(state.range(0)));
  SigmaGraph graph = SigmaGraph::Build(setting.sigma, setting.schema);
  for (auto _ : state) {
    TerminationCertificate cert = graph.DeriveCertificate();
    benchmark::DoNotOptimize(cert);
  }
  state.counters["sigma"] = static_cast<double>(setting.sigma.size());
}
SQLEQ_BENCHMARK(BM_SigmaGraph_DeriveCertificate)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

/// One compiled chase of the query per iteration; the plan (and with it the
/// cached slice) is compiled once outside the loop, mirroring how
/// EquivalenceEngine and C&B hold a plan per context.
void RunPlanChase(benchmark::State& state, bool sliced) {
  PaddedSetting setting = MakePadded(static_cast<int>(state.range(0)));
  ChaseOptions options;
  options.use_sigma_slicing = sliced;
  ChasePlan plan(setting.sigma, Semantics::kSet, setting.schema, options);
  size_t steps = 0;
  for (auto _ : state) {
    ChaseOutcome outcome = Must(plan.Run(setting.query));
    steps = outcome.trace.size();
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["sigma"] = static_cast<double>(setting.sigma.size());
  state.counters["sliced"] = sliced ? 1 : 0;
  state.counters["steps"] = static_cast<double>(steps);
}

void BM_PlanChase_Sliced(benchmark::State& state) {
  RunPlanChase(state, true);
}
void BM_PlanChase_FullSigma(benchmark::State& state) {
  RunPlanChase(state, false);
}
SQLEQ_BENCHMARK(BM_PlanChase_Sliced)->Arg(0)->Arg(4)->Arg(16)->Arg(64);
SQLEQ_BENCHMARK(BM_PlanChase_FullSigma)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace sqleq
