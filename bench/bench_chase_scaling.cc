// B1/T4 (Theorem 5.2, Appendix H): sound chase terminates in time
// polynomial in |Q| and exponential in |Σ|. Two sweeps:
//   * SigmaSize: the Appendix H family — result size and wall-clock must
//     grow exponentially with m (the schema/Σ size knob);
//   * QuerySize: fixed small Σ, growing chain query — polynomial growth.
// Counters: atoms = |body((Q)Σ,X)|, steps = chase trace length.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/set_chase.h"
#include "chase/sound_chase.h"
#include "db/eval.h"

namespace sqleq {
namespace {

using bench::AppendixHFamily;
using bench::MakeAppendixHFamily;
using bench::Must;

void RunSigmaSweep(benchmark::State& state, Semantics sem) {
  int m = static_cast<int>(state.range(0));
  AppendixHFamily family = MakeAppendixHFamily(m);
  ChaseOptions options;
  options.budget.max_chase_steps = 100000;
  size_t atoms = 0, steps = 0;
  for (auto _ : state) {
    ChaseOutcome out =
        Must(SoundChase(family.query, family.sigma, sem, family.schema, options));
    atoms = out.result.body().size();
    steps = out.trace.size();
    benchmark::DoNotOptimize(out.result);
  }
  state.counters["m"] = m;
  state.counters["sigma_size"] = static_cast<double>(family.sigma.size());
  state.counters["atoms"] = static_cast<double>(atoms);
  state.counters["steps"] = static_cast<double>(steps);
}

void BM_ChaseSigmaSweep_Set(benchmark::State& state) {
  RunSigmaSweep(state, Semantics::kSet);
}
void BM_ChaseSigmaSweep_Bag(benchmark::State& state) {
  RunSigmaSweep(state, Semantics::kBag);
}
void BM_ChaseSigmaSweep_BagSet(benchmark::State& state) {
  RunSigmaSweep(state, Semantics::kBagSet);
}
SQLEQ_BENCHMARK(BM_ChaseSigmaSweep_Set)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);
SQLEQ_BENCHMARK(BM_ChaseSigmaSweep_Bag)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);
SQLEQ_BENCHMARK(BM_ChaseSigmaSweep_BagSet)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);

// Query-size sweep: Σ fixed (edge relation feeds a node relation plus a key
// fd), chain query of length n. Growth must stay polynomial.
void BM_ChaseQuerySweep(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DependencySet sigma = Must(ParseSigma({
      "e(X, Y) -> node(X, L).",
      "node(X, L1), node(X, L2) -> L1 = L2.",
  }));
  Schema schema;
  schema.Relation("e", 2).Relation("node", 2, /*set_valued=*/true);
  ConjunctiveQuery q = bench::Chain(n);
  size_t atoms = 0;
  for (auto _ : state) {
    ChaseOutcome out = Must(SoundChase(q, sigma, Semantics::kBag, schema));
    atoms = out.result.body().size();
    benchmark::DoNotOptimize(out.result);
  }
  state.counters["n"] = n;
  state.counters["atoms"] = static_cast<double>(atoms);
}
SQLEQ_BENCHMARK(BM_ChaseQuerySweep)->DenseRange(2, 16, 2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqleq
