// Thread-scaling sweep for the parallel memoized backchase: the same
// reformulation problem at 1/2/4/8 workers, with counters separating the two
// speedup sources — memoization (chase_cache_hits: isomorphic candidates
// chased once) and concurrency (wall time vs the threads=1 baseline). A
// dedicated deduplication bench isolates the memo's effect by comparing a
// query whose lattice is full of isomorphic subqueries against one where
// every subquery is distinct.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "reformulation/candb.h"
#include "util/telemetry.h"

namespace sqleq {
namespace {

using bench::Example41Schema;
using bench::Example41Sigma;
using bench::Must;

/// Example 4.1's Q1 widened with `extra` independent u-joins; the extra
/// atoms are pairwise isomorphic, so the candidate lattice is dense with
/// memo hits.
ConjunctiveQuery WidenedQ1(int extra) {
  std::string text = "Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U0)";
  for (int i = 1; i <= extra; ++i) {
    text += ", u(X, U" + std::to_string(i) + ")";
  }
  text += ".";
  return Must(ParseQuery(text));
}

void BM_Backchase_ThreadSweep(benchmark::State& state) {
  ConjunctiveQuery q = WidenedQ1(4);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  CandBOptions options;
  options.context.budget.threads = static_cast<size_t>(state.range(0));
  size_t candidates = 0, hits = 0, misses = 0, outputs = 0;
  for (auto _ : state) {
    CandBResult result =
        Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema, options));
    candidates = result.candidates_examined;
    hits = result.chase_cache_hits;
    misses = result.chase_cache_misses;
    outputs = result.reformulations.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
  state.counters["outputs"] = static_cast<double>(outputs);
}
SQLEQ_BENCHMARK(BM_Backchase_ThreadSweep)
    ->DenseRange(1, 8)
    ->Unit(benchmark::kMillisecond);

/// Memoization ablation at fixed thread count: `symmetric` queries (n
/// isomorphic self-join atoms) vs `distinct` queries (n different
/// relations). The candidate counts match; only the hit ratio differs.
void RunMemoAblation(benchmark::State& state, bool symmetric) {
  int n = static_cast<int>(state.range(0));
  std::string text = "Q(X) :- ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) text += ", ";
    std::string rel = symmetric ? "p" : "p" + std::to_string(i);
    text += rel + "(X, Y" + std::to_string(i) + ")";
  }
  text += ".";
  ConjunctiveQuery q = Must(ParseQuery(text));
  size_t hits = 0, misses = 0;
  for (auto _ : state) {
    CandBResult result =
        Must(ChaseAndBackchase(q, {}, Semantics::kSet, Schema()));
    hits = result.chase_cache_hits;
    misses = result.chase_cache_misses;
    benchmark::DoNotOptimize(result);
  }
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.counters["cache_misses"] = static_cast<double>(misses);
}
void BM_Backchase_Memo_Symmetric(benchmark::State& state) {
  RunMemoAblation(state, /*symmetric=*/true);
}
void BM_Backchase_Memo_Distinct(benchmark::State& state) {
  RunMemoAblation(state, /*symmetric=*/false);
}
SQLEQ_BENCHMARK(BM_Backchase_Memo_Symmetric)->DenseRange(4, 8)->Unit(benchmark::kMillisecond);
SQLEQ_BENCHMARK(BM_Backchase_Memo_Distinct)->DenseRange(4, 8)->Unit(benchmark::kMillisecond);

/// Telemetry overhead ablation: the same reformulation with the full
/// observability stack on (MetricsRegistry + TraceSink in the context) vs
/// off (both null — every instrumentation site reduces to one branch).
/// Acceptance: the enabled/disabled wall-time delta stays within 5%.
void RunTelemetryOverhead(benchmark::State& state, bool enabled) {
  ConjunctiveQuery q = WidenedQ1(4);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  MetricsRegistry metrics;
  TraceSink trace;
  CandBOptions options;
  if (enabled) {
    options.context.metrics = &metrics;
    options.context.trace = &trace;
  }
  for (auto _ : state) {
    CandBResult result =
        Must(ChaseAndBackchase(q, sigma, Semantics::kSet, schema, options));
    benchmark::DoNotOptimize(result);
    trace.Clear();  // keep the sink's arena flat across iterations
  }
  if (enabled) {
    state.counters["metric_names"] =
        static_cast<double>(metrics.Snapshot().counters.size());
  }
}
void BM_Telemetry_Off(benchmark::State& state) {
  RunTelemetryOverhead(state, /*enabled=*/false);
}
void BM_Telemetry_On(benchmark::State& state) {
  RunTelemetryOverhead(state, /*enabled=*/true);
}
SQLEQ_BENCHMARK(BM_Telemetry_Off)->Unit(benchmark::kMillisecond);
SQLEQ_BENCHMARK(BM_Telemetry_On)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sqleq
