// Multi-process fleet soak (docs/fleet.md): launches 1 or 3 real sqleqd
// processes (found next to this binary's ../tools/ directory), uploads the
// catalog through a FleetClient, then drives a mixed stream of equivalence
// checks from more client threads than the fleet has workers×inflight slots
// — deliberate overload, so the admission controller sheds and the
// pool-level retry loop backs off and resends. Per-request wall latency
// (including every retry) lands in p50/p95/p99/mean via the shared
// ReportLatencyPercentiles; comparing the shards=1 and shards=3 rows in
// BENCH_fleet_soak.json is the scaling claim of the fleet redesign.
#include <benchmark/benchmark.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/fleet_client.h"
#include "service/protocol.h"
#include "service/routing.h"
#include "util/socket.h"

namespace sqleq {
namespace {

using bench::Must;

/// The sqleqd binary, assuming the standard build layout
/// (<build>/bench/bench_fleet_soak and <build>/tools/sqleqd).
std::string SqleqdPath() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  path.resize(slash);
  slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  path.resize(slash);
  return path + "/tools/sqleqd";
}

/// A real sqleqd fleet of `n` child processes on ephemeral loopback ports.
struct Fleet {
  std::vector<service::ShardId> topology;
  std::vector<pid_t> pids;

  static Fleet Launch(size_t n, size_t workers, size_t max_inflight) {
    Fleet fleet;
    const std::string sqleqd = SqleqdPath();
    for (size_t i = 0; i < n; ++i) {
      TcpListener probe;
      if (!probe.Listen(0).ok()) std::abort();
      service::ShardId shard;
      shard.name = "shard" + std::to_string(i);
      shard.host = "127.0.0.1";
      shard.port = probe.port();
      fleet.topology.push_back(std::move(shard));
    }
    const std::string spec = service::RenderFleetSpec(fleet.topology);
    for (size_t i = 0; i < n; ++i) {
      std::string port = std::to_string(fleet.topology[i].port);
      std::string workers_s = std::to_string(workers);
      std::string inflight_s = std::to_string(max_inflight);
      pid_t pid = ::fork();
      if (pid == 0) {
        // Quiet the children; their startup lines would interleave with the
        // benchmark's JSON output.
        std::freopen("/dev/null", "w", stdout);
        if (n == 1) {
          ::execl(sqleqd.c_str(), sqleqd.c_str(), "--port", port.c_str(),
                  "--workers", workers_s.c_str(), "--max-inflight",
                  inflight_s.c_str(), (char*)nullptr);
        } else {
          ::execl(sqleqd.c_str(), sqleqd.c_str(), "--port", port.c_str(),
                  "--workers", workers_s.c_str(), "--max-inflight",
                  inflight_s.c_str(), "--fleet", spec.c_str(), "--shard-name",
                  fleet.topology[i].name.c_str(), (char*)nullptr);
        }
        _exit(127);
      }
      fleet.pids.push_back(pid);
    }
    return fleet;
  }

  /// Blocks until every shard accepts connections (dial loop with deadline).
  bool AwaitReady() const {
    for (const service::ShardId& shard : topology) {
      bool up = false;
      for (int attempt = 0; attempt < 200 && !up; ++attempt) {
        service::RetryPolicy policy;
        policy.connect_timeout = std::chrono::milliseconds(250);
        up = service::Connection::Connect(shard.host, shard.port, policy).ok();
        if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
      if (!up) return false;
    }
    return true;
  }

  void Stop() {
    for (pid_t pid : pids) ::kill(pid, SIGTERM);
    for (pid_t pid : pids) ::waitpid(pid, nullptr, 0);
    pids.clear();
  }
};

/// A small family of distinct checks so the stream exercises routing (each
/// signature may own a different shard) while staying memo-friendly within
/// one signature.
std::string CheckLine(size_t variant) {
  std::string r = "r" + std::to_string(variant);
  return service::JsonObject()
      .Str("cmd", "check")
      .Str("q1", "Q(X) :- " + r + "(X, Y), s(X).")
      .Str("q2", "Q(X) :- " + r + "(X, Y).")
      .Str("semantics", "set")
      .Build();
}

constexpr size_t kVariants = 4;

std::unique_ptr<service::FleetClient> MakeClient(
    const std::vector<service::ShardId>& topology) {
  service::FleetClientOptions options;
  options.shards = topology;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_ms = 5;
  options.retry.max_backoff_ms = 100;
  options.retry.connect_timeout = std::chrono::milliseconds(2000);
  return Must(service::FleetClient::Create(std::move(options)));
}

void UploadCatalog(service::FleetClient& client) {
  for (size_t v = 0; v < kVariants; ++v) {
    std::string r = "r" + std::to_string(v);
    Must(client.Call(service::JsonObject()
                         .Str("cmd", "relation")
                         .Str("name", r)
                         .Int("arity", 2)
                         .Build()));
    Must(client.Call(service::JsonObject()
                         .Str("cmd", "dep")
                         .Str("text", r + "(X, Y) -> s(X).")
                         .Str("label", "fk" + std::to_string(v))
                         .Build()));
  }
  Must(client.Call(service::JsonObject()
                       .Str("cmd", "relation")
                       .Str("name", "s")
                       .Int("arity", 1)
                       .Build()));
}

/// One soak round: `threads` clients each issue `per_thread` checks through
/// their own FleetClient (own pool), round-robin over the variant family.
void SoakRound(const std::vector<service::ShardId>& topology, size_t threads,
               size_t per_thread, std::vector<uint64_t>* latencies_us,
               std::mutex* mu) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&topology, t, per_thread, latencies_us, mu] {
      std::unique_ptr<service::FleetClient> client = MakeClient(topology);
      UploadCatalog(*client);
      std::vector<uint64_t> local;
      local.reserve(per_thread);
      for (size_t i = 0; i < per_thread; ++i) {
        const std::string line = CheckLine((t + i) % kVariants);
        auto start = std::chrono::steady_clock::now();
        Must(client->Call(line));
        local.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      }
      std::lock_guard<std::mutex> lock(*mu);
      latencies_us->insert(latencies_us->end(), local.begin(), local.end());
    });
  }
  for (std::thread& w : workers) w.join();
}

void BM_Fleet_Soak(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  // 2 workers × 2 inflight slots per shard, 6 client threads: at shards=1
  // the fleet is oversubscribed 3× (sheds + retries), at shards=3 the same
  // stream fits.
  const size_t threads = 6;
  const size_t per_thread = 8;
  Fleet fleet = Fleet::Launch(shards, /*workers=*/2, /*max_inflight=*/2);
  if (!fleet.AwaitReady()) {
    fleet.Stop();
    state.SkipWithError("fleet did not come up");
    return;
  }

  std::vector<uint64_t> latencies_us;
  std::mutex mu;
  for (auto _ : state) {
    SoakRound(fleet.topology, threads, per_thread, &latencies_us, &mu);
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["client_threads"] = static_cast<double>(threads);
  bench::ReportLatencyPercentiles(state, std::move(latencies_us));
  fleet.Stop();
}
SQLEQ_BENCHMARK(BM_Fleet_Soak)
    ->Arg(1)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sqleq
