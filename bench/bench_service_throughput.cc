// Request throughput and tail latency of sqleqd over loopback TCP: the same
// equivalence check driven by 1/4/8 concurrent clients on persistent
// connections, warm (process-lifetime memo serves every request after the
// first) versus cold (the memo is reset every iteration, so each round pays
// the chase). req/sec comes out as items_per_second; per-request p50/p95/p99
// and mean wall latency land in the counters via the shared
// ReportLatencyPercentiles (same fields as bench_fleet_soak), which is what
// makes the warm/cold memo gap visible in BENCH_service_throughput.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/connection.h"
#include "service/protocol.h"
#include "service/server.h"

namespace sqleq {
namespace {

using bench::Must;

std::string CheckLine() {
  return service::JsonObject()
      .Str("cmd", "check")
      .Str("q1", "Q(X) :- r(X, Y), s(X).")
      .Str("q2", "Q(X) :- r(X, Y).")
      .Str("semantics", "set")
      .Build();
}

service::Connection DialAndUpload(const service::Server& server) {
  service::Connection client =
      Must(service::Connection::Connect("127.0.0.1", server.port()));
  Must(client.Call(service::JsonObject()
                       .Str("cmd", "relation")
                       .Str("name", "r")
                       .Int("arity", 2)
                       .Build()));
  Must(client.Call(service::JsonObject()
                       .Str("cmd", "relation")
                       .Str("name", "s")
                       .Int("arity", 1)
                       .Build()));
  Must(client.Call(service::JsonObject()
                       .Str("cmd", "dep")
                       .Str("text", "r(X, Y) -> s(X).")
                       .Str("label", "fk")
                       .Build()));
  return client;
}

/// One round: every client issues one check on its persistent connection;
/// per-request latencies are appended to `latencies_us` (mutex-guarded —
/// contention is negligible next to a request round-trip).
void RunRound(std::vector<service::Connection>& conns, const std::string& line,
              std::vector<uint64_t>* latencies_us, std::mutex* mu) {
  std::vector<std::thread> threads;
  threads.reserve(conns.size());
  for (service::Connection& conn : conns) {
    threads.emplace_back([&conn, &line, latencies_us, mu] {
      auto start = std::chrono::steady_clock::now();
      Must(conn.Call(line));
      uint64_t us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      std::lock_guard<std::mutex> lock(*mu);
      latencies_us->push_back(us);
    });
  }
  for (std::thread& t : threads) t.join();
}

void ReportLatencies(benchmark::State& state, std::vector<uint64_t> latencies_us,
                     size_t clients) {
  state.counters["clients"] = static_cast<double>(clients);
  bench::ReportLatencyPercentiles(state, std::move(latencies_us));
}

void BM_Service_Check_Warm(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  service::ServerOptions options;
  options.worker_threads = clients;
  options.max_inflight = clients;
  service::Server server(options);
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  std::vector<service::Connection> conns;
  for (size_t i = 0; i < clients; ++i) conns.push_back(DialAndUpload(server));
  const std::string line = CheckLine();
  Must(conns[0].Call(line));  // pre-warm the memo outside the timed region

  std::vector<uint64_t> latencies_us;
  std::mutex mu;
  for (auto _ : state) {
    RunRound(conns, line, &latencies_us, &mu);
  }
  ReportLatencies(state, std::move(latencies_us), clients);
  conns.clear();
  server.Stop();
}
SQLEQ_BENCHMARK(BM_Service_Check_Warm)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Service_Check_Cold(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  service::ServerOptions options;
  options.worker_threads = clients;
  options.max_inflight = clients;
  service::Server server(options);
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  std::vector<service::Connection> conns;
  for (size_t i = 0; i < clients; ++i) conns.push_back(DialAndUpload(server));
  const std::string line = CheckLine();

  std::vector<uint64_t> latencies_us;
  std::mutex mu;
  for (auto _ : state) {
    state.PauseTiming();
    server.ResetMemo();  // every round re-chases: the no-daemon baseline
    state.ResumeTiming();
    RunRound(conns, line, &latencies_us, &mu);
  }
  ReportLatencies(state, std::move(latencies_us), clients);
  conns.clear();
  server.Stop();
}
SQLEQ_BENCHMARK(BM_Service_Check_Cold)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sqleq
